//! Differential tests of the **incremental repair** path: patching only
//! the cells and CSR rows a delta touched must be indistinguishable —
//! bitwise, not just semantically — from building the structures from
//! scratch, for *arbitrary seeded interleavings* of moves, kills,
//! rejoins and spawns.
//!
//! This battery is the repair-path counterpart of
//! `mobility_equivalence.rs` (epoch rebuilds) and
//! `churn_equivalence.rs` (masked rebuilds): where those pin the
//! in-place *full* rebuild against fresh builds, these pin
//! [`RepairPolicy::AlwaysIncremental`] — the policy is forced so every
//! assertion exercises the splice path even for dense deltas the `Auto`
//! policy would hand to a full rebuild.
//!
//! Three levels:
//!
//! 1. structure: `GridIndex::repair_with_policy` + `CommGraph::repair`
//!    after each random step vs `build_masked` over the same population;
//! 2. physics: a reused `ReceptionOracle` resolving rounds against the
//!    repaired index vs a fresh oracle against a fresh index, in every
//!    `InterferenceMode`, power sums bit-for-bit;
//! 3. scenario: mobile + churned runs under `AlwaysIncremental` vs
//!    `AlwaysFull` — byte-identical `RunReport`s at physics-thread
//!    counts 1, 2 and 8.

use rand::{Rng, SeedableRng, SmallRng};

use sinr_broadcast::geometry::{GridIndex, Point2, RepairPolicy};
use sinr_broadcast::netgen::uniform;
use sinr_broadcast::phy::{CommGraph, InterferenceMode, ReceptionOracle, RoundOutcome, SinrParams};
use sinr_broadcast::sim::{ChurnSpec, MobilitySpec, ProtocolSpec, Scenario, TopologySpec};

fn all_modes() -> [InterferenceMode; 4] {
    [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
        InterferenceMode::grid_native(),
    ]
}

/// One random mutation step over (points, alive): moves some live
/// stations (small drifts and cross-cell teleports), kills, rejoins and
/// spawns — all four delta kinds interleaved under one RNG. Returns the
/// dirty set the repair path is told about: moved ∪ killed ∪ rejoined
/// (spawns are detected by the index range, as in `Network`).
fn random_step(
    rng: &mut SmallRng,
    points: &mut Vec<Point2>,
    alive: &mut Vec<bool>,
    side: f64,
) -> Vec<usize> {
    let mut dirty = Vec::new();
    let n = points.len();
    // Moves: a random fraction of stations drift or teleport. Dead
    // stations are deliberately included sometimes — their coordinate
    // changes must be invisible to the repaired structures.
    for (i, p) in points.iter_mut().enumerate() {
        match rng.gen_range(0..10u32) {
            0 => {
                *p = p.translate(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2));
                dirty.push(i);
            }
            1 => {
                *p = Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                dirty.push(i);
            }
            _ => {}
        }
    }
    // Kills and rejoins.
    for i in 0..n {
        match rng.gen_range(0..12u32) {
            0 if alive[i] => {
                alive[i] = false;
                dirty.push(i);
            }
            1 if !alive[i] => {
                alive[i] = true;
                points[i] = Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                dirty.push(i);
            }
            _ => {}
        }
    }
    // Spawns: appended live stations, found by the repair path through
    // the domain-growth range rather than the dirty list.
    for _ in 0..rng.gen_range(0..4usize) {
        points.push(Point2::new(
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        ));
        alive.push(true);
    }
    // Unsorted, possibly duplicated (a station can move AND die in one
    // step) — the repair entry points must cope.
    dirty
}

#[test]
fn randomized_interleavings_repair_grid_and_graph_bit_identically() {
    let radius = SinrParams::default_plane().comm_radius();
    for seed in [0x5EED1u64, 0x5EED2, 0x5EED3] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let side = 4.0;
        let mut points = uniform::square(180, side, seed ^ 7);
        let mut alive = vec![true; points.len()];
        let mut grid = GridIndex::build(&points, 1.0);
        let mut graph = CommGraph::build(&points, radius);
        // Prime the graph's owned index (static builds drop it; the first
        // repair falls back to a full refresh otherwise, which would make
        // step 0 vacuous).
        graph.rebuild_from(&points, Some(&alive));
        for step in 0..25 {
            let dirty = random_step(&mut rng, &mut points, &mut alive, side);
            grid.repair_with_policy(
                &dirty,
                &points,
                Some(&alive),
                RepairPolicy::AlwaysIncremental,
            );
            graph.repair(
                &dirty,
                &points,
                Some(&alive),
                RepairPolicy::AlwaysIncremental,
            );
            // Structure equality is bitwise: keys, CSR offsets, slot
            // order, SoA coordinates, centroids (grid); rows, neighbour
            // order, present mask, edge count (graph).
            assert_eq!(
                grid,
                GridIndex::build_masked(&points, &alive, 1.0),
                "seed {seed:#x} step {step}: grid diverged from fresh build"
            );
            assert_eq!(
                graph,
                CommGraph::build_masked(&points, &alive, radius),
                "seed {seed:#x} step {step}: graph diverged from fresh build"
            );
        }
    }
}

#[test]
fn oracle_rounds_agree_between_repaired_and_fresh_structures() {
    let params = SinrParams::default_plane();
    let mut rng = SmallRng::seed_from_u64(0x05EED0);
    let side = 4.0;
    let mut points = uniform::square(160, side, 3);
    let mut alive = vec![true; points.len()];
    let mut grid = GridIndex::build(&points, 1.0);
    let mut reused = ReceptionOracle::for_stations(points.len());
    let mut out = RoundOutcome::empty();
    for step in 0..6 {
        let dirty = random_step(&mut rng, &mut points, &mut alive, side);
        grid.repair_with_policy(
            &dirty,
            &points,
            Some(&alive),
            RepairPolicy::AlwaysIncremental,
        );
        let fresh_idx = GridIndex::build_masked(&points, &alive, 1.0);
        let tx: Vec<usize> = (0..points.len()).filter(|&i| alive[i]).step_by(6).collect();
        for mode in all_modes() {
            reused.resolve_into(&points, &params, &tx, mode, Some(&grid), &mut out);
            let mut fresh_oracle = ReceptionOracle::new();
            let fresh = fresh_oracle.resolve(&points, &params, &tx, mode, Some(&fresh_idx));
            assert_eq!(out, fresh, "{mode:?} step {step}: outcomes diverged");
            for (u, (a, b)) in reused
                .received_power()
                .iter()
                .zip(fresh_oracle.received_power())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{mode:?} step {step}: power differs at station {u}"
                );
            }
        }
    }
}

#[test]
fn scenario_runs_are_identical_under_incremental_and_full_repair() {
    // The end-to-end guarantee: a dynamic run (mobility + churn, so
    // every epoch boundary exercises moves, kills, rejoins and spawns)
    // produces byte-identical reports whether the engine repairs
    // incrementally or rebuilds from scratch — at every physics-thread
    // count.
    let build = |policy: RepairPolicy, threads: usize| {
        Scenario::new(TopologySpec::UniformSquare { n: 90, side: 2.5 })
            .protocol(ProtocolSpec::ReFloodBroadcast {
                source: 0,
                p: 0.25,
                burst_rounds: 24,
            })
            .mobility(MobilitySpec::random_waypoint(0.2, 6))
            .churn(ChurnSpec::poisson(1.0, 10.0, 8))
            .repair_policy(policy)
            .physics_threads(threads)
            .record_rounds()
            .budget(400)
            .build()
            .unwrap()
    };
    let reference = build(RepairPolicy::AlwaysFull, 1).run(42).unwrap();
    for threads in [1usize, 2, 8] {
        for policy in [
            RepairPolicy::AlwaysIncremental,
            RepairPolicy::Auto { threshold: 0.05 },
            RepairPolicy::AlwaysFull,
        ] {
            let report = build(policy, threads).run(42).unwrap();
            assert_eq!(
                report, reference,
                "{policy:?} at {threads} physics threads diverged from the full-rebuild reference"
            );
        }
    }
}

#[test]
fn repair_steps_actually_exercise_every_delta_kind() {
    // Guard against the randomized battery passing vacuously: across the
    // steps of one seed, moves, kills, rejoins AND spawns all occur, and
    // at least one step's dirty set is dense enough that `Auto` would
    // have fallen back (so `AlwaysIncremental` is doing real forcing).
    let mut rng = SmallRng::seed_from_u64(0x5EED1);
    let side = 4.0;
    let mut points = uniform::square(180, side, 0x5EED1 ^ 7);
    let mut alive = vec![true; points.len()];
    let (mut moves_or_kills, mut rejoins, mut spawns, mut dense) = (0usize, 0usize, 0usize, 0usize);
    for _ in 0..25 {
        let before_len = points.len();
        let before_alive = alive.clone();
        let dirty = random_step(&mut rng, &mut points, &mut alive, side);
        moves_or_kills += dirty.len();
        rejoins += before_alive
            .iter()
            .zip(&alive)
            .filter(|&(&was, &is)| !was && is)
            .count();
        spawns += points.len() - before_len;
        if dirty.len() > points.len() / 20 {
            dense += 1;
        }
    }
    assert!(moves_or_kills > 0, "no moves or kills in 25 steps");
    assert!(rejoins > 0, "no rejoins in 25 steps");
    assert!(spawns > 0, "no spawns in 25 steps");
    assert!(dense > 0, "no step dense enough to force the Auto fallback");
}
