//! Differential tests of the dynamic-population path: after stations
//! churn (die, rejoin, spawn), the **in-place rebuilt** structures —
//! `GridIndex` (with its SoA `PositionStore`) and `CommGraph` — must be
//! indistinguishable from building fresh over the surviving population,
//! bitwise where floats are involved; and a reused `ReceptionOracle`
//! resolving rounds against the churned network must agree, for every
//! live station and in every `InterferenceMode`, with a fresh oracle over
//! the compacted survivors (decode decisions under the index mapping,
//! power sums bit-for-bit).
//!
//! The mapping: live station `i` of the churned (index-stable, masked)
//! deployment corresponds to position `map[i]` of the compacted
//! deployment that keeps only survivors in ascending index order —
//! order-preserving compaction, so every deterministic iteration order
//! (cell-major slots, sorted transmitter buckets, ascending neighbour
//! rows) coincides and the floating-point sums match bitwise.

use sinr_broadcast::geometry::{GridIndex, Point2, RepairPolicy};
use sinr_broadcast::netgen::churn::{ChurnModel, ChurnProcess};
use sinr_broadcast::netgen::{cluster, grid as lattice, line, uniform};
use sinr_broadcast::phy::{
    ChurnDelta, CommGraph, GraphScratch, InterferenceMode, ReceptionOracle, RoundOutcome,
    SinrParams,
};

/// One deployment per topology family (raw generator output — the
/// structural differentials need no minimum separation).
fn families() -> Vec<(&'static str, Vec<Point2>)> {
    vec![
        ("uniform", uniform::square(240, 3.0, 7)),
        ("cluster", cluster::gaussian_clusters(5, 40, 6.0, 0.35, 11)),
        ("line", line::uniform_line(150, 0.45)),
        ("grid", lattice::lattice(14, 14, 0.62)),
    ]
}

fn all_modes() -> [InterferenceMode; 4] {
    [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
        InterferenceMode::grid_native(),
    ]
}

/// Applies one delta to a manually maintained (points, alive) pair the
/// way `Network::apply_churn` does.
fn fold_delta(points: &mut Vec<Point2>, alive: &mut Vec<bool>, delta: &ChurnDelta<Point2>) {
    for &k in &delta.kills {
        assert!(alive[k]);
        alive[k] = false;
    }
    for &(r, p) in &delta.rejoins {
        assert!(!alive[r]);
        alive[r] = true;
        points[r] = p;
    }
    for &p in &delta.spawns {
        points.push(p);
        alive.push(true);
    }
}

/// `map[i]` = compacted index of live station `i` (`usize::MAX` if dead),
/// plus the compacted point list.
fn compact(points: &[Point2], alive: &[bool]) -> (Vec<usize>, Vec<Point2>) {
    let mut map = vec![usize::MAX; points.len()];
    let mut live = Vec::new();
    for (i, (&p, &a)) in points.iter().zip(alive).enumerate() {
        if a {
            map[i] = live.len();
            live.push(p);
        }
    }
    (map, live)
}

#[test]
fn post_churn_grid_rebuild_is_bitwise_identical_to_fresh_builds() {
    for (family, base) in families() {
        let mut points = base.clone();
        let mut alive = vec![true; points.len()];
        let mut proc: ChurnProcess<Point2> = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 6.0,
                mean_lifetime: 4.0,
            },
            &points,
            42,
        );
        let mut delta = ChurnDelta::new();
        let mut idx = GridIndex::build(&points, 1.0);
        for epoch in 0..6 {
            proc.step_into(&alive, &mut delta);
            fold_delta(&mut points, &mut alive, &delta);
            idx.rebuild_from_masked(&points, &alive);

            // Level 1: the in-place rebuild equals a fresh masked build
            // outright (same domain, same ids).
            let fresh_masked = GridIndex::build_masked(&points, &alive, 1.0);
            assert_eq!(idx, fresh_masked, "{family} epoch {epoch}");

            // Level 2: against a fresh build of the compacted survivors —
            // identical cells, offsets, SoA coordinates and centroids
            // (bitwise), ids related by the order-preserving compaction.
            let (map, survivors) = compact(&points, &alive);
            let fresh = GridIndex::build(&survivors, 1.0);
            assert_eq!(idx.len(), fresh.len(), "{family} epoch {epoch}");
            assert_eq!(idx.num_cells(), fresh.num_cells());
            for c in 0..idx.num_cells() {
                assert_eq!(idx.cell_key(c), fresh.cell_key(c));
                assert_eq!(idx.cell_range(c), fresh.cell_range(c));
                for axis in 0..2 {
                    assert_eq!(
                        idx.cell_centroid(c)[axis].to_bits(),
                        fresh.cell_centroid(c)[axis].to_bits(),
                        "{family} epoch {epoch}: centroid of cell {c}"
                    );
                }
                let mapped: Vec<usize> = idx.cell_members(c).iter().map(|&i| map[i]).collect();
                assert_eq!(mapped, fresh.cell_members(c), "{family} epoch {epoch}");
            }
            for slot in 0..idx.len() {
                for axis in 0..2 {
                    assert_eq!(
                        idx.positions().coord(slot, axis).to_bits(),
                        fresh.positions().coord(slot, axis).to_bits(),
                        "{family} epoch {epoch}: slot {slot}"
                    );
                }
            }
        }
    }
}

#[test]
fn post_churn_comm_graph_rebuild_matches_fresh_builds() {
    let radius = SinrParams::default_plane().comm_radius();
    for (family, base) in families() {
        let mut points = base.clone();
        let mut alive = vec![true; points.len()];
        let mut proc: ChurnProcess<Point2> = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 5.0,
                mean_lifetime: 5.0,
            },
            &points,
            9,
        );
        let mut delta = ChurnDelta::new();
        let mut graph = CommGraph::build(&points, radius);
        let mut scratch = GraphScratch::new();
        for epoch in 0..5 {
            proc.step_into(&alive, &mut delta);
            fold_delta(&mut points, &mut alive, &delta);
            graph.rebuild_from(&points, Some(&alive));

            // Refreshed-in-place equals fresh masked build outright.
            let fresh_masked = CommGraph::build_masked(&points, &alive, radius);
            assert_eq!(graph, fresh_masked, "{family} epoch {epoch}");

            // And the fresh build over the compacted survivors under the
            // index mapping: same degrees, edges and connectivity.
            let (map, survivors) = compact(&points, &alive);
            let fresh = CommGraph::build(&survivors, radius);
            assert_eq!(
                graph.num_edges(),
                fresh.num_edges(),
                "{family} epoch {epoch}"
            );
            for i in 0..points.len() {
                if map[i] == usize::MAX {
                    assert!(graph.neighbors(i).is_empty(), "dead station with edges");
                    continue;
                }
                let mapped: Vec<usize> = graph.neighbors(i).iter().map(|&u| map[u]).collect();
                assert_eq!(
                    mapped,
                    fresh.neighbors(map[i]),
                    "{family} epoch {epoch}: station {i}"
                );
            }
            assert_eq!(
                graph.is_connected_with(&mut scratch),
                fresh.is_connected(),
                "{family} epoch {epoch}: connectivity"
            );
        }
    }
}

#[test]
fn oracle_rounds_on_churned_network_match_fresh_compacted_network() {
    let params = SinrParams::default_plane();
    for (family, base) in families() {
        let mut points = base.clone();
        let mut alive = vec![true; points.len()];
        let mut proc: ChurnProcess<Point2> = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 6.0,
                mean_lifetime: 4.0,
            },
            &points,
            17,
        );
        let mut delta = ChurnDelta::new();
        // The reused path: one masked index rebuilt in place, one oracle
        // reused across epochs — exactly what the engine does.
        let mut idx = GridIndex::build(&points, 1.0);
        let mut reused = ReceptionOracle::for_stations(points.len());
        let mut out = RoundOutcome::empty();
        for epoch in 0..4 {
            proc.step_into(&alive, &mut delta);
            fold_delta(&mut points, &mut alive, &delta);
            idx.rebuild_from_masked(&points, &alive);
            let (map, survivors) = compact(&points, &alive);
            let fresh_idx = GridIndex::build(&survivors, 1.0);

            // Transmitters: every 7th live station (original indices on
            // the churned side, compacted on the fresh side — same set).
            let tx: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .map(|(i, _)| i)
                .step_by(7)
                .collect();
            let tx_fresh: Vec<usize> = tx.iter().map(|&t| map[t]).collect();

            for mode in all_modes() {
                reused.resolve_into(&points, &params, &tx, mode, Some(&idx), &mut out);
                let mut fresh_oracle = ReceptionOracle::new();
                let fresh =
                    fresh_oracle.resolve(&survivors, &params, &tx_fresh, mode, Some(&fresh_idx));
                for (i, &m) in map.iter().enumerate() {
                    if m == usize::MAX {
                        continue; // dead: engine never reads these rows
                    }
                    let got = out.decoded_from[i].map(|t| map[t]);
                    assert_eq!(
                        got, fresh.decoded_from[m],
                        "{family}/{mode:?} epoch {epoch}: decode at station {i}"
                    );
                    assert_eq!(
                        reused.received_power()[i].to_bits(),
                        fresh_oracle.received_power()[m].to_bits(),
                        "{family}/{mode:?} epoch {epoch}: power at station {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn post_churn_incremental_repair_matches_fresh_builds() {
    // The repair-path counterpart of the two rebuild tests above: feed
    // each delta's kills, rejoins and spawn range through
    // `GridIndex::repair_with_policy` + `CommGraph::repair` (forced
    // incremental) instead of the full masked rebuilds, and demand the
    // same bit-identical agreement with fresh builds.
    let radius = SinrParams::default_plane().comm_radius();
    for (family, base) in families() {
        let mut points = base.clone();
        let mut alive = vec![true; points.len()];
        let mut proc: ChurnProcess<Point2> = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 6.0,
                mean_lifetime: 4.0,
            },
            &points,
            42,
        );
        let mut delta = ChurnDelta::new();
        let mut idx = GridIndex::build(&points, 1.0);
        let mut graph = CommGraph::build(&points, radius);
        graph.rebuild_from(&points, Some(&alive)); // regrow the owned index
        for epoch in 0..6 {
            proc.step_into(&alive, &mut delta);
            // The dirty set the network layer hands the repair path:
            // kills and rejoins by index; spawns are found by the
            // domain-growth range without being listed.
            let dirty: Vec<usize> = delta
                .kills
                .iter()
                .copied()
                .chain(delta.rejoins.iter().map(|&(r, _)| r))
                .collect();
            fold_delta(&mut points, &mut alive, &delta);
            idx.repair_with_policy(
                &dirty,
                &points,
                Some(&alive),
                RepairPolicy::AlwaysIncremental,
            );
            graph.repair(
                &dirty,
                &points,
                Some(&alive),
                RepairPolicy::AlwaysIncremental,
            );
            assert_eq!(
                idx,
                GridIndex::build_masked(&points, &alive, 1.0),
                "{family} epoch {epoch}: repaired index diverged"
            );
            assert_eq!(
                graph,
                CommGraph::build_masked(&points, &alive, radius),
                "{family} epoch {epoch}: repaired graph diverged"
            );
        }
    }
}

#[test]
fn churn_actually_changes_the_population() {
    // Guard against the battery passing vacuously: over the epochs above,
    // kills, rejoins AND spawns must all have occurred at least once.
    let base = uniform::square(100, 3.0, 7);
    let mut alive = vec![true; base.len()];
    let mut points = base.clone();
    let mut proc: ChurnProcess<Point2> = ChurnProcess::over_deployment(
        ChurnModel {
            arrival_rate: 6.0,
            mean_lifetime: 4.0,
        },
        &points,
        42,
    );
    let mut delta = ChurnDelta::new();
    let (mut kills, mut rejoins, mut spawns) = (0, 0, 0);
    for _ in 0..10 {
        proc.step_into(&alive, &mut delta);
        kills += delta.kills.len();
        rejoins += delta.rejoins.len();
        spawns += delta.spawns.len();
        fold_delta(&mut points, &mut alive, &delta);
    }
    assert!(kills > 0, "no kills in 10 epochs");
    assert!(rejoins > 0, "no rejoins in 10 epochs");
    assert!(spawns > 0, "no spawns in 10 epochs");
    assert!(points.len() > base.len(), "population never grew");
}
