//! Differential tests of the epoch reindex path: rebuilding the spatial
//! structures **in place** after stations move must be indistinguishable
//! from building them from scratch — bitwise, not just semantically.
//!
//! Three levels, across the uniform / cluster / line / grid topology
//! families:
//!
//! 1. `GridIndex::rebuild_from` vs `GridIndex::build`: identical keys,
//!    CSR offsets, slot order, SoA `PositionStore` contents and per-cell
//!    centroids (the slot-order contract every batched kernel relies on);
//! 2. a reused `ReceptionOracle` resolving rounds against the rebuilt
//!    index vs a fresh oracle against a fresh index: identical
//!    `RoundOutcome`s and bit-identical power sums in every
//!    `InterferenceMode`;
//! 3. mobile `Scenario` runs: byte-identical `RunReport`s across repeated
//!    runs and sweep thread counts.

use sinr_broadcast::geometry::{GridIndex, MetricPoint, Point2, RepairPolicy};
use sinr_broadcast::netgen::mobility::{Mobility, MobilityModel};
use sinr_broadcast::netgen::{cluster, grid as lattice, line, uniform};
use sinr_broadcast::phy::{InterferenceMode, ReceptionOracle, RoundOutcome, SinrParams};
use sinr_broadcast::sim::{MobilitySpec, ProtocolSpec, Scenario, TopologySpec};

/// One deployment per topology family (raw generator output — the grid
/// differential needs no minimum separation).
fn families() -> Vec<(&'static str, Vec<Point2>)> {
    vec![
        ("uniform", uniform::square(240, 3.0, 7)),
        ("cluster", cluster::gaussian_clusters(5, 40, 6.0, 0.35, 11)),
        ("line", line::uniform_line(150, 0.45)),
        ("grid", lattice::lattice(14, 14, 0.62)),
    ]
}

fn models() -> [MobilityModel; 3] {
    [
        MobilityModel::RandomWaypoint {
            speed: 0.3,
            pause_epochs: 1,
        },
        MobilityModel::Drift { speed: 0.2 },
        MobilityModel::TeleportChurn { fraction: 0.3 },
    ]
}

fn all_modes() -> [InterferenceMode; 4] {
    [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
        InterferenceMode::grid_native(),
    ]
}

#[test]
fn epoch_rebuild_is_bitwise_identical_to_fresh_build() {
    for (family, base) in families() {
        for model in models() {
            let mut pts = base.clone();
            let mut mob = Mobility::over_deployment(model, &pts, 42);
            let mut idx = GridIndex::build(&pts, 1.0);
            for epoch in 0..4 {
                mob.advance(&mut pts);
                idx.rebuild_from(&pts);
                let fresh = GridIndex::build(&pts, 1.0);
                // Structure equality covers keys, CSR offsets, slot ids,
                // the SoA store and centroids at once.
                assert_eq!(idx, fresh, "{family}/{model:?} epoch {epoch}");
                // Belt and braces on the floats that matter bitwise: the
                // slot-ordered coordinates and the cell centroids.
                for c in 0..idx.num_cells() {
                    for axis in 0..2 {
                        assert_eq!(
                            idx.cell_centroid(c)[axis].to_bits(),
                            fresh.cell_centroid(c)[axis].to_bits(),
                            "{family}/{model:?} epoch {epoch}: centroid of cell {c}"
                        );
                    }
                    for slot in idx.cell_range(c) {
                        for axis in 0..2 {
                            assert_eq!(
                                idx.positions().coord(slot, axis).to_bits(),
                                fresh.positions().coord(slot, axis).to_bits(),
                                "{family}/{model:?} epoch {epoch}: slot {slot}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn epoch_repair_is_bitwise_identical_to_fresh_build() {
    // The incremental counterpart of the rebuild test above: instead of
    // reindexing everything, tell the index exactly which stations an
    // epoch moved (recovered by coordinate diff, as `Network` does) and
    // let it splice only the affected cells — forced incremental so the
    // assertion never silently routes through a full rebuild.
    for (family, base) in families() {
        for model in models() {
            let mut pts = base.clone();
            let mut prev = pts.clone();
            let mut mob = Mobility::over_deployment(model, &pts, 42);
            let mut idx = GridIndex::build(&pts, 1.0);
            for epoch in 0..4 {
                mob.advance(&mut pts);
                let moved: Vec<usize> = (0..pts.len())
                    .filter(|&i| {
                        (0..2).any(|a| pts[i].coord(a).to_bits() != prev[i].coord(a).to_bits())
                    })
                    .collect();
                prev.clone_from(&pts);
                idx.repair_with_policy(&moved, &pts, None, RepairPolicy::AlwaysIncremental);
                assert_eq!(
                    idx,
                    GridIndex::build(&pts, 1.0),
                    "{family}/{model:?} epoch {epoch}: repaired index diverged"
                );
            }
        }
    }
}

#[test]
fn oracle_rounds_agree_between_rebuilt_and_fresh_structures() {
    let params = SinrParams::default_plane();
    for (family, base) in families() {
        let mut pts = base.clone();
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(7).collect();
        let mut mob = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.25,
                pause_epochs: 0,
            },
            &pts,
            9,
        );
        // The reused path: one index rebuilt in place, one oracle reused
        // across epochs — exactly what the engine does between epochs.
        let mut idx = GridIndex::build(&pts, 1.0);
        let mut reused = ReceptionOracle::for_stations(n);
        let mut out = RoundOutcome::empty();
        for epoch in 0..4 {
            mob.advance(&mut pts);
            idx.rebuild_from(&pts);
            let fresh_idx = GridIndex::build(&pts, 1.0);
            for mode in all_modes() {
                reused.resolve_into(&pts, &params, &tx, mode, Some(&idx), &mut out);
                let mut fresh_oracle = ReceptionOracle::new();
                let fresh = fresh_oracle.resolve(&pts, &params, &tx, mode, Some(&fresh_idx));
                assert_eq!(out, fresh, "{family}/{mode:?} epoch {epoch}");
                for (u, (a, b)) in reused
                    .received_power()
                    .iter()
                    .zip(fresh_oracle.received_power())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{family}/{mode:?} epoch {epoch}: power differs at station {u}"
                    );
                }
            }
        }
    }
}

#[test]
fn mobile_run_reports_replay_bit_for_bit_across_families() {
    // Separation-safe declarative families (the scenario path constructs
    // real networks): uniform, cluster, line and grid.
    let specs: Vec<(&'static str, TopologySpec)> = vec![
        (
            "uniform",
            TopologySpec::ConnectedSquareDensity {
                n: 60,
                density: 30.0,
            },
        ),
        (
            "cluster",
            TopologySpec::ClusterChain {
                diameter: 3,
                per_cluster: 10,
            },
        ),
        ("line", TopologySpec::UniformLine { n: 40, gap: 0.45 }),
        (
            "grid",
            TopologySpec::Lattice {
                rows: 7,
                cols: 7,
                spacing: 0.6,
            },
        ),
    ];
    for (family, topology) in specs {
        let sim = Scenario::new(topology)
            .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.25 })
            .mobility(MobilitySpec::random_waypoint(0.15, 4))
            .record_rounds()
            .budget(400)
            .build()
            .unwrap();
        let a = sim.run(42).unwrap();
        let b = sim.run(42).unwrap();
        assert_eq!(a, b, "{family}: repeated mobile runs differ");
        let seeds: Vec<u64> = (0..4).collect();
        let serial = sim.sweep_with_threads(&seeds, 1).unwrap();
        let parallel = sim.sweep_with_threads(&seeds, 4).unwrap();
        assert_eq!(
            serial, parallel,
            "{family}: mobile sweep depends on threads"
        );
    }
}

#[test]
fn mobility_actually_moves_the_stations() {
    // Guard against the whole battery passing vacuously: a mobile run
    // must not equal the frozen-topology run of the same seed.
    let build = |mobile: bool| {
        let s = Scenario::new(TopologySpec::Lattice {
            rows: 7,
            cols: 7,
            spacing: 0.6,
        })
        .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.25 })
        .record_rounds()
        .budget(60);
        if mobile {
            s.mobility(MobilitySpec::teleport_churn(0.5, 2))
        } else {
            s
        }
        .build()
        .unwrap()
    };
    let frozen = build(false).run(5).unwrap();
    let mobile = build(true).run(5).unwrap();
    assert_ne!(frozen, mobile, "churn at every second round must show up");
}
