//! Model-variant tests: 1-dimensional metrics (γ = 1), population
//! estimates ν > n, and parameter uncertainty (algorithm plans with bounds
//! while the channel uses the exact values). The `Scenario` builder is
//! generic over the metric point type, so the same protocol code runs on
//! 1D, 2D and 3D deployments.

use sinr_broadcast::core::Constants;
use sinr_broadcast::geometry::{MetricPoint, Point1};
use sinr_broadcast::netgen::line;
use sinr_broadcast::phy::{ParamBounds, SinrParams};
use sinr_broadcast::sim::{ProtocolSpec, Scenario, SimError};

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        ..Constants::tuned()
    }
}

fn s_broadcast<P: MetricPoint>(
    pts: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    seed: u64,
    budget: u64,
) -> Result<sinr_broadcast::sim::RunReport, SimError> {
    Scenario::new(pts)
        .params(*params)
        .constants(consts)
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .budget(budget)
        .build()?
        .run(seed)
}

#[test]
fn broadcast_in_one_dimensional_metric() {
    // γ = 1 requires only α > 1; the whole stack is generic over the point
    // type, so the same protocol code runs on a true line metric.
    let params = SinrParams::default_line();
    assert_eq!(params.gamma(), 1.0);
    let pts: Vec<Point1> = (0..10).map(|i| Point1::new(i as f64 * 0.45)).collect();
    let rep = s_broadcast(pts, &params, fast(), 3, 2_000_000).expect("valid 1D network");
    assert!(rep.completed, "{rep:?}");
}

#[test]
fn geometric_line_in_one_dimension() {
    let params = SinrParams::default_line();
    let pts = line::halving_line_1d(16, 0.5, 0.5, 2e-9);
    let rep = s_broadcast(pts, &params, fast(), 5, 2_000_000).expect("valid");
    assert!(rep.completed, "{rep:?}");
}

#[test]
fn broadcast_in_three_dimensional_metric() {
    use sinr_broadcast::geometry::Point3;
    // γ = 3 needs α > 3; a vertical helix of stations keeps D moderate.
    let params = SinrParams::builder()
        .alpha(4.0)
        .build(3.0)
        .expect("valid 3D params");
    let pts: Vec<Point3> = (0..12)
        .map(|i| {
            let t = i as f64 * 0.8;
            Point3::new(0.3 * t.cos(), 0.3 * t.sin(), i as f64 * 0.25)
        })
        .collect();
    let rep = s_broadcast(pts, &params, fast(), 7, 2_000_000).expect("valid 3D network");
    assert!(rep.completed, "{rep:?}");
}

#[test]
fn population_estimate_slows_but_never_breaks() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = line::uniform_line(8, 0.45);
    let exact = s_broadcast(pts.clone(), &params, consts, 11, 3_000_000).unwrap();
    let inflated = Scenario::new(pts)
        .params(params)
        .constants(consts)
        .protocol(ProtocolSpec::SBroadcastWithEstimate {
            source: 0,
            nu: 8 * 16,
        })
        .budget(3_000_000)
        .build()
        .unwrap()
        .run(11)
        .unwrap();
    assert!(exact.completed && inflated.completed);
    // The coloring schedule alone grows with log nu.
    assert!(
        consts.coloring_rounds(8 * 16) >= consts.coloring_rounds(8),
        "schedule must not shrink under inflation"
    );
}

#[test]
fn estimate_below_population_is_rejected() {
    let pts = line::uniform_line(8, 0.45);
    let err = Scenario::new(pts)
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcastWithEstimate { source: 0, nu: 3 })
        .budget(1000)
        .build()
        .unwrap()
        .run(1)
        .unwrap_err();
    assert!(matches!(err, SimError::Spec(_)));
}

#[test]
fn planning_with_parameter_bounds_still_completes() {
    // The channel runs the *true* parameters; the algorithm only knows
    // ±15% ranges and derives conservative planning constants. Using the
    // bounds-derived c_eps (the only bound-sensitive tuned constant) the
    // broadcast must still complete.
    let truth = SinrParams::default_plane();
    let bounds = ParamBounds::around(&truth, 0.15).unwrap();
    // Conservative planning: scale the Playoff jam up by the worst-case
    // ratio the bounds allow (weakest epsilon-range signal).
    let ratio =
        (1.0 / truth.eps()).powf(bounds.alpha_max()) / (1.0 / truth.eps()).powf(truth.alpha());
    let planned = Constants {
        c_eps: Constants::tuned().c_eps * ratio.max(1.0),
        ..fast()
    };
    let pts = line::uniform_line(10, 0.45);
    let rep = s_broadcast(pts, &truth, planned, 13, 3_000_000).unwrap();
    assert!(rep.completed, "{rep:?}");
}

#[test]
fn paper_constants_from_bounds_are_usable() {
    // Sanity: the literal paper constants derived from bounds produce a
    // well-formed schedule (they are far too conservative to *run* at any
    // useful size — asserted, not hidden).
    let truth = SinrParams::default_plane();
    let bounds = ParamBounds::around(&truth, 0.1).unwrap();
    let consts = Constants::paper_from_bounds(&bounds, truth.eps(), truth.gamma());
    assert!(consts.c_eps.is_finite() && consts.c_eps > 0.0);
    assert!(consts.coloring_rounds(1024) > 0);
    assert!(
        consts.coloring_rounds(1024) > Constants::tuned().coloring_rounds(1024),
        "paper constants must be the conservative ones"
    );
}
