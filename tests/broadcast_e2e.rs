//! End-to-end broadcast tests across topology families, via the facade.

use sinr_broadcast::core::{
    run::{run_nos_broadcast, run_s_broadcast},
    Constants,
};
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::netgen::{cluster, line, uniform};
use sinr_broadcast::phy::SinrParams;

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

fn topologies(seed: u64) -> Vec<(&'static str, Vec<Point2>)> {
    let params = SinrParams::default_plane();
    vec![
        (
            "uniform",
            uniform::connected_square(60, uniform::side_for_density(60, 30.0), &params, seed)
                .expect("connected"),
        ),
        ("chain", cluster::chain_for_diameter(4, 10, &params, seed)),
        ("line", line::uniform_line(12, 0.45)),
        ("geom-line", line::halving_line(24, 0.5, 0.5, 2e-9)),
    ]
}

#[test]
fn s_broadcast_completes_on_all_families() {
    let params = SinrParams::default_plane();
    let consts = fast();
    for (name, pts) in topologies(1) {
        let n = pts.len();
        let rep = run_s_broadcast(pts, &params, consts, 0, 7, 3_000_000).expect("valid");
        assert!(rep.completed, "[{name}] incomplete: {rep:?}");
        assert_eq!(rep.informed, n, "[{name}]");
    }
}

#[test]
fn nos_broadcast_completes_on_all_families() {
    let params = SinrParams::default_plane();
    let consts = fast();
    for (name, pts) in topologies(2) {
        let n = pts.len();
        let budget = consts.phase_rounds(n) * 80;
        let rep = run_nos_broadcast(pts, &params, consts, 0, 8, budget).expect("valid");
        assert!(rep.completed, "[{name}] incomplete: {rep:?}");
        assert_eq!(rep.informed, n, "[{name}]");
    }
}

#[test]
fn broadcast_deterministic_in_seed() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 5);
    let a = run_s_broadcast(pts.clone(), &params, consts, 0, 42, 2_000_000).unwrap();
    let b = run_s_broadcast(pts, &params, consts, 0, 42, 2_000_000).unwrap();
    assert_eq!(a, b);
}

#[test]
fn source_choice_is_arbitrary() {
    let params = SinrParams::default_plane();
    let consts = fast();
    for source in [0, 5, 11] {
        let pts = line::uniform_line(12, 0.45);
        let rep = run_s_broadcast(pts, &params, consts, source, 9, 2_000_000).unwrap();
        assert!(rep.completed, "source {source}");
    }
}

#[test]
fn zero_budget_informs_only_source() {
    let params = SinrParams::default_plane();
    let rep = run_nos_broadcast(
        line::uniform_line(5, 0.45),
        &params,
        fast(),
        2,
        1,
        0,
    )
    .unwrap();
    assert!(!rep.completed);
    assert_eq!(rep.informed, 1);
}

#[test]
fn single_station_network_trivially_done() {
    let params = SinrParams::default_plane();
    let rep = run_s_broadcast(vec![Point2::new(0.0, 0.0)], &params, fast(), 0, 3, 1000).unwrap();
    assert!(rep.completed);
    assert_eq!(rep.rounds, 0, "source already informed at round 0");
}

#[test]
fn disconnected_network_never_completes() {
    let params = SinrParams::default_plane();
    let mut pts = line::uniform_line(4, 0.45);
    pts.push(Point2::new(50.0, 0.0));
    let consts = fast();
    let rep = run_s_broadcast(pts, &params, consts, 0, 5, 50_000).unwrap();
    assert!(!rep.completed);
    assert_eq!(rep.informed, 4, "only the connected component is informed");
}
