//! End-to-end broadcast tests across topology families, via the facade's
//! `Scenario` builder.

use sinr_broadcast::core::Constants;
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::netgen::{cluster, line, uniform};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::sim::{ProtocolSpec, Scenario};

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

fn topologies(seed: u64) -> Vec<(&'static str, Vec<Point2>)> {
    let params = SinrParams::default_plane();
    vec![
        (
            "uniform",
            uniform::connected_square(60, uniform::side_for_density(60, 30.0), &params, seed)
                .expect("connected"),
        ),
        ("chain", cluster::chain_for_diameter(4, 10, &params, seed)),
        ("line", line::uniform_line(12, 0.45)),
        ("geom-line", line::halving_line(24, 0.5, 0.5, 2e-9)),
    ]
}

fn broadcast_sim(
    pts: Vec<Point2>,
    spec: ProtocolSpec,
    budget: u64,
) -> sinr_broadcast::sim::Simulation {
    Scenario::new(pts)
        .constants(fast())
        .protocol(spec)
        .budget(budget)
        .build()
        .expect("valid scenario")
}

#[test]
fn s_broadcast_completes_on_all_families() {
    for (name, pts) in topologies(1) {
        let n = pts.len();
        let rep = broadcast_sim(pts, ProtocolSpec::SBroadcast { source: 0 }, 3_000_000)
            .run(7)
            .expect("valid");
        assert!(rep.completed, "[{name}] incomplete: {rep:?}");
        assert_eq!(rep.informed, n, "[{name}]");
    }
}

#[test]
fn nos_broadcast_completes_on_all_families() {
    let consts = fast();
    for (name, pts) in topologies(2) {
        let n = pts.len();
        let budget = consts.phase_rounds(n) * 80;
        let rep = broadcast_sim(pts, ProtocolSpec::NoSBroadcast { source: 0 }, budget)
            .run(8)
            .expect("valid");
        assert!(rep.completed, "[{name}] incomplete: {rep:?}");
        assert_eq!(rep.informed, n, "[{name}]");
    }
}

#[test]
fn broadcast_deterministic_in_seed() {
    let params = SinrParams::default_plane();
    let pts = cluster::chain_for_diameter(3, 8, &params, 5);
    let sim = broadcast_sim(pts, ProtocolSpec::SBroadcast { source: 0 }, 2_000_000);
    let a = sim.run(42).unwrap();
    let b = sim.run(42).unwrap();
    assert_eq!(a, b);
}

#[test]
fn source_choice_is_arbitrary() {
    for source in [0, 5, 11] {
        let pts = line::uniform_line(12, 0.45);
        let rep = broadcast_sim(pts, ProtocolSpec::SBroadcast { source }, 2_000_000)
            .run(9)
            .unwrap();
        assert!(rep.completed, "source {source}");
    }
}

#[test]
fn zero_budget_informs_only_source() {
    let pts = line::uniform_line(5, 0.45);
    let rep = broadcast_sim(pts, ProtocolSpec::NoSBroadcast { source: 2 }, 0)
        .run(1)
        .unwrap();
    assert!(!rep.completed);
    assert_eq!(rep.informed, 1);
}

#[test]
fn single_station_network_trivially_done() {
    let rep = broadcast_sim(
        vec![Point2::new(0.0, 0.0)],
        ProtocolSpec::SBroadcast { source: 0 },
        1000,
    )
    .run(3)
    .unwrap();
    assert!(rep.completed);
    assert_eq!(rep.rounds, 0, "source already informed at round 0");
}

#[test]
fn disconnected_network_never_completes() {
    let mut pts = line::uniform_line(4, 0.45);
    pts.push(Point2::new(50.0, 0.0));
    let rep = broadcast_sim(pts, ProtocolSpec::SBroadcast { source: 0 }, 50_000)
        .run(5)
        .unwrap();
    assert!(!rep.completed);
    assert_eq!(rep.informed, 4, "only the connected component is informed");
}

#[test]
fn out_of_range_source_is_a_spec_error() {
    let err = broadcast_sim(
        line::uniform_line(4, 0.45),
        ProtocolSpec::SBroadcast { source: 9 },
        1000,
    )
    .run(1)
    .unwrap_err();
    assert!(matches!(err, sinr_broadcast::sim::SimError::Spec(_)));
}

#[test]
fn missing_budget_is_a_build_error() {
    let err = Scenario::new(line::uniform_line(4, 0.45))
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .build()
        .err()
        .expect("goal-driven protocol without budget must not build");
    assert!(matches!(err, sinr_broadcast::sim::SimError::MissingBudget));
}
