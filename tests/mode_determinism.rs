//! Determinism contract of the reception oracle across interference modes.
//!
//! Same seed ⇒ byte-identical `RunReport`, across repeated runs and across
//! sweep thread counts, in **every** `InterferenceMode` — including
//! `CellAggregate`, whose pre-oracle implementation iterated a std
//! `HashMap` of transmitter cells in nondeterministic order (randomised
//! hasher keys), so identical runs could disagree near the β threshold.
//! The oracle's sorted flat cell buckets make the floating-point sums a
//! pure function of the input, which this file pins at the full-protocol
//! level (`tests/scenario_golden.rs` pins the legacy-equivalence side).

use sinr_broadcast::core::sim::{ChurnSpec, MobilitySpec, ProtocolSpec, Scenario, TopologySpec};
use sinr_broadcast::core::Constants;
use sinr_broadcast::phy::InterferenceMode;

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

fn all_modes() -> [InterferenceMode; 4] {
    [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
        InterferenceMode::grid_native(),
    ]
}

#[test]
fn every_mode_is_bit_for_bit_reproducible_and_thread_invariant() {
    // A generated deployment spanning many grid cells, so the aggregate
    // modes build non-trivial cell buckets (the regime the historical
    // nondeterminism lived in).
    for mode in all_modes() {
        let sim = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 80,
            density: 30.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(mode)
        .budget(2_000_000)
        .build()
        .unwrap();

        let a = sim.run(42).unwrap();
        let b = sim.run(42).unwrap();
        assert_eq!(a, b, "{mode:?}: repeated runs differ");

        let seeds: Vec<u64> = (0..6).collect();
        let serial = sim.sweep_with_threads(&seeds, 1).unwrap();
        let parallel = sim.sweep_with_threads(&seeds, 8).unwrap();
        assert_eq!(serial, parallel, "{mode:?}: sweep depends on thread count");
    }
}

#[test]
fn physics_threads_leave_run_reports_byte_identical() {
    // In-round parallelism invariance: sharding the accumulate stage
    // across physics threads must leave the full `RunReport` — including
    // every per-round statistic — byte-identical in every interference
    // mode. 90 stations over ~25 grid cells gives the shard planner real
    // multi-cell ranges at 2 and 8 threads.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 90,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(mode)
        .record_rounds()
        .budget(2_000_000);

        let baseline = scenario.clone().build().unwrap().run(42).unwrap();
        for threads in [2usize, 8] {
            let sharded = scenario
                .clone()
                .physics_threads(threads)
                .build()
                .unwrap()
                .run(42)
                .unwrap();
            assert_eq!(
                baseline, sharded,
                "{mode:?}: physics_threads({threads}) changed the run"
            );
        }
    }
}

#[test]
fn physics_threads_compose_with_parallel_sweeps() {
    // The two axes of parallelism at once: multi-threaded sweeps of
    // multi-threaded trials must reproduce the serial single-threaded
    // sweep byte-for-byte, in every mode.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 70,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(mode)
        .budget(2_000_000);
        let seeds: Vec<u64> = (0..4).collect();

        let serial = scenario
            .clone()
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 1)
            .unwrap();
        let composed = scenario
            .clone()
            .physics_threads(8)
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 4)
            .unwrap();
        assert_eq!(
            serial, composed,
            "{mode:?}: sweep workers × physics threads changed results"
        );
    }
}

fn mobility_specs() -> [MobilitySpec; 3] {
    [
        MobilitySpec::random_waypoint(0.15, 4),
        MobilitySpec::drift(0.1, 4),
        MobilitySpec::teleport_churn(0.2, 4),
    ]
}

#[test]
fn mobile_scenarios_are_reproducible_and_physics_thread_invariant() {
    // The determinism contract extended to dynamic topologies: every
    // mobility model × every interference mode, with per-round stats
    // recorded, must be byte-identical across repeated runs and across
    // physics thread counts {1, 2, 8}.
    for spec in mobility_specs() {
        for mode in all_modes() {
            let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
                n: 60,
                density: 30.0,
            })
            .constants(fast())
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .interference_mode(mode)
            .mobility(spec)
            .record_rounds()
            .budget(1_500);
            let baseline = scenario.clone().build().unwrap().run(42).unwrap();
            assert_eq!(
                baseline,
                scenario.clone().build().unwrap().run(42).unwrap(),
                "{spec:?}/{mode:?}: repeated mobile runs differ"
            );
            for threads in [2usize, 8] {
                let sharded = scenario
                    .clone()
                    .physics_threads(threads)
                    .build()
                    .unwrap()
                    .run(42)
                    .unwrap();
                assert_eq!(
                    baseline, sharded,
                    "{spec:?}/{mode:?}: physics_threads({threads}) changed the mobile run"
                );
            }
        }
    }
}

#[test]
fn mobile_sweeps_compose_with_physics_threads() {
    // Both axes of parallelism on a dynamic topology: multi-threaded
    // sweeps of multi-threaded mobile trials reproduce the serial sweep
    // byte-for-byte in every mode.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 50,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(mode)
        .mobility(MobilitySpec::random_waypoint(0.2, 8))
        .budget(1_500);
        let seeds: Vec<u64> = (0..4).collect();
        let serial = scenario
            .clone()
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 1)
            .unwrap();
        let composed = scenario
            .clone()
            .physics_threads(8)
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 4)
            .unwrap();
        assert_eq!(
            serial, composed,
            "{mode:?}: mobile sweep workers × physics threads changed results"
        );
    }
}

#[test]
fn churned_scenarios_are_reproducible_and_physics_thread_invariant() {
    // The determinism contract extended to dynamic populations: churn
    // (kills, teleporting rejoins, spawns) × every interference mode,
    // with per-round stats recorded, must be byte-identical across
    // repeated runs and across physics thread counts {1, 2, 8}.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 60,
            density: 30.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(mode)
        .churn(ChurnSpec::poisson(2.0, 5.0, 4))
        .record_rounds()
        .budget(600);
        let baseline = scenario.clone().build().unwrap().run(42).unwrap();
        assert_eq!(
            baseline,
            scenario.clone().build().unwrap().run(42).unwrap(),
            "{mode:?}: repeated churned runs differ"
        );
        for threads in [2usize, 8] {
            let sharded = scenario
                .clone()
                .physics_threads(threads)
                .build()
                .unwrap()
                .run(42)
                .unwrap();
            assert_eq!(
                baseline, sharded,
                "{mode:?}: physics_threads({threads}) changed the churned run"
            );
        }
    }
}

#[test]
fn churned_mobile_sweeps_compose_with_physics_threads() {
    // Churn AND mobility AND both axes of parallelism at once, in every
    // mode: multi-threaded sweeps of multi-threaded churned-mobile trials
    // reproduce the serial sweep byte-for-byte.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 50,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::ReFloodBroadcast {
            source: 0,
            p: 0.25,
            burst_rounds: 24,
        })
        .interference_mode(mode)
        .mobility(MobilitySpec::random_waypoint(0.2, 8))
        .churn(ChurnSpec::poisson(1.5, 6.0, 4))
        .budget(400);
        let seeds: Vec<u64> = (0..4).collect();
        let serial = scenario
            .clone()
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 1)
            .unwrap();
        let composed = scenario
            .clone()
            .physics_threads(8)
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 4)
            .unwrap();
        assert_eq!(
            serial, composed,
            "{mode:?}: churned sweep workers × physics threads changed results"
        );
    }
}

#[test]
fn churn_actually_perturbs_the_run() {
    // Guard against the churned battery passing vacuously: with these
    // rates the churned run must differ from the static run of the same
    // seed.
    let build = |churned: bool| {
        let s = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 60,
            density: 30.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .record_rounds()
        .budget(400);
        if churned {
            s.churn(ChurnSpec::poisson(2.0, 5.0, 4))
        } else {
            s
        }
        .build()
        .unwrap()
    };
    assert_ne!(
        build(false).run(5).unwrap(),
        build(true).run(5).unwrap(),
        "churn at these rates must show up in the report"
    );
}

#[test]
fn acceptance_churned_waypoint_10k_is_byte_identical_at_any_thread_count() {
    // The ISSUE's churned acceptance bar: random-waypoint mobility plus a
    // teleport-churn population (stations die and rejoin at fresh uniform
    // positions, Poisson arrivals spawning beyond the tombstone pool) at
    // n = 10⁴ with 8-round epochs, swept through `.sweep(seeds)`, must
    // produce byte-identical `RunReport`s at physics threads {1, 2, 8}.
    // Grid-native physics and a 3-epoch budget keep wall-clock small;
    // equality is what matters, not completion.
    let seeds: Vec<u64> = vec![3, 4];
    let base = Scenario::new(TopologySpec::UniformSquare {
        n: 10_000,
        side: 18.0,
    })
    .protocol(ProtocolSpec::ReFloodBroadcast {
        source: 0,
        p: 0.05,
        burst_rounds: 16,
    })
    .fast_physics()
    .mobility(MobilitySpec::random_waypoint(0.25, 8))
    .churn(ChurnSpec::poisson(20.0, 6.0, 8))
    .record_rounds()
    .budget(24);
    let baseline = base.clone().build().unwrap().sweep(&seeds).unwrap();
    for threads in [2usize, 8] {
        let sharded = base
            .clone()
            .physics_threads(threads)
            .build()
            .unwrap()
            .sweep(&seeds)
            .unwrap();
        assert_eq!(
            baseline, sharded,
            "n=10^4 churned sweep changed at physics_threads({threads})"
        );
    }
}

#[test]
fn acceptance_mobile_waypoint_10k_is_byte_identical_at_any_thread_count() {
    // The ISSUE's acceptance bar verbatim: a random-waypoint scenario at
    // n = 10⁴ with 8-round epochs, swept through `.sweep(seeds)`, must
    // produce byte-identical `RunReport`s at physics_threads {1, 2, 8}.
    // Grid-native physics and a 3-epoch flood keep the wall-clock small;
    // equality is what matters, not completion.
    let seeds: Vec<u64> = vec![3, 4];
    let base = Scenario::new(TopologySpec::UniformSquare {
        n: 10_000,
        side: 18.0,
    })
    .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.05 })
    .fast_physics()
    .mobility(MobilitySpec::random_waypoint(0.25, 8))
    .record_rounds()
    .budget(24);
    let baseline = base.clone().build().unwrap().sweep(&seeds).unwrap();
    for threads in [2usize, 8] {
        let sharded = base
            .clone()
            .physics_threads(threads)
            .build()
            .unwrap()
            .sweep(&seeds)
            .unwrap();
        assert_eq!(
            baseline, sharded,
            "n=10^4 mobile sweep changed at physics_threads({threads})"
        );
    }
}

#[test]
fn fast_physics_selects_grid_native_and_completes() {
    let sim = Scenario::new(TopologySpec::ConnectedSquareDensity {
        n: 60,
        density: 30.0,
    })
    .constants(fast())
    .protocol(ProtocolSpec::SBroadcast { source: 0 })
    .fast_physics()
    .budget(2_000_000)
    .build()
    .unwrap();
    let report = sim.run(7).unwrap();
    assert!(report.completed, "broadcast under fast physics: {report:?}");
    assert_eq!(report.informed, report.n);
}

use sinr_broadcast::core::sim::{AdversaryModel, AdversarySpec};

#[test]
fn adversarial_scenarios_are_reproducible_and_physics_thread_invariant() {
    // The determinism contract extended to fault injection: a composed
    // adversary (cut-vertex-targeted kills + jamming stations) × every
    // interference mode, with per-round stats recorded, must be
    // byte-identical across repeated runs and across physics thread
    // counts {1, 2, 8} — including the fault accounting itself.
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 60,
            density: 30.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::ReFloodBroadcastEstimate {
            source: 0,
            nu0: 60,
            burst_rounds: 32,
        })
        .interference_mode(mode)
        .adversary(
            AdversarySpec::cut_vertex_kill(0.15, 1, 8).and(AdversaryModel::Jam { jammers: 3 }),
        )
        .record_rounds()
        .budget(400);
        let baseline = scenario.clone().build().unwrap().run(42).unwrap();
        // Guard against a vacuous pass: the adversary must actually fire.
        let faults = baseline.faults.as_ref().expect("fault accounting");
        assert!(faults.kills > 0, "{mode:?}: cut-vertex adversary idle");
        assert!(faults.jam_rounds > 0, "{mode:?}: jammers idle");
        assert!(
            !faults.coverage.is_empty(),
            "{mode:?}: no degradation curve"
        );
        assert_eq!(
            baseline,
            scenario.clone().build().unwrap().run(42).unwrap(),
            "{mode:?}: repeated adversarial runs differ"
        );
        for threads in [2usize, 8] {
            let sharded = scenario
                .clone()
                .physics_threads(threads)
                .build()
                .unwrap()
                .run(42)
                .unwrap();
            assert_eq!(
                baseline, sharded,
                "{mode:?}: physics_threads({threads}) changed the adversarial run"
            );
        }
    }
}

#[test]
fn adversarial_churned_sweeps_compose_with_physics_threads() {
    // Faults AND churn AND both axes of parallelism at once, in every
    // mode: multi-threaded sweeps of multi-threaded adversarial trials
    // reproduce the serial sweep byte-for-byte (adversary kills and
    // churn kills deduplicate at shared boundaries, deterministically).
    for mode in all_modes() {
        let scenario = Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 50,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::ReFloodBroadcast {
            source: 0,
            p: 0.25,
            burst_rounds: 24,
        })
        .interference_mode(mode)
        .churn(ChurnSpec::poisson(1.5, 6.0, 4))
        .adversary(
            AdversarySpec::cut_vertex_kill(0.1, 1, 4).and(AdversaryModel::Jam { jammers: 2 }),
        )
        .budget(400);
        let seeds: Vec<u64> = (0..4).collect();
        let serial = scenario
            .clone()
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 1)
            .unwrap();
        let composed = scenario
            .clone()
            .physics_threads(8)
            .build()
            .unwrap()
            .sweep_with_threads(&seeds, 4)
            .unwrap();
        assert_eq!(
            serial, composed,
            "{mode:?}: adversarial sweep workers × physics threads changed results"
        );
    }
}
