//! Golden regression tests: exact deterministic outputs pinned for fixed
//! seeds. These protect the reproduction against silent behavioural drift —
//! any change to the RNG derivation, the reception oracle, or the protocol
//! schedules will flip one of these and must be reviewed deliberately.
//!
//! If a change is *intended* (e.g. a bug fix in the oracle), update the
//! pinned values and note the change in the commit message.

use sinr_broadcast::core::{run_stabilize, Constants};
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::netgen::{cluster, line, uniform};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::runtime::derive_seed;
use sinr_broadcast::sim::{ChurnSpec, MobilitySpec, ProtocolSpec, Scenario, TopologySpec};

#[test]
fn seed_derivation_pinned() {
    // SplitMix64 outputs; changing these re-randomises every experiment.
    assert_eq!(derive_seed(0, 0, 0), derive_seed(0, 0, 0));
    assert_ne!(derive_seed(0, 0, 0), derive_seed(0, 1, 0));
    let a = derive_seed(20140714, 5, 1);
    let b = derive_seed(20140714, 5, 1);
    assert_eq!(a, b);
}

#[test]
fn uniform_generator_pinned() {
    let pts = uniform::square(4, 1.0, 99);
    // Coordinates are deterministic for the pinned rand version/seed.
    let again = uniform::square(4, 1.0, 99);
    assert_eq!(pts, again);
    // Structural pins that survive rand-version bumps:
    assert_eq!(pts.len(), 4);
    assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.x)));
}

#[test]
fn topology_spec_matches_direct_generator() {
    // The declarative spec and a direct generator call agree for equal
    // generator seeds (the spec's seed stream is pinned by construction).
    let params = SinrParams::default_plane();
    let sim = Scenario::new(TopologySpec::UniformSquare { n: 4, side: 1.0 })
        .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 })
        .budget(10)
        .build()
        .unwrap();
    let seed = 99u64;
    let via_spec = sim.materialize(seed).unwrap();
    let direct = uniform::square(4, 1.0, derive_seed(seed, 0x544F_504F, 0));
    assert_eq!(via_spec, direct, "topology stream derivation is pinned");
    let _ = params;
}

#[test]
fn coloring_outcome_pinned() {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let pts = line::uniform_line(12, 0.45);
    let a = run_stabilize(pts.clone(), &params, consts, 77).unwrap();
    let b = run_stabilize(pts, &params, consts, 77).unwrap();
    assert_eq!(a, b, "coloring must be bit-for-bit reproducible");
    assert_eq!(a.rounds, consts.coloring_rounds(12));
}

#[test]
fn broadcast_rounds_pinned_within_run() {
    let params = SinrParams::default_plane();
    let pts = cluster::chain_for_diameter(3, 8, &params, 11);
    let sim = Scenario::new(pts)
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .budget(2_000_000)
        .build()
        .unwrap();
    let a = sim.run(123).unwrap();
    let b = sim.run(123).unwrap();
    assert_eq!(a, b, "broadcast reports must be identical for equal seeds");
    assert!(a.completed);
}

#[test]
fn reception_oracle_pinned_case() {
    // A hand-computed SINR case pinned numerically: receiver at 0.5 from
    // the transmitter, one interferer at 1.5.
    use sinr_broadcast::phy::{resolve_round, InterferenceMode};
    let params = SinrParams::default_plane();
    let pts = vec![
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.0),
        Point2::new(2.0, 0.0),
    ];
    // Signal = 1.2/0.125 = 9.6; interference = 1.2/3.375 = 0.3556;
    // SINR = 9.6 / (1 + 0.3556) = 7.081 >= 1.2 -> decoded.
    let out = resolve_round(&pts, &params, &[0, 2], InterferenceMode::Exact, None);
    assert_eq!(out.decoded_from[1], Some(0));
    // Move the interferer to 0.8 from the receiver: interference =
    // 1.2/0.512 = 2.34; SINR = 9.6/3.34 = 2.87 -> still decoded.
    let pts2 = vec![
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.0),
        Point2::new(1.3, 0.0),
    ];
    let out2 = resolve_round(&pts2, &params, &[0, 2], InterferenceMode::Exact, None);
    assert_eq!(out2.decoded_from[1], Some(0));
    // Interferer at 0.6 from the receiver: interference = 1.2/0.216 =
    // 5.56; SINR = 9.6/6.56 = 1.46 -> decoded. At 0.55: interference =
    // 1.2/0.166 = 7.21; SINR = 9.6/8.21 = 1.17 < 1.2 -> jammed.
    let pts3 = vec![
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.0),
        Point2::new(1.05, 0.0),
    ];
    let out3 = resolve_round(&pts3, &params, &[0, 2], InterferenceMode::Exact, None);
    assert_eq!(out3.decoded_from[1], None, "marginal jam case flipped");
}

#[test]
fn mobile_broadcast_golden() {
    // A seeded mobile run pinned end to end: flood over a 6×6 lattice
    // with random-waypoint motion every 4 rounds. Any change to the
    // mobility stream derivation, the waypoint arithmetic, or the epoch
    // reindex path flips these values and must be reviewed deliberately
    // (the example `examples/mobile_broadcast.rs` exercises the same
    // builder surface at scale).
    let sim = Scenario::new(TopologySpec::Lattice {
        rows: 6,
        cols: 6,
        spacing: 0.6,
    })
    .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.3 })
    .mobility(MobilitySpec::random_waypoint(0.2, 4))
    .budget(500)
    .build()
    .unwrap();
    let a = sim.run(2014).unwrap();
    assert_eq!(a, sim.run(2014).unwrap(), "mobile golden run must replay");
    assert!(a.completed);
    assert_eq!(a.informed, 36);
    assert_eq!(a.rounds, 16, "pinned mobile flood round count drifted");
    assert_eq!(
        a.total_transmissions, 84,
        "pinned mobile flood energy drifted"
    );
}

#[test]
fn churned_broadcast_golden() {
    // A seeded churned run pinned end to end: re-flooding broadcast over
    // a 6×6 lattice with random-waypoint motion every 4 rounds AND
    // Poisson churn every 4 rounds. Any change to the churn stream
    // derivation, the delta application order, the lifecycle event
    // sequence, or the epoch refresh path flips these values and must be
    // reviewed deliberately (the example `examples/churn_broadcast.rs`
    // exercises the same builder surface at scale).
    let sim = Scenario::new(TopologySpec::Lattice {
        rows: 6,
        cols: 6,
        spacing: 0.6,
    })
    .protocol(ProtocolSpec::ReFloodBroadcast {
        source: 0,
        p: 0.3,
        burst_rounds: 16,
    })
    .mobility(MobilitySpec::random_waypoint(0.2, 4))
    .churn(ChurnSpec::poisson(1.5, 6.0, 4))
    .budget(500)
    .build()
    .unwrap();
    let a = sim.run(2014).unwrap();
    assert_eq!(a, sim.run(2014).unwrap(), "churned golden run must replay");
    assert_eq!(a.n, 36, "reports carry the initial population");
    assert_eq!(
        a.rounds, GOLDEN_CHURN_ROUNDS,
        "pinned churned round count drifted"
    );
    assert_eq!(
        a.total_transmissions, GOLDEN_CHURN_TX,
        "pinned churned energy drifted"
    );
    assert!(a.completed, "every live station informed within budget");
    assert_eq!(
        a.informed, GOLDEN_CHURN_INFORMED,
        "informed counts the live survivors (n = 36 at epoch 0)"
    );
}

/// Pinned values of `churned_broadcast_golden` (seed 2014).
const GOLDEN_CHURN_ROUNDS: u64 = 14;
const GOLDEN_CHURN_TX: u64 = 45;
const GOLDEN_CHURN_INFORMED: usize = 24;

#[test]
fn schedule_lengths_pinned() {
    // The global schedules are part of the protocol contract (phase
    // alignment depends on every node computing identical lengths).
    let c = Constants::tuned();
    assert_eq!(c.coloring_rounds(256), 1024);
    assert_eq!(c.coloring_rounds(1024), 2560);
    assert_eq!(c.dissemination_rounds(256), 3072);
    assert_eq!(c.phase_rounds(256), 4096);
    assert_eq!(c.num_levels(256), 2);
    assert_eq!(c.num_levels(2048), 5);
}

#[test]
fn adversarial_broadcast_golden() {
    // A seeded adversarial run pinned end to end: estimating re-flood
    // over a 6×6 lattice under a composed cut-vertex-kill + jamming
    // adversary every 4 rounds. Any change to the adversary stream
    // derivation, the cut-vertex probe, the fault merge order, or the
    // jam path flips these values and must be reviewed deliberately
    // (the example `examples/adversarial_broadcast.rs` exercises the
    // same builder surface at scale).
    use sinr_broadcast::sim::{AdversaryModel, AdversarySpec};
    let sim = Scenario::new(TopologySpec::Lattice {
        rows: 6,
        cols: 6,
        spacing: 0.6,
    })
    .protocol(ProtocolSpec::ReFloodBroadcastEstimate {
        source: 0,
        nu0: 36,
        burst_rounds: 16,
    })
    .adversary(
        AdversarySpec::cut_vertex_kill(0.15, 1, 4)
            .and(AdversaryModel::Blackout {
                fraction: 0.05,
                outage_epochs: 2,
            })
            .and(AdversaryModel::Jam { jammers: 1 }),
    )
    .budget(500)
    .build()
    .unwrap();
    let a = sim.run(2014).unwrap();
    assert_eq!(a, sim.run(2014).unwrap(), "adversarial golden must replay");
    let faults = a.faults.as_ref().expect("fault accounting present");
    assert!(a.completed, "every live station informed within budget");
    assert_eq!(a.rounds, 81, "pinned adversarial round count drifted");
    assert_eq!(
        a.total_transmissions, 125,
        "pinned adversarial energy drifted (jammer noise included)"
    );
    assert_eq!(a.informed, 29, "informed counts the live survivors");
    assert_eq!(faults.kills, 29, "pinned fault kill count drifted");
    assert_eq!(faults.returns, 22, "pinned blackout return count drifted");
    assert_eq!(faults.jam_rounds, 73, "pinned jammed-round count drifted");
    assert_eq!(
        faults.coverage.len(),
        21,
        "one coverage sample per adversary boundary"
    );
    let last = faults.coverage.last().unwrap();
    assert_eq!((last.round, last.informed, last.live), (80, 29, 29));
    assert_eq!(
        faults.recovery_rounds,
        Some(1),
        "re-convergence accounting from the last fault drifted"
    );
}
