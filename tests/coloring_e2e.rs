//! End-to-end coloring properties via the facade, including randomized
//! property checks over seeded random deployments (plain seeded loops —
//! the offline build has no proptest, and seeded loops are replayable).

use rand::{Rng, SeedableRng, SmallRng};
use sinr_broadcast::core::{invariant_report, run_stabilize, Constants};
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::netgen::{cluster, perturb};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::sim::{Outcome, ProtocolSpec, Scenario};

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        ..Constants::tuned()
    }
}

#[test]
fn colors_form_doubling_lattice() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(4, 12, &params, 3);
    let n = pts.len();
    let run = run_stabilize(pts, &params, consts, 9).unwrap();
    let p_start = consts.p_start(n);
    let terminal = 2.0 * consts.p_max();
    for &c in &run.coloring.colors {
        if (c - terminal).abs() < 1e-15 {
            continue;
        }
        let log = (c / p_start).log2();
        assert!(
            (log - log.round()).abs() < 1e-9,
            "color {c} not on the doubling lattice"
        );
    }
}

#[test]
fn palette_size_at_most_levels_plus_one() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(4, 12, &params, 4);
    let n = pts.len();
    let run = run_stabilize(pts, &params, consts, 11).unwrap();
    assert!(run.coloring.num_colors() <= consts.num_levels(n) as usize + 1);
}

#[test]
fn rerunning_coloring_is_deterministic() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 10, &params, 5);
    let a = run_stabilize(pts.clone(), &params, consts, 21).unwrap();
    let b = run_stabilize(pts, &params, consts, 21).unwrap();
    assert_eq!(a.coloring, b.coloring);
}

#[test]
fn scenario_coloring_agrees_with_run_stabilize() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 10, &params, 6);
    let legacy = run_stabilize(pts.clone(), &params, consts, 31).unwrap();
    let rep = Scenario::new(pts)
        .constants(consts)
        .protocol(ProtocolSpec::Coloring)
        .build()
        .unwrap()
        .run(31)
        .unwrap();
    match rep.outcome {
        Outcome::Coloring { ref coloring } => assert_eq!(*coloring, legacy.coloring),
        ref other => panic!("expected coloring outcome, got {other:?}"),
    }
    assert_eq!(rep.rounds, legacy.rounds);
}

/// On any random (min-separated) deployment, the coloring terminates with
/// every station colored, all colors positive and lattice-bounded, and the
/// Lemma 1 mass below a loose constant. Eight seeded random cases,
/// replayable by construction.
#[test]
fn coloring_invariants_on_random_deployments() {
    let params = SinrParams::default_plane();
    let consts = fast();
    for case in 0u64..8 {
        let mut rng = SmallRng::seed_from_u64(0xC010E + case);
        let n_pts = rng.gen_range(10usize..80);
        let seed = rng.gen_range(0u64..1000);
        let mut pts: Vec<Point2> = (0..n_pts)
            .map(|_| Point2::new(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
            .collect();
        perturb::enforce_min_separation(&mut pts, 1e-6);
        let n = pts.len();
        let run = run_stabilize(pts.clone(), &params, consts, seed).unwrap();
        assert_eq!(run.coloring.len(), n, "case {case}");
        let terminal = 2.0 * consts.p_max();
        for &c in &run.coloring.colors {
            assert!(c > 0.0 && c <= terminal + 1e-15, "case {case}: color {c}");
        }
        let rep = invariant_report(&pts, &run.coloring, params.eps());
        assert!(
            rep.max_unit_ball_mass <= consts.c1_cap * 8.0,
            "case {case}: lemma1 mass {} too large",
            rep.max_unit_ball_mass
        );
        assert!(rep.min_close_mass > 0.0, "case {case}");
    }
}
