//! End-to-end coloring properties via the facade, including property-based
//! tests over random deployments.

use proptest::prelude::*;
use sinr_broadcast::core::{invariant_report, run_stabilize, Constants};
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::netgen::{cluster, perturb};
use sinr_broadcast::phy::SinrParams;

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        ..Constants::tuned()
    }
}

#[test]
fn colors_form_doubling_lattice() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(4, 12, &params, 3);
    let n = pts.len();
    let run = run_stabilize(pts, &params, consts, 9).unwrap();
    let p_start = consts.p_start(n);
    let terminal = 2.0 * consts.p_max();
    for &c in &run.coloring.colors {
        if (c - terminal).abs() < 1e-15 {
            continue;
        }
        let log = (c / p_start).log2();
        assert!(
            (log - log.round()).abs() < 1e-9,
            "color {c} not on the doubling lattice"
        );
    }
}

#[test]
fn palette_size_at_most_levels_plus_one() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(4, 12, &params, 4);
    let n = pts.len();
    let run = run_stabilize(pts, &params, consts, 11).unwrap();
    assert!(run.coloring.num_colors() <= consts.num_levels(n) as usize + 1);
}

#[test]
fn rerunning_coloring_is_deterministic() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 10, &params, 5);
    let a = run_stabilize(pts.clone(), &params, consts, 21).unwrap();
    let b = run_stabilize(pts, &params, consts, 21).unwrap();
    assert_eq!(a.coloring, b.coloring);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On any random (min-separated) deployment, the coloring terminates
    /// with every station colored, all colors positive and lattice-bounded,
    /// and the Lemma 1 mass below a loose constant.
    #[test]
    fn coloring_invariants_on_random_deployments(
        coords in prop::collection::vec((0.0f64..4.0, 0.0f64..4.0), 10..80),
        seed in 0u64..1000,
    ) {
        let params = SinrParams::default_plane();
        let consts = fast();
        let mut pts: Vec<Point2> = coords.into_iter().map(Point2::from).collect();
        perturb::enforce_min_separation(&mut pts, 1e-6);
        let n = pts.len();
        let run = run_stabilize(pts.clone(), &params, consts, seed).unwrap();
        prop_assert_eq!(run.coloring.len(), n);
        let terminal = 2.0 * consts.p_max();
        for &c in &run.coloring.colors {
            prop_assert!(c > 0.0 && c <= terminal + 1e-15);
        }
        let rep = invariant_report(&pts, &run.coloring, params.eps());
        prop_assert!(rep.max_unit_ball_mass <= consts.c1_cap * 8.0,
            "lemma1 mass {} too large", rep.max_unit_ball_mass);
        prop_assert!(rep.min_close_mass > 0.0);
    }
}
