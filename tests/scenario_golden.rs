//! Golden equivalence and determinism tests for the `Scenario` API.
//!
//! Two contracts are pinned here:
//!
//! 1. **Legacy equivalence** — for every protocol with a legacy `run_*`
//!    runner, `Scenario::run(seed)` on the same explicit topology
//!    reproduces the legacy report **field-for-field**;
//! 2. **Sweep determinism** — `Simulation::sweep` returns identical
//!    reports for 1 worker thread and many, and `run(seed)` twice is
//!    bit-for-bit identical.

#![allow(deprecated)] // the point of this file is comparing against the legacy runners

use sinr_broadcast::core::run::{
    run_adhoc_wakeup, run_consensus, run_daum_broadcast, run_established_wakeup,
    run_flood_broadcast, run_leader_election, run_local_broadcast, run_nos_broadcast,
    run_nos_broadcast_with_estimate, run_s_broadcast, run_s_broadcast_in_mode,
    run_s_broadcast_with_estimate,
};
use sinr_broadcast::core::sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};
use sinr_broadcast::core::{baselines::run_gps_oracle_broadcast, run_stabilize, Constants};
use sinr_broadcast::geometry::Point2;
use sinr_broadcast::phy::{InterferenceMode, SinrParams};
use sinr_broadcast::runtime::WakeSchedule;

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

fn path(n: usize) -> Vec<Point2> {
    (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect()
}

/// Builds the scenario every broadcast-style case uses.
fn sim_for(spec: ProtocolSpec, budget: u64) -> sinr_broadcast::sim::Simulation {
    Scenario::new(path(6))
        .constants(fast())
        .protocol(spec)
        .budget(budget)
        .build()
        .expect("valid scenario")
}

#[test]
fn nos_broadcast_matches_legacy() {
    let params = SinrParams::default_plane();
    let legacy = run_nos_broadcast(path(6), &params, fast(), 0, 11, 500_000).unwrap();
    let new = sim_for(ProtocolSpec::NoSBroadcast { source: 0 }, 500_000)
        .run(11)
        .unwrap();
    assert_eq!(legacy.n, new.n);
    assert_eq!(legacy.rounds, new.rounds);
    assert_eq!(legacy.completed, new.completed);
    assert_eq!(legacy.informed, new.informed);
    assert_eq!(legacy.total_transmissions, new.total_transmissions);
}

#[test]
fn s_broadcast_matches_legacy() {
    let params = SinrParams::default_plane();
    let legacy = run_s_broadcast(path(6), &params, fast(), 0, 12, 500_000).unwrap();
    let new = sim_for(ProtocolSpec::SBroadcast { source: 0 }, 500_000)
        .run(12)
        .unwrap();
    assert_eq!(
        (
            legacy.n,
            legacy.rounds,
            legacy.completed,
            legacy.informed,
            legacy.total_transmissions
        ),
        (
            new.n,
            new.rounds,
            new.completed,
            new.informed,
            new.total_transmissions
        )
    );
}

#[test]
fn estimate_broadcasts_match_legacy() {
    let params = SinrParams::default_plane();
    let legacy =
        run_s_broadcast_with_estimate(path(6), &params, fast(), 0, 48, 13, 2_000_000).unwrap();
    let new = sim_for(
        ProtocolSpec::SBroadcastWithEstimate { source: 0, nu: 48 },
        2_000_000,
    )
    .run(13)
    .unwrap();
    assert_eq!(
        (legacy.rounds, legacy.completed, legacy.total_transmissions),
        (new.rounds, new.completed, new.total_transmissions)
    );

    let budget = fast().phase_rounds(48) * 60;
    let legacy =
        run_nos_broadcast_with_estimate(path(6), &params, fast(), 0, 48, 14, budget).unwrap();
    let new = sim_for(
        ProtocolSpec::NoSBroadcastWithEstimate { source: 0, nu: 48 },
        budget,
    )
    .run(14)
    .unwrap();
    assert_eq!(
        (legacy.rounds, legacy.completed, legacy.total_transmissions),
        (new.rounds, new.completed, new.total_transmissions)
    );
}

#[test]
fn baselines_match_legacy() {
    let params = SinrParams::default_plane();

    let legacy = run_daum_broadcast(path(6), &params, 0, None, 15, 200_000).unwrap();
    let new = sim_for(
        ProtocolSpec::DaumBroadcast {
            source: 0,
            granularity: None,
        },
        200_000,
    )
    .run(15)
    .unwrap();
    assert_eq!(
        (legacy.rounds, legacy.completed, legacy.total_transmissions),
        (new.rounds, new.completed, new.total_transmissions),
        "daum"
    );

    let legacy = run_flood_broadcast(path(6), &params, 0, 0.3, 16, 200_000).unwrap();
    let new = sim_for(ProtocolSpec::FloodBroadcast { source: 0, p: 0.3 }, 200_000)
        .run(16)
        .unwrap();
    assert_eq!(
        (legacy.rounds, legacy.completed, legacy.total_transmissions),
        (new.rounds, new.completed, new.total_transmissions),
        "flood"
    );

    let legacy = run_local_broadcast(path(6), &params, 0, 17, 200_000).unwrap();
    let new = sim_for(ProtocolSpec::LocalBroadcast { source: 0 }, 200_000)
        .run(17)
        .unwrap();
    assert_eq!(
        (legacy.rounds, legacy.completed, legacy.total_transmissions),
        (new.rounds, new.completed, new.total_transmissions),
        "local"
    );

    let legacy = run_gps_oracle_broadcast(path(6), &params, 0, 18, 200_000).unwrap();
    let new = sim_for(ProtocolSpec::GpsOracleBroadcast { source: 0 }, 200_000)
        .run(18)
        .unwrap();
    assert_eq!(
        (
            legacy.rounds,
            legacy.completed,
            legacy.informed,
            legacy.total_transmissions
        ),
        (
            new.rounds,
            new.completed,
            new.informed,
            new.total_transmissions
        ),
        "gps oracle"
    );
}

#[test]
fn interference_mode_matches_legacy() {
    let params = SinrParams::default_plane();
    for mode in [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
    ] {
        let legacy =
            run_s_broadcast_in_mode(path(6), &params, fast(), 0, mode, 19, 500_000).unwrap();
        let new = Scenario::new(path(6))
            .constants(fast())
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .interference_mode(mode)
            .budget(500_000)
            .build()
            .unwrap()
            .run(19)
            .unwrap();
        assert_eq!(
            (legacy.rounds, legacy.completed, legacy.total_transmissions),
            (new.rounds, new.completed, new.total_transmissions),
            "{mode:?}"
        );
    }
}

#[test]
fn coloring_matches_legacy_stabilize() {
    let params = SinrParams::default_plane();
    let legacy = run_stabilize(path(8), &params, fast(), 21).unwrap();
    let new = Scenario::new(path(8))
        .constants(fast())
        .protocol(ProtocolSpec::Coloring)
        .build()
        .unwrap()
        .run(21)
        .unwrap();
    assert_eq!(legacy.rounds, new.rounds);
    assert_eq!(legacy.total_transmissions, new.total_transmissions);
    match new.outcome {
        Outcome::Coloring { ref coloring } => assert_eq!(*coloring, legacy.coloring),
        ref other => panic!("expected coloring outcome, got {other:?}"),
    }
    assert!(new.completed, "full schedule ran");
    assert_eq!(new.informed, 8, "all stations colored");
}

#[test]
fn truncated_coloring_reports_incomplete_instead_of_panicking() {
    // A budget below the Fact 7 schedule caps the run: unfinished
    // stations report color 0.0 and completed is false (regression test
    // for a panic at `color().expect("schedule complete")`).
    let rep = Scenario::new(path(8))
        .constants(fast())
        .protocol(ProtocolSpec::Coloring)
        .budget(3)
        .build()
        .unwrap()
        .run(21)
        .unwrap();
    assert!(!rep.completed);
    assert_eq!(rep.rounds, 3);
    match rep.outcome {
        Outcome::Coloring { ref coloring } => {
            assert_eq!(coloring.len(), 8);
            assert!(
                coloring.colors.iter().all(|&c| c == 0.0),
                "3 rounds cannot finish any station's schedule"
            );
        }
        ref other => panic!("expected coloring outcome, got {other:?}"),
    }
}

#[test]
fn wakeup_matches_legacy() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let schedule = WakeSchedule::single(0, 13);
    let budget = consts.phase_rounds(6) * 60;
    let legacy = run_adhoc_wakeup(path(6), &params, consts, &schedule, 22, budget).unwrap();
    let new = sim_for(
        ProtocolSpec::AdhocWakeup {
            schedule: schedule.clone(),
        },
        budget,
    )
    .run(22)
    .unwrap();
    assert_eq!(legacy.completed, new.completed);
    match new.outcome {
        Outcome::Wakeup {
            first_wake,
            rounds_from_first_wake,
        } => {
            assert_eq!(legacy.first_wake, first_wake);
            assert_eq!(legacy.rounds_from_first_wake, rounds_from_first_wake);
        }
        ref other => panic!("expected wakeup outcome, got {other:?}"),
    }
}

#[test]
fn established_wakeup_matches_legacy() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let backbone = run_stabilize(path(6), &params, consts, 4).unwrap();
    let mut initiators = vec![false; 6];
    initiators[0] = true;
    let budget = consts.wakeup_window(6, 5) * 3;
    let legacy = run_established_wakeup(
        path(6),
        &params,
        consts,
        &backbone.coloring,
        &initiators,
        23,
        budget,
    )
    .unwrap();
    let new = sim_for(
        ProtocolSpec::EstablishedWakeup {
            coloring: backbone.coloring.clone(),
            initiators: initiators.clone(),
        },
        budget,
    )
    .run(23)
    .unwrap();
    assert_eq!(
        (
            legacy.rounds,
            legacy.completed,
            legacy.informed,
            legacy.total_transmissions
        ),
        (
            new.rounds,
            new.completed,
            new.informed,
            new.total_transmissions
        )
    );
}

#[test]
fn consensus_matches_legacy() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let values = [6u64, 2, 5, 7, 3, 4];
    let legacy = run_consensus(path(6), &params, consts, &values, 3, 4, 24).unwrap();
    let new = Scenario::new(path(6))
        .constants(consts)
        .protocol(ProtocolSpec::Consensus {
            values: values.to_vec(),
            bits: 3,
            d_bound: 4,
        })
        .build()
        .unwrap()
        .run(24)
        .unwrap();
    assert_eq!(legacy.rounds, new.rounds);
    match new.outcome {
        Outcome::Consensus {
            ref decided,
            agreement,
            valid,
        } => {
            assert_eq!(legacy.decided, *decided);
            assert_eq!(legacy.agreement, agreement);
            assert_eq!(legacy.valid, valid);
        }
        ref other => panic!("expected consensus outcome, got {other:?}"),
    }
}

#[test]
fn leader_election_matches_legacy() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let legacy = run_leader_election(path(6), &params, consts, 6, 25).unwrap();
    let new = Scenario::new(path(6))
        .constants(consts)
        .protocol(ProtocolSpec::LeaderElection { d_bound: 6 })
        .build()
        .unwrap()
        .run(25)
        .unwrap();
    assert_eq!(legacy.rounds, new.rounds);
    match new.outcome {
        Outcome::Leader {
            ref leaders,
            unique,
        } => {
            assert_eq!(legacy.leaders, *leaders);
            assert_eq!(legacy.unique, unique);
        }
        ref other => panic!("expected leader outcome, got {other:?}"),
    }
}

#[test]
fn alert_is_deterministic_and_spreads() {
    // No legacy runner existed for the alert protocol; pin determinism
    // and the completion semantics instead.
    let params = SinrParams::default_plane();
    let consts = fast();
    let backbone = run_stabilize(path(6), &params, consts, 4).unwrap();
    let sim = sim_for(
        ProtocolSpec::Alert {
            coloring: backbone.coloring.clone(),
            alerts: vec![(3, 7)],
            d_bound: 6,
        },
        consts.wakeup_window(6, 6) * 4,
    );
    let a = sim.run(26).unwrap();
    let b = sim.run(26).unwrap();
    assert_eq!(a, b);
    assert!(a.completed, "{a:?}");
    match a.outcome {
        Outcome::Alert { ref learned_at } => {
            assert_eq!(learned_at[3], Some(7));
            assert!(learned_at.iter().all(|r| r.is_some()));
        }
        ref other => panic!("expected alert outcome, got {other:?}"),
    }
}

#[test]
fn sweep_is_thread_count_invariant() {
    // The ISSUE's core determinism claim: a sweep's reports are identical
    // no matter how many worker threads execute it.
    let seeds: Vec<u64> = (0..12).collect();
    for spec in [
        ProtocolSpec::SBroadcast { source: 0 },
        ProtocolSpec::NoSBroadcast { source: 0 },
        ProtocolSpec::FloodBroadcast { source: 0, p: 0.3 },
    ] {
        let sim = sim_for(spec, 500_000);
        let serial = sim.sweep_with_threads(&seeds, 1).unwrap();
        let parallel = sim.sweep_with_threads(&seeds, 8).unwrap();
        let auto = sim.sweep(&seeds).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, auto);
        assert_eq!(serial.seeds(), seeds);
    }
}

#[test]
fn generated_topology_sweep_is_thread_count_invariant() {
    // Generated topologies draw a fresh deployment per seed; the sweep
    // must still be deterministic and thread-count invariant.
    let sim = Scenario::new(TopologySpec::ClusterChain {
        diameter: 2,
        per_cluster: 6,
    })
    .constants(fast())
    .protocol(ProtocolSpec::SBroadcast { source: 0 })
    .budget(500_000)
    .build()
    .unwrap();
    let seeds: Vec<u64> = (100..108).collect();
    let serial = sim.sweep_with_threads(&seeds, 1).unwrap();
    let parallel = sim.sweep_with_threads(&seeds, 4).unwrap();
    assert_eq!(serial, parallel);
    // Distinct seeds draw distinct deployments (whp) — materialize is the
    // same stream the runs used.
    let a = sim.materialize(100).unwrap();
    let b = sim.materialize(101).unwrap();
    assert_ne!(a, b);
    assert_eq!(a.len(), 18);
}

#[test]
fn run_is_bit_for_bit_reproducible() {
    let sim = sim_for(ProtocolSpec::SBroadcast { source: 0 }, 500_000);
    let a = sim.run(99).unwrap();
    let b = sim.run(99).unwrap();
    assert_eq!(a, b);
    let c = sim.run(100).unwrap();
    assert_ne!(a, c, "different seeds must differ somewhere");
}
