//! The explicit-SIMD contract: every dispatched kernel tier is **bitwise
//! identical, per element,** to the scalar reference path.
//!
//! Three layers of pinning:
//!
//! 1. kernel level — `distance_sq_batch_with`, `signal_at_sq_batch_with`
//!    and `for_each_within_sq_with` compared `to_bits()`-element-wise
//!    between the machine's [`hardware_tier`] and a forced
//!    [`SimdTier::Scalar`], across point families (uniform / cluster /
//!    line / grid) × axes {1, 2, 3} × α ∈ {2, 3, 4} × slice lengths
//!    {0, 1, lane−1, lane, lane+1, 4·lane+3} × the `MIN_DISTANCE` clamp
//!    boundary;
//! 2. predicate level — the sqrt-free ball criterion
//!    ([`radius_criterion`]) probed exhaustively through the ulp
//!    neighborhood of its boundary against the `d2.sqrt() <= radius`
//!    test it replaces;
//! 3. protocol level — full `RunReport`s byte-equal between
//!    [`KernelDispatch::ForceScalar`] and the default auto dispatch at
//!    physics threads {1, 2, 8}, plus the `Accumulation::F32` build()
//!    rejection whenever bit-exact reporting is requested.
//!
//! On a machine whose hardware tier *is* scalar the differential pairs
//! degenerate to scalar-vs-scalar and pass trivially; CI keeps a
//! `SINR_KERNELS=scalar` leg so that regression coverage of the scalar
//! reference itself never depends on runner hardware.

use rand::{Rng, SeedableRng, SmallRng};

use sinr_broadcast::core::sim::{
    Accumulation, KernelDispatch, LoadObserver, Observer, ProtocolSpec, Scenario, TopologySpec,
};
use sinr_broadcast::core::Constants;
use sinr_broadcast::geometry::{
    hardware_tier, radius_criterion, GridIndex, Point1, Point2, Point3, PositionStore, SimdTier,
};
use sinr_broadcast::phy::{InterferenceMode, ReceptionOracle, SinrParams};

/// `MIN_DISTANCE²` — the clamp floor of `signal_at_sq*`.
const MIN2: f64 = SinrParams::MIN_DISTANCE * SinrParams::MIN_DISTANCE;

fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

fn next_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// The slice lengths the battery sweeps: the empty and singleton cases,
/// both sides of one vector width, and a multi-chunk length with a
/// remainder (deduplicated — on a scalar-only machine lane = 1 and the
/// lane-relative entries collapse).
fn lengths() -> Vec<usize> {
    let lane = hardware_tier().f64_lanes();
    let mut ls = vec![0, 1, lane.saturating_sub(1), lane, lane + 1, 4 * lane + 3];
    ls.sort_unstable();
    ls.dedup();
    ls
}

/// One 3-axis coordinate set per point family, `n` points from `seed`.
fn family_points(family: &str, n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match family {
            "uniform" => [
                rng.gen_range(-50.0..50.0),
                rng.gen_range(-50.0..50.0),
                rng.gen_range(-50.0..50.0),
            ],
            "cluster" => {
                // A handful of tight clusters: many near-equal distances,
                // so the comparison boundary gets real traffic.
                let c = (i % 5) as f64 * 17.0;
                [
                    c + rng.gen_range(-0.25..0.25),
                    c + rng.gen_range(-0.25..0.25),
                    c + rng.gen_range(-0.25..0.25),
                ]
            }
            "line" => {
                // Collinear points: degenerate geometry where one axis
                // carries all the signal and the others cancel exactly.
                let t = i as f64 * 0.73;
                [t, 2.0 * t, -t]
            }
            "grid" => {
                // Exact lattice coordinates — subtractions are exact, so
                // any tier divergence would come from the kernel alone.
                [(i % 7) as f64, ((i / 7) % 7) as f64, (i / 49) as f64]
            }
            other => panic!("unknown family {other}"),
        })
        .collect()
}

const FAMILIES: [&str; 4] = ["uniform", "cluster", "line", "grid"];

/// Builds the axis-restricted store for `axes` from 3-axis samples.
fn store_for(axes: usize, pts: &[[f64; 3]]) -> PositionStore {
    match axes {
        1 => PositionStore::from_points(&pts.iter().map(|p| Point1::new(p[0])).collect::<Vec<_>>()),
        2 => PositionStore::from_points(
            &pts.iter()
                .map(|p| Point2::new(p[0], p[1]))
                .collect::<Vec<_>>(),
        ),
        _ => PositionStore::from_points(
            &pts.iter()
                .map(|p| Point3::new(p[0], p[1], p[2]))
                .collect::<Vec<_>>(),
        ),
    }
}

#[test]
fn distance_kernels_match_scalar_bitwise_across_families_axes_and_lengths() {
    let auto = hardware_tier();
    for family in FAMILIES {
        for axes in [1usize, 2, 3] {
            for (li, &len) in lengths().iter().enumerate() {
                let seed = 1000 + li as u64;
                let pts = family_points(family, len + 1, seed);
                let store = store_for(axes, &pts);
                let center = pts[len]; // a same-family center, unused slot
                let mut vec_out = vec![f64::NAN; len];
                let mut ref_out = vec![f64::NAN; len];
                store.distance_sq_batch_with(0..len, &center, &mut vec_out, auto);
                store.distance_sq_batch_with(0..len, &center, &mut ref_out, SimdTier::Scalar);
                for k in 0..len {
                    assert_eq!(
                        vec_out[k].to_bits(),
                        ref_out[k].to_bits(),
                        "{family}/ax{axes}/len{len}: slot {k} diverged \
                         ({} vs {})",
                        vec_out[k],
                        ref_out[k],
                    );
                }
                // Misaligned start: the range need not begin at slot 0,
                // so the vector head/tail split shifts by one.
                if len > 1 {
                    store.distance_sq_batch_with(1..len, &center, &mut vec_out[..len - 1], auto);
                    store.distance_sq_batch_with(
                        1..len,
                        &center,
                        &mut ref_out[..len - 1],
                        SimdTier::Scalar,
                    );
                    for k in 0..len - 1 {
                        assert_eq!(
                            vec_out[k].to_bits(),
                            ref_out[k].to_bits(),
                            "{family}/ax{axes}/len{len}: offset slot {k} diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Squared-distance inputs that straddle the `MIN_DISTANCE` clamp floor
/// ulp-by-ulp, plus ordinary magnitudes.
fn clamp_boundary_inputs() -> Vec<f64> {
    vec![
        0.0,
        f64::MIN_POSITIVE,
        MIN2 / 2.0,
        next_down(MIN2),
        MIN2,
        next_up(MIN2),
        MIN2 * 2.0,
        1e-12,
        1.0,
        1.0 + f64::EPSILON,
        42.75,
        1e12,
    ]
}

#[test]
fn signal_kernels_match_scalar_bitwise_for_every_alpha_path() {
    let auto = hardware_tier();
    // α ∈ {2, 3, 4} exercise the vectorized integer-exponent fast paths;
    // 2.5 exercises the generic-α powf path (scalar on every tier — the
    // dispatch must agree with itself).
    for alpha in [2.0, 3.0, 4.0, 2.5] {
        let params = SinrParams::builder()
            .alpha(alpha)
            .build(1.5)
            .expect("valid test params");
        for family in FAMILIES {
            for (li, &len) in lengths().iter().enumerate() {
                let pts = family_points(family, len + 1, 2000 + li as u64);
                let store = store_for(3, &pts);
                let mut master = vec![0.0f64; len];
                store.distance_sq_batch_with(0..len, &pts[len], &mut master, SimdTier::Scalar);
                // Splice the clamp-boundary probes over the family
                // distances so every length ≥ 1 hits the clamp too.
                for (k, v) in clamp_boundary_inputs().into_iter().enumerate() {
                    if k < master.len() {
                        master[k] = v;
                    }
                }
                let mut vec_out = master.clone();
                let mut ref_out = master.clone();
                params.signal_at_sq_batch_with(&mut vec_out, auto);
                params.signal_at_sq_batch_with(&mut ref_out, SimdTier::Scalar);
                for k in 0..len {
                    assert_eq!(
                        vec_out[k].to_bits(),
                        ref_out[k].to_bits(),
                        "alpha {alpha} {family}/len{len}: d2={} produced {} vs {}",
                        master[k],
                        vec_out[k],
                        ref_out[k],
                    );
                }
            }
        }
    }
}

#[test]
fn signal_batch_agrees_with_the_documented_scalar_element_function() {
    // The batch kernel's per-element contract is `signal_at_sq` itself —
    // including at the clamp boundary.
    for alpha in [2.0, 3.0, 4.0] {
        let params = SinrParams::builder()
            .alpha(alpha)
            .build(1.5)
            .expect("valid test params");
        let inputs = clamp_boundary_inputs();
        let mut batch = inputs.clone();
        params.signal_at_sq_batch_with(&mut batch, hardware_tier());
        for (k, &d2) in inputs.iter().enumerate() {
            assert_eq!(
                batch[k].to_bits(),
                params.signal_at_sq(d2).to_bits(),
                "alpha {alpha}: batch[{k}] (d2={d2}) disagrees with signal_at_sq"
            );
        }
    }
}

#[test]
fn for_each_within_sq_matches_both_the_scalar_tier_and_the_sqrt_predicate() {
    let auto = hardware_tier();
    for family in FAMILIES {
        for n in [0usize, 1, 7, 64, 65, 257] {
            let pts = family_points(family, n.max(1), 31 + n as u64);
            let store = store_for(2, &pts);
            let center = [0.5, -0.5, 0.0];
            // A radius that puts a meaningful fraction of each family
            // inside the ball.
            for radius in [0.0, 3.0, 40.0] {
                let criterion = radius_criterion(radius);
                let collect = |tier: SimdTier| {
                    let mut hits = Vec::new();
                    store.for_each_within_sq_with(0..n, &center, criterion, tier, |s| {
                        hits.push(s);
                    });
                    hits
                };
                let fast = collect(auto);
                let scalar = collect(SimdTier::Scalar);
                assert_eq!(fast, scalar, "{family}/n{n}/r{radius}: tiers disagree");
                let mut sqrt_path = Vec::new();
                store.for_each_within(0..n, &center, radius, |s| sqrt_path.push(s));
                assert_eq!(
                    fast, sqrt_path,
                    "{family}/n{n}/r{radius}: sqrt-free differs from the sqrt predicate"
                );
            }
        }
    }
}

#[test]
fn radius_criterion_boundary_is_bit_equivalent_through_the_ulp_neighborhood() {
    // For each radius, walk the squared-distance axis ulp-by-ulp through
    // the criterion boundary and demand the sqrt-free predicate makes the
    // exact same decision as the sqrt test at every probe.
    let radii = [
        0.0,
        f64::MIN_POSITIVE,
        SinrParams::MIN_DISTANCE,
        0.75,
        1.0,
        next_up(1.0),
        3.0_f64.sqrt(),
        42.0,
        1e155, // near the overflow edge of squaring
    ];
    for r in radii {
        let c = radius_criterion(r);
        assert!(
            c.sqrt() <= r,
            "criterion itself must satisfy the predicate (r={r})"
        );
        if c.is_finite() && c > 0.0 {
            assert!(
                next_up(c).sqrt() > r,
                "criterion must be the LARGEST satisfying d2 (r={r})"
            );
        }
        let lo = if c.to_bits() >= 512 {
            c.to_bits() - 512
        } else {
            0
        };
        for bits in lo..=c.to_bits() + 512 {
            let d2 = f64::from_bits(bits);
            assert_eq!(
                d2 <= c,
                d2.sqrt() <= r,
                "r={r}: decisions split at d2={d2:e} (bits {bits:#x})"
            );
        }
    }
    // Degenerate radii: NaN and negatives admit nothing, +inf everything.
    assert_eq!(radius_criterion(f64::NAN), f64::NEG_INFINITY);
    assert_eq!(radius_criterion(-1.0), f64::NEG_INFINITY);
    assert_eq!(radius_criterion(f64::INFINITY), f64::INFINITY);
    // A NaN distance is unordered against any criterion, so it never
    // enters a ball — matching the NaN-propagating sqrt test.
    assert!(f64::NAN
        .partial_cmp(&radius_criterion(f64::INFINITY))
        .is_none());
}

#[test]
fn store_level_ball_decisions_agree_at_deliberately_boundary_distances() {
    // 1-axis points manufactured to land their computed squared distance
    // inside the ulp neighborhood of the criterion: x = sqrt(probe), so
    // RN(x²) clusters within an ulp or two of the probe value. Whatever
    // d2 actually materializes, all three paths must agree on it.
    let radius = 2.5f64;
    let criterion = radius_criterion(radius);
    let mut probes = Vec::new();
    for delta in -40i64..=40 {
        let bits = (criterion.to_bits() as i64 + delta) as u64;
        probes.push(f64::from_bits(bits).sqrt());
    }
    let store =
        PositionStore::from_points(&probes.iter().map(|&x| Point1::new(x)).collect::<Vec<_>>());
    let center = [0.0, 0.0, 0.0];
    let n = probes.len();
    let collect = |tier: SimdTier| {
        let mut hits = Vec::new();
        store.for_each_within_sq_with(0..n, &center, criterion, tier, |s| hits.push(s));
        hits
    };
    let fast = collect(hardware_tier());
    assert_eq!(
        fast,
        collect(SimdTier::Scalar),
        "tiers disagree at the boundary"
    );
    let mut sqrt_path = Vec::new();
    store.for_each_within(0..n, &center, radius, |s| sqrt_path.push(s));
    assert_eq!(fast, sqrt_path, "sqrt-free ball differs at the boundary");
    assert!(
        !fast.is_empty() && fast.len() < n,
        "probe set must actually straddle the boundary (got {}/{n} inside)",
        fast.len()
    );
}

#[test]
fn f32_tail_error_stays_within_the_documented_bound_at_ten_thousand_stations() {
    // The EXPERIMENTS.md error table at measurement scale: worst relative
    // error of the F32 far-field tail fold over every station's total
    // received power, n = 10⁴, grid-native mode, per α fast path. The
    // phy crate docs cite the 4×10⁻⁷ ceiling this test enforces.
    let n = 10_000usize;
    let side = (n as f64 / 30.0).sqrt(); // the bench suite's density
    let mut rng = SmallRng::seed_from_u64(7);
    let pts: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let grid = GridIndex::build(&pts, 1.0);
    let tx: Vec<usize> = (0..n).step_by(11).collect();
    let mode = InterferenceMode::grid_native();
    for alpha in [2.0, 3.0, 4.0] {
        let params = SinrParams::builder()
            .alpha(alpha)
            .build(1.5)
            .expect("valid test params");
        let mut f64_oracle = ReceptionOracle::new();
        let f64_out = f64_oracle.resolve(&pts, &params, &tx, mode, Some(&grid));
        let mut f32_oracle = ReceptionOracle::new();
        f32_oracle.set_accumulation(sinr_broadcast::phy::Accumulation::F32);
        let f32_out = f32_oracle.resolve(&pts, &params, &tx, mode, Some(&grid));
        let mut worst = 0.0f64;
        for (a, b) in f64_oracle
            .received_power()
            .iter()
            .zip(f32_oracle.received_power())
        {
            if *a > 0.0 {
                worst = worst.max((a - b).abs() / a);
            }
        }
        eprintln!("f32 tail: alpha {alpha} worst relative error {worst:.3e}");
        assert!(
            worst <= 4e-7,
            "alpha {alpha}: relative tail error {worst:e} above the documented 4e-7"
        );
        // The tail fold must leave decode decisions on this deployment
        // intact (low interference bits only).
        assert_eq!(f64_out.decoded_from, f32_out.decoded_from);
    }
}

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

fn scenario(mode: InterferenceMode) -> Scenario {
    Scenario::new(TopologySpec::ConnectedSquareDensity {
        n: 80,
        density: 30.0,
    })
    .constants(fast())
    .protocol(ProtocolSpec::SBroadcast { source: 0 })
    .interference_mode(mode)
    .record_rounds()
    .budget(2_000_000)
}

#[test]
fn run_reports_are_byte_identical_forced_scalar_vs_auto_at_every_thread_count() {
    // The protocol-level closure of the kernel contract: pinning the
    // dispatch to the scalar reference must not change a single report
    // byte, at any physics-thread count, in the modes that drive the
    // batch kernels hardest.
    for mode in [InterferenceMode::grid_native(), InterferenceMode::Exact] {
        let auto = scenario(mode).build().unwrap().run(42).unwrap();
        for threads in [1usize, 2, 8] {
            let forced = scenario(mode)
                .physics_threads(threads)
                .kernel_dispatch(KernelDispatch::ForceScalar)
                .build()
                .unwrap()
                .run(42)
                .unwrap();
            assert_eq!(
                auto, forced,
                "{mode:?}: ForceScalar at {threads} physics threads changed the report"
            );
        }
    }
}

#[test]
fn f32_accumulation_is_rejected_whenever_bit_exact_reporting_is_requested() {
    let base = || {
        Scenario::new(TopologySpec::ConnectedSquareDensity {
            n: 40,
            density: 25.0,
        })
        .constants(fast())
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .interference_mode(InterferenceMode::grid_native())
        .budget(2_000_000)
        .accumulation(Accumulation::F32)
    };

    // Round recording is a bit-exactness observer.
    let err = base().record_rounds().build().err().expect("must reject");
    assert!(
        err.to_string().contains("Accumulation::F32"),
        "unexpected rejection text: {err}"
    );

    // So is any attached observer.
    let err = base()
        .observe(|| Box::new(LoadObserver::new()) as Box<dyn Observer>)
        .build()
        .err()
        .expect("must reject");
    assert!(err.to_string().contains("Accumulation::F32"));

    // Without either, the opt-in mode builds and runs.
    let report = base()
        .build()
        .expect("plain F32 run builds")
        .run(7)
        .unwrap();
    let f64_report = Scenario::new(TopologySpec::ConnectedSquareDensity {
        n: 40,
        density: 25.0,
    })
    .constants(fast())
    .protocol(ProtocolSpec::SBroadcast { source: 0 })
    .interference_mode(InterferenceMode::grid_native())
    .budget(2_000_000)
    .build()
    .unwrap()
    .run(7)
    .unwrap();
    // The tail fold changes low interference bits, never the outcome of
    // this comfortable scenario.
    assert_eq!(report.outcome, f64_report.outcome);
}
