//! End-to-end tests for the Section 5 applications, via the `Scenario`
//! builder.

use sinr_broadcast::core::{consensus::domain_bits, run_stabilize, Constants};
use sinr_broadcast::netgen::{cluster, line};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::runtime::WakeSchedule;
use sinr_broadcast::sim::{Outcome, ProtocolSpec, Scenario};

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

#[test]
fn wakeup_under_three_schedules() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 1);
    let n = pts.len();
    let schedules = [
        WakeSchedule::single(0, 0),
        WakeSchedule::AllAt(5),
        WakeSchedule::Staggered { start: 0, gap: 11 },
    ];
    for (i, schedule) in schedules.iter().enumerate() {
        let budget = consts.phase_rounds(n) * 60 + n as u64 * 20;
        let rep = Scenario::new(pts.clone())
            .constants(consts)
            .protocol(ProtocolSpec::AdhocWakeup {
                schedule: schedule.clone(),
            })
            .budget(budget)
            .build()
            .unwrap()
            .run(i as u64)
            .expect("valid");
        assert!(rep.completed, "schedule {i} incomplete: {rep:?}");
        assert_eq!(rep.informed, n, "schedule {i}: all stations awake");
    }
}

#[test]
fn wakeup_accounting_starts_at_first_wake() {
    let consts = fast();
    let pts = line::uniform_line(6, 0.45);
    let rep = Scenario::new(pts)
        .constants(consts)
        .protocol(ProtocolSpec::AdhocWakeup {
            schedule: WakeSchedule::single(3, 40),
        })
        .budget(consts.phase_rounds(6) * 60)
        .build()
        .unwrap()
        .run(2)
        .unwrap();
    assert!(rep.completed);
    match rep.outcome {
        Outcome::Wakeup { first_wake, .. } => assert_eq!(first_wake, 40),
        ref other => panic!("expected wakeup outcome, got {other:?}"),
    }
}

#[test]
fn consensus_decides_minimum_on_chain() {
    let params = SinrParams::default_plane();
    let pts = cluster::chain_for_diameter(3, 8, &params, 2);
    let n = pts.len();
    let values: Vec<u64> = (0..n as u64).map(|i| 20 + (i * 13) % 40).collect();
    let min = values.iter().copied().min();
    let rep = Scenario::new(pts)
        .constants(fast())
        .protocol(ProtocolSpec::Consensus {
            values,
            bits: domain_bits(63),
            d_bound: 3,
        })
        .build()
        .unwrap()
        .run(5)
        .expect("valid");
    match rep.outcome {
        Outcome::Consensus {
            ref decided,
            agreement,
            valid,
        } => {
            assert!(agreement, "{decided:?}");
            assert!(valid);
            assert_eq!(decided[0], min);
        }
        ref other => panic!("expected consensus outcome, got {other:?}"),
    }
}

#[test]
fn consensus_with_duplicate_minimum() {
    let pts = line::uniform_line(6, 0.45);
    let rep = Scenario::new(pts)
        .constants(fast())
        .protocol(ProtocolSpec::Consensus {
            values: vec![9, 2, 7, 2, 8, 2],
            bits: 4,
            d_bound: 6,
        })
        .build()
        .unwrap()
        .run(6)
        .expect("valid");
    match rep.outcome {
        Outcome::Consensus {
            ref decided, valid, ..
        } => {
            assert!(valid);
            assert_eq!(decided[0], Some(2));
        }
        ref other => panic!("expected consensus outcome, got {other:?}"),
    }
}

#[test]
fn established_wakeup_over_real_backbone() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 9);
    let n = pts.len();
    // Build the backbone with one StabilizeProbability execution, then use
    // its colors for the wake-up flood (the Section 5 composition).
    let backbone = run_stabilize(pts.clone(), &params, consts, 4).expect("valid");
    let mut initiators = vec![false; n];
    initiators[0] = true;
    let rep = Scenario::new(pts)
        .constants(consts)
        .protocol(ProtocolSpec::EstablishedWakeup {
            coloring: backbone.coloring,
            initiators,
        })
        .budget(consts.wakeup_window(n, 3) * 3)
        .build()
        .unwrap()
        .run(5)
        .expect("valid");
    assert!(rep.completed, "{rep:?}");
    assert_eq!(rep.informed, n);
}

#[test]
fn alert_protocol_end_to_end() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 6, &params, 2);
    let n = pts.len();
    // A uniform p_max backbone, alert at station n-1 in round 12.
    let coloring = sinr_broadcast::core::Coloring::new(vec![consts.p_max(); n]);
    let window = consts.wakeup_window(n, 3);
    let rep = Scenario::new(pts)
        .constants(consts)
        .protocol(ProtocolSpec::Alert {
            coloring,
            alerts: vec![(n - 1, 12)],
            d_bound: 3,
        })
        .budget(window * 4)
        .build()
        .unwrap()
        .run(6)
        .expect("valid");
    assert!(rep.completed, "{rep:?}");
    match rep.outcome {
        Outcome::Alert { ref learned_at } => {
            assert_eq!(learned_at[n - 1], Some(12));
            assert!(learned_at.iter().all(|r| r.is_some()));
        }
        ref other => panic!("expected alert outcome, got {other:?}"),
    }
}

#[test]
fn quiescent_alert_stays_silent() {
    // With no alerts, the alert protocol must idle without a single
    // transmission (the perfect-quiescence property).
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(2, 5, &params, 3);
    let n = pts.len();
    let coloring = sinr_broadcast::core::Coloring::new(vec![consts.p_max(); n]);
    let rep = Scenario::new(pts)
        .constants(consts)
        .protocol(ProtocolSpec::Alert {
            coloring,
            alerts: vec![],
            d_bound: 2,
        })
        .budget(500)
        .build()
        .unwrap()
        .run(7)
        .expect("valid");
    assert!(!rep.completed, "nothing to learn without an alert");
    assert_eq!(
        rep.total_transmissions, 0,
        "alert protocol must idle silently"
    );
    assert_eq!(rep.informed, 0);
}

#[test]
fn leader_election_unique_across_seeds() {
    let sim = Scenario::new(line::uniform_line(8, 0.45))
        .constants(fast())
        .protocol(ProtocolSpec::LeaderElection { d_bound: 8 })
        .build()
        .unwrap();
    let sweep = sim.sweep(&[0, 1, 2]).expect("valid");
    for rep in &sweep.runs {
        match rep.outcome {
            Outcome::Leader {
                ref leaders,
                unique,
            } => assert!(unique, "seed {}: leaders {leaders:?}", rep.seed),
            ref other => panic!("expected leader outcome, got {other:?}"),
        }
    }
}
