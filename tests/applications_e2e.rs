//! End-to-end tests for the Section 5 applications.

use sinr_broadcast::core::{
    consensus::domain_bits,
    run::{run_adhoc_wakeup, run_consensus, run_leader_election},
    Constants,
};
use sinr_broadcast::netgen::{cluster, line};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::runtime::WakeSchedule;

fn fast() -> Constants {
    Constants {
        c0: 4.0,
        c2: 4.0,
        c_prime: 1,
        dissem_factor: 8.0,
        ..Constants::tuned()
    }
}

#[test]
fn wakeup_under_three_schedules() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 1);
    let n = pts.len();
    let schedules = [
        WakeSchedule::single(0, 0),
        WakeSchedule::AllAt(5),
        WakeSchedule::Staggered { start: 0, gap: 11 },
    ];
    for (i, schedule) in schedules.iter().enumerate() {
        let budget = consts.phase_rounds(n) * 60 + n as u64 * 20;
        let rep = run_adhoc_wakeup(pts.clone(), &params, consts, schedule, i as u64, budget)
            .expect("valid");
        assert!(rep.completed, "schedule {i} incomplete: {rep:?}");
    }
}

#[test]
fn wakeup_accounting_starts_at_first_wake() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = line::uniform_line(6, 0.45);
    let schedule = WakeSchedule::single(3, 40);
    let rep = run_adhoc_wakeup(
        pts,
        &params,
        consts,
        &schedule,
        2,
        consts.phase_rounds(6) * 60,
    )
    .unwrap();
    assert!(rep.completed);
    assert_eq!(rep.first_wake, 40);
}

#[test]
fn consensus_decides_minimum_on_chain() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 2);
    let n = pts.len();
    let values: Vec<u64> = (0..n as u64).map(|i| 20 + (i * 13) % 40).collect();
    let bits = domain_bits(63);
    let rep = run_consensus(pts, &params, consts, &values, bits, 3, 5).expect("valid");
    assert!(rep.agreement, "{:?}", rep.decided);
    assert!(rep.valid);
    assert_eq!(rep.decided[0], values.iter().copied().min());
}

#[test]
fn consensus_with_duplicate_minimum() {
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = line::uniform_line(6, 0.45);
    let values = [9, 2, 7, 2, 8, 2];
    let rep = run_consensus(pts, &params, consts, &values, 4, 6, 6).expect("valid");
    assert!(rep.valid);
    assert_eq!(rep.decided[0], Some(2));
}

#[test]
fn established_wakeup_over_real_backbone() {
    use sinr_broadcast::core::{run::run_established_wakeup, run_stabilize};
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 8, &params, 9);
    let n = pts.len();
    // Build the backbone with one StabilizeProbability execution, then use
    // its colors for the wake-up flood (the Section 5 composition).
    let backbone = run_stabilize(pts.clone(), &params, consts, 4).expect("valid");
    let mut initiators = vec![false; n];
    initiators[0] = true;
    let budget = consts.wakeup_window(n, 3) * 3;
    let rep = run_established_wakeup(
        pts,
        &params,
        consts,
        &backbone.coloring,
        &initiators,
        5,
        budget,
    )
    .expect("valid");
    assert!(rep.completed, "{rep:?}");
    assert_eq!(rep.informed, n);
}

#[test]
fn alert_protocol_end_to_end() {
    use sinr_broadcast::core::alert::AlertNode;
    use sinr_broadcast::phy::Network;
    use sinr_broadcast::runtime::Engine;
    let params = SinrParams::default_plane();
    let consts = fast();
    let pts = cluster::chain_for_diameter(3, 6, &params, 2);
    let n = pts.len();
    let net = Network::new(pts, params).unwrap();
    let window = consts.wakeup_window(n, 3);
    let mut eng = Engine::new(net, 6, |id| {
        AlertNode::new(consts.p_max(), (id == n - 1).then_some(12), n, consts, window)
    });
    let res = eng.run_until(window * 4, |e| e.nodes().iter().all(AlertNode::alarmed));
    assert!(res.completed);
}

#[test]
fn leader_election_unique_across_seeds() {
    let params = SinrParams::default_plane();
    let consts = fast();
    for seed in 0..3u64 {
        let pts = line::uniform_line(8, 0.45);
        let rep = run_leader_election(pts, &params, consts, 8, seed).expect("valid");
        assert!(rep.unique, "seed {seed}: leaders {:?}", rep.leaders);
    }
}
