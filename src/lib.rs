//! # sinr-broadcast
//!
//! A faithful, from-scratch reproduction of **Jurdzinski, Kowalski,
//! Rozanski & Stachowiak, *On the Impact of Geometry on Ad Hoc
//! Communication in Wireless Networks* (PODC 2014)**: randomized broadcast
//! in the SINR physical model with *no* geolocation, carrier sensing or
//! power control, whose running time depends only on communication-graph
//! parameters (`D`, `n`) and not on the geometric granularity of the
//! deployment.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`geometry`] | points, bounded-growth metrics, spatial index |
//! | [`phy`] | SINR parameters, exact reception oracle, communication graphs |
//! | [`runtime`] | synchronous round engine, protocol trait, wake schedules |
//! | [`netgen`] | topology generators (uniform, clusters, geometric lines) and mobility models (random waypoint, drift, teleport churn) |
//! | [`stats`] | summaries, scaling-law fits, tables |
//! | [`core`] | `StabilizeProbability` coloring, `NoSBroadcast`, `SBroadcast`, wake-up, consensus, leader election, baselines |
//! | [`sim`] | the `Scenario` builder: declarative topologies (static or mobile), protocol registry, parallel seed sweeps |
//!
//! # Quickstart
//!
//! Scenarios are fully declarative — a topology spec, a protocol from the
//! registry, a round budget — and every run is a pure function of its
//! seed, so sweeps parallelize and replay bit-for-bit:
//!
//! ```
//! use sinr_broadcast::sim::{ProtocolSpec, Scenario, TopologySpec};
//!
//! let sim = Scenario::new(TopologySpec::ConnectedSquareDensity { n: 100, density: 30.0 })
//!     .protocol(ProtocolSpec::SBroadcast { source: 0 })
//!     .budget(2_000_000)
//!     .build()?;
//!
//! let report = sim.run(42)?;
//! assert!(report.completed);
//! println!("broadcast reached {} stations in {} rounds", report.informed, report.rounds);
//!
//! let sweep = sim.sweep(&[1, 2, 3, 4])?; // parallel across cores, deterministic
//! println!("completion rate: {}", sweep.completion_rate());
//! # Ok::<(), sinr_broadcast::sim::SimError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sinr_core as core;
pub use sinr_geometry as geometry;
pub use sinr_netgen as netgen;
pub use sinr_phy as phy;
pub use sinr_runtime as runtime;
pub use sinr_sim as sim;
pub use sinr_stats as stats;

/// Workspace version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
