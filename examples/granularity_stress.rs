//! Granularity stress test: the paper's headline claim, live.
//!
//! ```text
//! cargo run --release --example granularity_stress
//! ```
//!
//! Builds the footnote-2 adversarial line network — consecutive gaps
//! shrinking geometrically, so the granularity `R_s` is astronomically
//! large while the communication graph stays simple — and races the
//! paper's `SBroadcast` against the Daum et al.-style decay baseline,
//! whose round complexity is polylogarithmic in `R_s`. One `Scenario` per
//! contender, same topology, same seed.

use sinr_broadcast::netgen::{line, validate};
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::sim::{ProtocolSpec, Scenario};

fn main() {
    let params = SinrParams::default_plane();
    let n = 64;
    let d_hops = 12;
    let seed = 1;
    let budget = 5_000_000;

    println!("racing SBroadcast vs the decay baseline on fixed-D lines, growing Rs:\n");
    println!(
        "{:>12} {:>6} {:>4} {:>12} {:>12}",
        "Rs", "D", "", "ours", "daum"
    );
    for rs in [16.0, 4096.0, 1_048_576.0, 268_435_456.0] {
        let pts = line::granularity_line_fixed_d(n, params.comm_radius(), rs, d_hops, 2e-9);
        let report = validate::report(&pts, &params);
        assert!(report.connected);
        let actual_rs = report.granularity.unwrap();
        let d = report.diameter.unwrap();

        let ours = Scenario::new(pts.clone())
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(budget)
            .build()
            .expect("valid scenario")
            .run(seed)
            .expect("valid network");
        let daum = Scenario::new(pts)
            .protocol(ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: Some(actual_rs),
            })
            .budget(budget)
            .build()
            .expect("valid scenario")
            .run(seed)
            .expect("valid network");

        println!(
            "{:>12.0} {:>6} {:>4} {:>12} {:>12}",
            actual_rs,
            d,
            "",
            format!("{}{}", ours.rounds, if ours.completed { "" } else { "*" }),
            format!("{}{}", daum.rounds, if daum.completed { "" } else { "*" }),
        );
    }
    println!(
        "\nour rounds are independent of Rs (Theorems 1-2: only D and n enter);\n\
         the baseline cycles Θ(α·log Rs) probability classes and slows down.\n\
         (* = budget exhausted)"
    );
}
