//! Graceful degradation under a fault adversary: a cut-vertex kill
//! schedule removes 25% of the live population mid-run, and two
//! re-flooding strategies race to re-cover the survivors.
//!
//! ```text
//! cargo run --release --example adversarial_broadcast
//! ```
//!
//! Both strategies start from the *same* (wrong) belief that only a
//! handful of stations exist, so both open with the same aggressive
//! transmission probability:
//!
//! * **fixed-ν re-flood** — `p = CONTENTION_TARGET / ν₀` is burned in.
//!   In a dense deployment that probability makes every round a
//!   collision storm; the informed frontier stalls and the coverage
//!   curve flattens below the goal.
//! * **online-ν re-flood** — each station watches its own in-burst
//!   silence runs (the protocol-visible signature of collision
//!   stalls), doubles its estimate ν̂ when they get long, and thereby
//!   lowers `p` until decodes resume. Latency degrades; coverage does
//!   not.
//!
//! The adversary targets articulation points of the epoch-refreshed
//! communication graph first (the worst-case attack on connectivity)
//! and tops up the quota with the highest-degree survivors. Fault
//! totals, the per-boundary coverage curve, and the re-convergence
//! time all land in `RunReport::faults`; the closing asserts pin the
//! seeded outcomes — update them deliberately if any stream
//! derivation changes.

use sinr_broadcast::sim::{AdversarySpec, ProtocolSpec, Scenario, Simulation, TopologySpec};

/// Stations at epoch 0.
const N: usize = 120;
/// Shared wrong initial estimate: the fixed baseline burns in
/// `p = 2/ν₀ = 1.0`; the online variant's `MAX_TX_PROB` cap starts it
/// at 0.75 — listening rounds survive, so the estimator can observe.
const NU0: usize = 2;
/// Adversary boundary spacing (also the coverage sample period).
const EPOCH: u64 = 8;
/// One kill event at adversary epoch 1 (round 16): 25% of the live
/// population, articulation points first.
const KILL_FRACTION: f64 = 0.25;
const SEED: u64 = 2014;

fn scenario(protocol: ProtocolSpec) -> Simulation {
    Scenario::new(TopologySpec::ConnectedSquareDensity {
        n: N,
        density: 40.0,
    })
    .protocol(protocol)
    .fast_physics()
    .adversary(AdversarySpec::cut_vertex_kill(KILL_FRACTION, 1, EPOCH))
    .budget(2_000)
    .build()
    .expect("valid adversarial scenario")
}

fn main() {
    let fixed = scenario(ProtocolSpec::ReFloodBroadcast {
        source: 0,
        p: 2.0 / NU0 as f64,
        burst_rounds: 512,
    });
    let online = scenario(ProtocolSpec::ReFloodBroadcastEstimate {
        source: 0,
        nu0: NU0,
        burst_rounds: 512,
    });

    let a = fixed.run(SEED).expect("fixed-ν run");
    let b = online.run(SEED).expect("online-ν run");
    assert_eq!(a, fixed.run(SEED).expect("replay"), "runs replay");
    assert_eq!(b, online.run(SEED).expect("replay"), "runs replay");

    let fa = a.faults.as_ref().expect("fault accounting");
    let fb = b.faults.as_ref().expect("fault accounting");

    println!("degradation under a {KILL_FRACTION} cut-vertex kill at round {EPOCH}x2:");
    println!("  round | fixed-ν cover | online-ν cover");
    let points = fa.coverage.len().max(fb.coverage.len());
    for i in (0..points).step_by(8) {
        let at = |c: &[sinr_broadcast::sim::CoveragePoint]| {
            c.get(i)
                .or(c.last())
                .map_or_else(String::new, |p| format!("{:3}/{:3}", p.informed, p.live))
        };
        let round = i as u64 * EPOCH;
        println!(
            "  {round:>5} | {:>13} | {:>14}",
            at(&fa.coverage),
            at(&fb.coverage)
        );
    }
    println!(
        "fixed-ν : informed {}/{} live in {} rounds ({} tx), final coverage {:.3}",
        a.informed,
        fa.coverage.last().map_or(0, |p| p.live),
        a.rounds,
        a.total_transmissions,
        fa.final_coverage()
    );
    println!(
        "online-ν: informed {}/{} live in {} rounds ({} tx), final coverage {:.3}",
        b.informed,
        fb.coverage.last().map_or(0, |p| p.live),
        b.rounds,
        b.total_transmissions,
        fb.final_coverage()
    );

    // The robustness headline: same deployment, same adversary, same
    // wrong ν₀ — the burned-in probability never recovers coverage,
    // the online estimate does.
    assert_eq!(fa.kills, 30, "25% of 120 stations killed");
    assert_eq!(fb.kills, 30, "25% of 120 stations killed");
    assert!(
        fa.final_coverage() < 0.95,
        "fixed-ν baseline must stall below the coverage goal"
    );
    assert!(
        fb.final_coverage() >= 0.95,
        "online-ν re-flood must reach the coverage goal"
    );

    // Seeded golden pins (seed 2014).
    assert!(!a.completed, "fixed-ν run exhausts the budget");
    assert_eq!(
        (a.rounds, a.total_transmissions, a.informed),
        (2_000, 19_824, 38)
    );
    assert_eq!(fa.recovery_rounds, None, "no recovery without completion");
    assert!(b.completed, "online-ν run informs every survivor");
    assert_eq!(
        (b.rounds, b.total_transmissions, b.informed),
        (549, 23_063, 90)
    );
    assert_eq!(fb.recovery_rounds, Some(533));
}
