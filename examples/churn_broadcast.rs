//! Broadcast over a churned population: stations crash, rejoin at fresh
//! positions, and brand-new stations spawn mid-run — while the message
//! still reaches everyone alive.
//!
//! ```text
//! cargo run --release --example churn_broadcast
//! ```
//!
//! Part 1 drives the declarative `Scenario` surface: one `.churn(...)`
//! line makes the population dynamic, the run stops when every *live*
//! station is informed, and everything replays bit-for-bit from the run
//! seed (deployment, waypoint trajectories, churn schedule and protocol
//! coin flips all derive from it on separate streams).
//!
//! Part 2 drives the `Engine` directly through a long window of
//! *continuous service* — the network keeps churning after the first
//! full dissemination — and compares two strategies:
//!
//! * **flood** — informed stations transmit with probability `p`
//!   forever: reaches every joiner, but energy grows with wall-clock;
//! * **re-flood** — informed stations flood in short bursts and go
//!   dormant; the epoch-refreshed communication graph re-seeds them via
//!   `on_join` / `on_topology_change` exactly when stations join or a
//!   partition heals, so energy tracks topology *events* instead.
//!
//! The closing asserts pin the seeded outcomes — update them
//! deliberately if any stream derivation changes.

use sinr_broadcast::core::baselines::{FloodNode, ReFloodNode};
use sinr_broadcast::netgen::churn::{ChurnModel, ChurnProcess};
use sinr_broadcast::netgen::mobility::{Mobility, MobilityModel};
use sinr_broadcast::netgen::uniform;
use sinr_broadcast::phy::{InterferenceMode, Network, SinrParams};
use sinr_broadcast::runtime::{derive_seed, Engine, Protocol};
use sinr_broadcast::sim::{ChurnSpec, MobilitySpec, ProtocolSpec, Scenario, TopologySpec};

fn main() {
    scenario_surface();
    continuous_service();
}

/// Part 1: the declarative surface, pinned.
fn scenario_surface() {
    let n = 300;
    let seed = 42;

    let sim = Scenario::new(TopologySpec::ConnectedSquareDensity { n, density: 30.0 })
        .protocol(ProtocolSpec::ReFloodBroadcast {
            source: 0,
            p: 0.1,
            burst_rounds: 40,
        })
        .fast_physics()
        .mobility(MobilitySpec::random_waypoint(0.15, 8))
        // ~2 arrivals expected per 8-round epoch, ~12-epoch mean
        // lifetime. Dead stations keep their indices (tombstones);
        // arrivals rejoin them at fresh uniform positions before new
        // indices are spawned.
        .churn(ChurnSpec::poisson(2.0, 12.0, 8))
        .budget(400)
        .build()
        .expect("valid churned scenario");

    let report = sim.run(seed).expect("churned run");
    println!(
        "scenario: informed {} live stations (of n = {n} at epoch 0) in {} rounds, {} tx",
        report.informed, report.rounds, report.total_transmissions
    );
    assert!(report.completed, "every live station informed in budget");
    assert_eq!(report, sim.run(seed).expect("replay"), "runs replay");
    // Seeded golden pins (seed 42).
    assert_eq!(report.informed, 238, "informed count drifted");
    assert_eq!(report.rounds, 26, "round count drifted");
    assert_eq!(report.total_transmissions, 445, "energy drifted");

    // Sweeps parallelize like static ones — per-seed churn schedules
    // derive from the run seed, so results are thread-count invariant.
    let seeds: Vec<u64> = (1..=6).collect();
    let sweep = sim.sweep(&seeds).expect("sweep");
    println!(
        "scenario: sweep over {} seeds, completion rate {:.2}",
        seeds.len(),
        sweep.completion_rate()
    );
}

/// Part 2: continuous service through the runtime layer — the network
/// keeps churning long after the first full dissemination.
fn continuous_service() {
    let n = 300;
    let seed = 7;
    let epoch = 24u64; // rounds between churn/mobility boundaries
    let window = 480u64; // total service window

    let params = SinrParams::default_plane();
    let points = uniform::connected_square(n, uniform::side_for_density(n, 30.0), &params, seed)
        .expect("dense enough to connect");

    // Both strategies run over the *identical* dynamic network: same
    // deployment, same churn schedule, same waypoint trajectories.
    let total_tx = |reflood: bool| -> (usize, u64) {
        let net = Network::new(points.clone(), params)
            .expect("valid deployment")
            .with_interference_mode(InterferenceMode::grid_native());
        let make = move |id: usize, source: usize| -> Box<dyn Protocol<Msg = u64>> {
            if reflood {
                Box::new(ReFloodNode::new(id, source, 1, 0.1, 8))
            } else {
                Box::new(FloodNode::new(id, source, 1, 0.1))
            }
        };
        let mut eng = Engine::new(net, seed, |id| make(id, 0));
        let mut churn = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 8.0,
                mean_lifetime: 30.0,
            },
            &points,
            derive_seed(seed, 0x4348_5552, 0),
        )
        .protect(0);
        eng.set_churn(
            epoch,
            move |_, alive, delta| churn.step_into(alive, delta),
            move |id| make(id, usize::MAX),
        );
        let mut mob = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.3,
                pause_epochs: 0,
            },
            &points,
            derive_seed(seed, 0x4D4F_4249, 0),
        );
        eng.set_mobility(epoch, move |_, pts| {
            mob.ensure_stations(pts.len());
            mob.advance(pts);
        });
        eng.run_rounds(window);
        let informed = eng
            .nodes()
            .iter()
            .zip(eng.network().alive())
            .filter(|(nd, &a)| a && nd.is_done())
            .count();
        (informed, eng.trace().total_transmissions())
    };

    let (flood_informed, flood_tx) = total_tx(false);
    let (reflood_informed, reflood_tx) = total_tx(true);
    println!("continuous service, {window} rounds, churn+waypoints every {epoch} rounds:");
    println!("  flood     informed {flood_informed:>3} live stations, {flood_tx:>6} tx");
    println!("  re-flood  informed {reflood_informed:>3} live stations, {reflood_tx:>6} tx");

    // Seeded golden pins (seed 7): bursts re-seeded on topology events
    // keep (nearly) everyone informed at a fraction of the energy.
    assert_eq!((flood_informed, flood_tx), (267, 13829));
    assert_eq!((reflood_informed, reflood_tx), (267, 4764));
    assert!(
        reflood_tx * 2 < flood_tx,
        "re-flooding should save at least half the energy here"
    );
}
