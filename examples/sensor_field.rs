//! Sensor field alarm: non-spontaneous broadcast through sleeping nodes.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```
//!
//! The scenario the paper's non-spontaneous model captures: a field of
//! battery-powered sensors sleeps until it hears an alarm. One clustered
//! corridor of sensors connects a sensor that detects an event (the source)
//! to a distant base-station cluster; `NoSBroadcast` (Theorem 1) carries the
//! alarm with no pre-established structure — each phase, the already-woken
//! sensors rebuild the coloring among themselves, then push the alarm one
//! hop further.

use sinr_broadcast::core::{broadcast::NoSBroadcastNode, Constants};
use sinr_broadcast::netgen::{cluster, validate};
use sinr_broadcast::phy::{Network, SinrParams};
use sinr_broadcast::runtime::Engine;

fn main() {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let seed = 7;

    // A corridor of 9 sensor clusters (diameter 8), 14 sensors each.
    let diameter = 8;
    let points = cluster::chain_for_diameter(diameter, 14, &params, seed);
    let n = points.len();
    let report = validate::report(&points, &params);
    println!(
        "sensor corridor: n = {n}, D = {:?} (clusters of 14)",
        report.diameter
    );

    let net = Network::new(points, params).expect("valid deployment");
    let mut engine = Engine::new(net, seed, |id| {
        NoSBroadcastNode::new(id, 0, 0xA1A2, n, consts)
    });

    // Drive phase by phase, reporting the alarm front as it advances.
    let phase_len = consts.phase_rounds(n);
    let mut phase = 0;
    loop {
        engine.run_rounds(phase_len);
        phase += 1;
        let awake = engine.nodes().iter().filter(|s| s.informed()).count();
        println!("after phase {phase:2} ({} rounds): {awake}/{n} sensors alarmed", engine.round());
        if awake == n {
            break;
        }
        assert!(
            phase <= 3 * (diameter as usize + 2),
            "alarm stalled — raise the budget"
        );
    }
    println!(
        "alarm delivered in {} rounds; theory: O(D log^2 n) = {} phases of {} rounds",
        engine.round(),
        diameter + 1,
        phase_len
    );
    println!(
        "energy proxy: {} transmissions total across {n} sensors",
        engine.trace().total_transmissions()
    );

    // Duty-cycle distribution: the coloring keeps per-node energy flat even
    // though cluster cores are 14x denser than the corridor spacing.
    let mut tx: Vec<u64> = engine.tx_counts().to_vec();
    tx.sort_unstable();
    println!(
        "per-sensor transmissions: min {} / median {} / max {}",
        tx[0],
        tx[n / 2],
        tx[n - 1]
    );
}
