//! Sensor field alarm: non-spontaneous broadcast through sleeping nodes.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```
//!
//! The scenario the paper's non-spontaneous model captures: a field of
//! battery-powered sensors sleeps until it hears an alarm. One clustered
//! corridor of sensors connects a sensor that detects an event (the source)
//! to a distant base-station cluster; `NoSBroadcast` (Theorem 1) carries the
//! alarm with no pre-established structure. A custom [`Observer`] watches
//! the alarm front advance phase by phase, and the recorded per-node
//! transmission counts show the coloring keeping duty cycles flat.

use std::sync::{Arc, Mutex};

use sinr_broadcast::core::Constants;
use sinr_broadcast::netgen::validate;
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::runtime::RoundStats;
use sinr_broadcast::sim::{Observer, ProtocolSpec, RunReport, Scenario, TopologySpec};

/// Records the informed count at every phase boundary.
struct AlarmFront {
    phase_len: u64,
    samples: Arc<Mutex<Vec<(u64, usize)>>>,
}

impl Observer for AlarmFront {
    fn on_round(&mut self, stats: &RoundStats, informed: usize) {
        if (stats.round + 1) % self.phase_len == 0 {
            self.samples
                .lock()
                .unwrap()
                .push((stats.round + 1, informed));
        }
    }

    fn finish(&mut self, report: &mut RunReport) {
        report
            .measurements
            .insert("phases".into(), (report.rounds / self.phase_len) as f64);
    }
}

fn main() {
    let consts = Constants::tuned();
    let seed = 7;

    // A corridor of 9 sensor clusters (diameter 8), 14 sensors each.
    let diameter = 8;
    let n = (diameter as usize + 1) * 14;
    let phase_len = consts.phase_rounds(n);

    let samples: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let front = Arc::clone(&samples);
    let sim = Scenario::new(TopologySpec::ClusterChain {
        diameter,
        per_cluster: 14,
    })
    .constants(consts)
    .protocol(ProtocolSpec::NoSBroadcast { source: 0 })
    .budget(phase_len * 3 * (u64::from(diameter) + 2))
    .record_rounds()
    .observe(move || {
        Box::new(AlarmFront {
            phase_len,
            samples: Arc::clone(&front),
        })
    })
    .build()
    .expect("valid scenario");

    let points = sim.materialize(seed).expect("generated");
    let report = validate::report(&points, &SinrParams::default_plane());
    println!(
        "sensor corridor: n = {n}, D = {:?} (clusters of 14)",
        report.diameter
    );

    let result = sim.run(seed).expect("valid deployment");
    for &(round, awake) in samples.lock().unwrap().iter() {
        let phase = round / phase_len;
        println!("after phase {phase:2} ({round} rounds): {awake}/{n} sensors alarmed");
        if awake == n {
            break;
        }
    }
    assert!(result.completed, "alarm stalled — raise the budget");
    println!(
        "alarm delivered in {} rounds; theory: O(D log^2 n) = {} phases of {} rounds",
        result.rounds,
        diameter + 1,
        phase_len
    );
    println!(
        "energy proxy: {} transmissions total across {n} sensors",
        result.total_transmissions
    );

    // Duty-cycle distribution: the coloring keeps per-node energy flat even
    // though cluster cores are 14x denser than the corridor spacing.
    let mut tx = result.tx_counts.expect("recorded via record_rounds()");
    tx.sort_unstable();
    println!(
        "per-sensor transmissions: min {} / median {} / max {}",
        tx[0],
        tx[n / 2],
        tx[n - 1]
    );
}
