//! Simulation as a service: boot the `sinr-serve` server in-process,
//! submit a scenario over TCP, watch live round events, and check the
//! reports against local runs — byte for byte.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The same client code works against a long-lived server on another
//! machine: everything on the wire is line-delimited canonical JSON
//! (grammar in the `sim` module docs under "Simulation as a service").

use std::thread;

use sinr_broadcast::sim::{ProtocolSpec, ScenarioSpec, TopologySpec};
use sinr_serve::{reference_report, request_shutdown, Client, Server};

fn main() {
    // A server would normally be its own process: `Server::bind` on a
    // fixed port, then `run()`. Here it shares ours on a loopback port.
    let server = Server::bind("127.0.0.1:0", 2).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run().expect("server run"));
    println!("server listening on {addr}");

    // A ScenarioSpec is the Scenario builder as data — same topology
    // families, protocols and knobs, but encodable.
    let mut spec = ScenarioSpec::new(
        TopologySpec::UniformSquare { n: 60, side: 2.2 },
        ProtocolSpec::ReFloodBroadcast {
            source: 0,
            p: 0.25,
            burst_rounds: 24,
        },
    );
    spec.budget = Some(500);
    println!("submitting: {}", spec.encode());

    let seeds: [u64; 3] = [7, 42, 2014];
    let mut client = Client::connect(addr).expect("connect");
    client.submit(&spec, &seeds, true).expect("submit");
    let job = client.expect_accepted().expect("accepted");
    println!(
        "job {job}: {} trials scheduled on the worker pool",
        seeds.len()
    );

    // collect_job counts round events and gathers the canonical report
    // bytes per seed; dropped rounds (slow-reader backpressure) are
    // reported in the final done event.
    let result = client.collect_job(job).expect("job events");
    println!(
        "streamed {} live round events ({} dropped — drops degrade the trace, never the report)",
        result.rounds_seen, result.dropped_rounds
    );

    for &seed in &seeds {
        let from_server = result.report_for(seed).expect("report for seed");
        let local = reference_report(&spec, seed).expect("local run");
        assert_eq!(from_server, local, "wire bytes must equal the local run");
        println!(
            "seed {seed}: server report byte-identical to local run ({} bytes)",
            from_server.len()
        );
    }

    request_shutdown(addr).expect("shutdown");
    server_thread.join().expect("server thread");
    println!("server shut down cleanly");
}
