//! Quickstart: broadcast a message across a random sensor deployment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a connected uniform deployment, inspects its communication
//! graph, runs `SBroadcast` (Theorem 2) and prints what happened.

use sinr_broadcast::core::{run::run_s_broadcast, Constants};
use sinr_broadcast::netgen::{uniform, validate};
use sinr_broadcast::phy::SinrParams;

fn main() {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let n = 200;
    let seed = 42;

    // A connected uniform deployment with ~30 stations per unit area.
    let side = uniform::side_for_density(n, 30.0);
    let points = uniform::connected_square(n, side, &params, seed)
        .expect("density 30 connects easily; try another seed otherwise");

    let report = validate::report(&points, &params);
    println!("deployment: n = {}, side = {side:.2}", report.n);
    println!(
        "communication graph: D = {:?}, max degree = {}, edges = {}",
        report.diameter, report.max_degree, report.num_edges
    );

    // Broadcast from station 0 with spontaneous wake-up (everyone starts
    // together, so one global coloring precedes dissemination).
    let result = run_s_broadcast(points, &params, consts, 0, seed, 5_000_000)
        .expect("valid network");

    println!(
        "SBroadcast: informed {}/{} stations in {} rounds ({} transmissions total)",
        result.informed, result.n, result.rounds, result.total_transmissions
    );
    assert!(result.completed, "increase the round budget");
    println!(
        "theory: O(D log n + log^2 n) whp — with D = {:?} and n = {}, the shape holds (see EXPERIMENTS.md E5)",
        report.diameter, result.n
    );
}
