//! Quickstart: broadcast a message across a random sensor deployment,
//! then sweep seeds in parallel — all through the `Scenario` builder.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Declares a connected uniform deployment, runs `SBroadcast` (Theorem 2)
//! for one seed, inspects the deployment that seed materialized, and
//! finishes with a parallel ten-seed sweep.

use sinr_broadcast::netgen::validate;
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::sim::{ProtocolSpec, Scenario, TopologySpec};

fn main() {
    let n = 200;
    let seed = 42;

    // The whole experiment is declarative: a topology family, a protocol
    // from the registry, a round budget. Defaults cover the SINR
    // parameters (plane) and the tuned constants.
    let sim = Scenario::new(TopologySpec::ConnectedSquareDensity { n, density: 30.0 })
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .budget(5_000_000)
        .build()
        .expect("protocol and budget set");

    // Every run is a pure function of its seed — materialize() shows the
    // exact deployment the run simulated on.
    let points = sim.materialize(seed).expect("density 30 connects easily");
    let report = validate::report(&points, &SinrParams::default_plane());
    println!("deployment: n = {}", report.n);
    println!(
        "communication graph: D = {:?}, max degree = {}, edges = {}",
        report.diameter, report.max_degree, report.num_edges
    );

    let result = sim.run(seed).expect("valid scenario");
    println!(
        "SBroadcast: informed {}/{} stations in {} rounds ({} transmissions total)",
        result.informed, result.n, result.rounds, result.total_transmissions
    );
    assert!(result.completed, "increase the round budget");

    // Sweeps fan out across cores; per-seed results are identical no
    // matter how many threads run them.
    let seeds: Vec<u64> = (1..=10).collect();
    let sweep = sim.sweep(&seeds).expect("all seeds connect");
    println!(
        "sweep over {} seeds: completion rate {:.2}, mean rounds {:.0}",
        seeds.len(),
        sweep.completion_rate(),
        sweep.rounds_summary().map_or(f64::NAN, |s| s.mean)
    );
    println!(
        "theory: O(D log n + log^2 n) whp — with D = {:?} and n = {}, the shape holds (see EXPERIMENTS.md E5)",
        report.diameter, result.n
    );
}
