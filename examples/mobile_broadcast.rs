//! Mobile broadcast: `SBroadcast` over a deployment whose stations move
//! between epochs under the random-waypoint model.
//!
//! ```text
//! cargo run --release --example mobile_broadcast
//! ```
//!
//! The scenario differs from the static quickstart by exactly one line —
//! `.mobility(...)` — which makes the topology dynamic: every 8 rounds
//! the stations walk toward their waypoints and the network reindexes in
//! place (allocation-reusing, byte-identical results at any physics
//! thread count). Everything stays a pure function of the run seed, so
//! the closing sweep replays bit-for-bit.

use sinr_broadcast::sim::{MobilitySpec, ProtocolSpec, Scenario, TopologySpec};

fn main() {
    let n = 300;

    // Random-waypoint motion at 0.15 units per 8-round epoch, confined
    // to the bounding box of the deployment each seed materializes.
    let sim = Scenario::new(TopologySpec::ConnectedSquareDensity { n, density: 30.0 })
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .mobility(MobilitySpec::random_waypoint(0.15, 8))
        .fast_physics()
        .budget(200_000)
        .build()
        .expect("protocol and budget set");

    let seed = 42;
    let report = sim.run(seed).expect("valid mobile scenario");
    println!(
        "mobile SBroadcast: informed {}/{} stations in {} rounds ({} transmissions)",
        report.informed, report.n, report.rounds, report.total_transmissions
    );
    assert!(report.completed, "increase the round budget");

    // Mobility tends to *help* dissemination: motion carries the message
    // across sparse cuts. Compare against the frozen topology.
    let frozen = Scenario::new(TopologySpec::ConnectedSquareDensity { n, density: 30.0 })
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .fast_physics()
        .budget(200_000)
        .build()
        .unwrap()
        .run(seed)
        .unwrap();
    println!(
        "frozen topology, same seed: {} rounds ({} transmissions)",
        frozen.rounds, frozen.total_transmissions
    );

    // Mobile sweeps parallelize like static ones — per-seed trajectories
    // derive from the run seed, so results are thread-count invariant.
    let seeds: Vec<u64> = (1..=8).collect();
    let sweep = sim.sweep(&seeds).expect("all seeds connect");
    println!(
        "sweep over {} seeds: completion rate {}, mean rounds {:?}",
        seeds.len(),
        sweep.completion_rate(),
        sweep.rounds_summary().map(|s| s.mean)
    );
}
