//! Leader election and consensus over the coloring backbone (Section 5).
//!
//! ```text
//! cargo run --release --example leader_election
//! ```
//!
//! A fleet of autonomous rovers lands in a canyon (a cluster chain). They
//! first agree on the minimum of their battery readings (consensus), then
//! elect a coordinator by drawing random IDs and agreeing on the minimum ID
//! — both on top of one `StabilizeProbability` backbone each.

use sinr_broadcast::core::{
    consensus::domain_bits,
    run::{run_consensus, run_leader_election},
    Constants,
};
use sinr_broadcast::netgen::{cluster, validate};
use sinr_broadcast::phy::SinrParams;

fn main() {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let seed = 3;

    let diameter = 5;
    let points = cluster::chain_for_diameter(diameter, 8, &params, seed);
    let n = points.len();
    let report = validate::report(&points, &params);
    println!("rover fleet: n = {n}, D = {:?}\n", report.diameter);

    // --- consensus on battery levels (domain 0..=100) ---
    let batteries: Vec<u64> = (0..n as u64).map(|i| 35 + (i * 17) % 60).collect();
    let min_battery = *batteries.iter().min().unwrap();
    let bits = domain_bits(100);
    let outcome = run_consensus(
        points.clone(),
        &params,
        consts,
        &batteries,
        bits,
        diameter,
        seed,
    )
    .expect("valid network");
    println!(
        "consensus on minimum battery: decided {:?} (true minimum {min_battery}) \
         in {} rounds — agreement: {}, valid: {}",
        outcome.decided[0], outcome.rounds, outcome.agreement, outcome.valid
    );
    assert!(outcome.valid, "consensus failed; widen the window");

    // --- leader election ---
    let election = run_leader_election(points, &params, consts, diameter, seed)
        .expect("valid network");
    println!(
        "leader election: rover {:?} elected in {} rounds (unique: {})",
        election.leaders, election.rounds, election.unique
    );
    assert!(election.unique, "election not unique; rerun with another seed");
    println!(
        "\ntheory: consensus O(D log n log x + log^2 n log x); election adds the\n\
         random-ID draw from {{1..n^3}} and runs consensus over {} bits",
        domain_bits((n * n * n) as u64)
    );
}
