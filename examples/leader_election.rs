//! Leader election and consensus over the coloring backbone (Section 5).
//!
//! ```text
//! cargo run --release --example leader_election
//! ```
//!
//! A fleet of autonomous rovers lands in a canyon (a cluster chain). They
//! first agree on the minimum of their battery readings (consensus), then
//! elect a coordinator by drawing random IDs and agreeing on the minimum ID
//! — both on top of one `StabilizeProbability` backbone each, and both
//! expressed as declarative `Scenario`s over the same topology.

use sinr_broadcast::core::consensus::domain_bits;
use sinr_broadcast::netgen::validate;
use sinr_broadcast::phy::SinrParams;
use sinr_broadcast::sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};

fn main() {
    let seed = 3;
    let diameter = 5;
    let topology = TopologySpec::ClusterChain {
        diameter,
        per_cluster: 8,
    };

    // Inspect the deployment this seed will materialize.
    let probe = Scenario::new(topology.clone())
        .protocol(ProtocolSpec::LeaderElection { d_bound: diameter })
        .build()
        .expect("fixed-schedule protocol");
    let points = probe.materialize(seed).expect("generated");
    let n = points.len();
    let report = validate::report(&points, &SinrParams::default_plane());
    println!("rover fleet: n = {n}, D = {:?}\n", report.diameter);

    // --- consensus on battery levels (domain 0..=100) ---
    let batteries: Vec<u64> = (0..n as u64).map(|i| 35 + (i * 17) % 60).collect();
    let min_battery = *batteries.iter().min().unwrap();
    let outcome = Scenario::new(topology.clone())
        .protocol(ProtocolSpec::Consensus {
            values: batteries,
            bits: domain_bits(100),
            d_bound: diameter,
        })
        .build()
        .expect("fixed-schedule protocol")
        .run(seed)
        .expect("valid network");
    match outcome.outcome {
        Outcome::Consensus {
            ref decided,
            agreement,
            valid,
        } => {
            println!(
                "consensus on minimum battery: decided {:?} (true minimum {min_battery}) \
                 in {} rounds — agreement: {agreement}, valid: {valid}",
                decided[0], outcome.rounds
            );
            assert!(valid, "consensus failed; widen the window");
        }
        ref other => unreachable!("consensus outcome expected, got {other:?}"),
    }

    // --- leader election ---
    let election = probe.run(seed).expect("valid network");
    match election.outcome {
        Outcome::Leader {
            ref leaders,
            unique,
        } => {
            println!(
                "leader election: rover {leaders:?} elected in {} rounds (unique: {unique})",
                election.rounds
            );
            assert!(unique, "election not unique; rerun with another seed");
        }
        ref other => unreachable!("leader outcome expected, got {other:?}"),
    }
    println!(
        "\ntheory: consensus O(D log n log x + log^2 n log x); election adds the\n\
         random-ID draw from {{1..n^3}} and runs consensus over {} bits",
        domain_bits((n * n * n) as u64)
    );
}
