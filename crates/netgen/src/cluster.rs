//! Clustered deployments: Gaussian blobs and chains of clusters.
//!
//! Chains of clusters are the main diameter-control tool of the experiment
//! suite: `k` dense clusters are strung along a line with inter-cluster
//! spacing just below the communication radius, so the communication-graph
//! diameter is `Θ(k)` while each cluster is a dense clique — exactly the
//! dense–sparse contrast the coloring procedure must handle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::Point2;
use sinr_phy::SinrParams;

use crate::perturb::enforce_min_separation;

/// Samples a standard-normal value via Box–Muller.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `k` Gaussian clusters of `per_cluster` points each; centres uniform in
/// `[0, side]²`, points N(centre, sigma²·I).
///
/// # Panics
///
/// Panics if `side` or `sigma` is not positive and finite.
pub fn gaussian_clusters(
    k: usize,
    per_cluster: usize,
    side: f64,
    sigma: f64,
    seed: u64,
) -> Vec<Point2> {
    assert!(side.is_finite() && side > 0.0, "side must be positive");
    assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(k * per_cluster);
    for _ in 0..k {
        let c = Point2::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side));
        for _ in 0..per_cluster {
            pts.push(Point2::new(
                c.x + sigma * gaussian(&mut rng),
                c.y + sigma * gaussian(&mut rng),
            ));
        }
    }
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

/// A chain of `k` clusters along the x-axis: cluster `i` is `per_cluster`
/// points uniform in a disk of radius `cluster_radius` centred at
/// `(i · hop, 0)`.
///
/// With `hop + 2·cluster_radius ≤ comm_radius` adjacent clusters are fully
/// joined while clusters two hops apart are out of range, so the
/// communication-graph diameter is `k − 1` (for `k ≥ 2`).
///
/// # Panics
///
/// Panics if `k == 0`, `per_cluster == 0`, or the geometry parameters are
/// not positive finite.
pub fn chain_of_clusters(
    k: usize,
    per_cluster: usize,
    hop: f64,
    cluster_radius: f64,
    seed: u64,
) -> Vec<Point2> {
    assert!(
        k > 0 && per_cluster > 0,
        "need at least one cluster and point"
    );
    assert!(hop.is_finite() && hop > 0.0, "hop must be positive");
    assert!(
        cluster_radius.is_finite() && cluster_radius > 0.0,
        "cluster_radius must be positive"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(k * per_cluster);
    for i in 0..k {
        let cx = i as f64 * hop;
        for _ in 0..per_cluster {
            let r = cluster_radius * rng.gen_range(0.0f64..=1.0).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            pts.push(Point2::new(cx + r * theta.cos(), r * theta.sin()));
        }
    }
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

/// A chain of clusters sized for a target communication-graph diameter
/// under `params`: `diameter + 1` clusters with hop `0.85·(1−ε)` and
/// cluster radius `0.05·(1−ε)`.
///
/// For `diameter >= 1` the resulting exact diameter equals `diameter`
/// (verified in tests and by [`crate::validate::report`] in the experiment
/// harness); `diameter == 0` yields a single clique-cluster whose diameter
/// is 1 when it has more than one station.
pub fn chain_for_diameter(
    diameter: u32,
    per_cluster: usize,
    params: &SinrParams,
    seed: u64,
) -> Vec<Point2> {
    let rc = params.comm_radius();
    chain_of_clusters(
        diameter as usize + 1,
        per_cluster,
        0.85 * rc,
        0.05 * rc,
        seed,
    )
}

/// The paper's footnote-4 adversary: a dense **core** of `core_n` stations
/// packed in a disk of radius `core_radius`, surrounded by `sat_n` isolated
/// **satellites** on a circle of radius `sat_distance`, pairwise farther
/// than ε/2 apart.
///
/// Every satellite sees the whole core inside its unit ball (so a unit-ball
/// density test fires early) while its own ε/2-ball is empty — exactly the
/// configuration where `DensityTest` alone would assign satellites
/// near-zero colors and only the `Playoff` scale-up saves Lemma 2. Used by
/// the A1/A2 ablations.
///
/// # Panics
///
/// Panics if geometry parameters are not positive finite, or if
/// `sat_distance ≤ core_radius` (satellites would sit inside the core).
pub fn core_and_satellites(
    core_n: usize,
    sat_n: usize,
    core_radius: f64,
    sat_distance: f64,
    seed: u64,
) -> Vec<Point2> {
    assert!(
        core_radius.is_finite() && core_radius > 0.0,
        "core_radius must be positive"
    );
    assert!(
        sat_distance.is_finite() && sat_distance > core_radius,
        "sat_distance must exceed core_radius"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(core_n + sat_n);
    for _ in 0..core_n {
        let r = core_radius * rng.gen_range(0.0f64..=1.0).sqrt();
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        pts.push(Point2::new(r * theta.cos(), r * theta.sin()));
    }
    for i in 0..sat_n {
        let theta = i as f64 / sat_n as f64 * std::f64::consts::TAU;
        pts.push(Point2::new(
            sat_distance * theta.cos(),
            sat_distance * theta.sin(),
        ));
    }
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_phy::CommGraph;

    #[test]
    fn gaussian_clusters_count() {
        let pts = gaussian_clusters(4, 25, 10.0, 0.1, 3);
        assert_eq!(pts.len(), 100);
    }

    #[test]
    fn gaussian_clusters_deterministic() {
        assert_eq!(
            gaussian_clusters(2, 10, 5.0, 0.2, 8),
            gaussian_clusters(2, 10, 5.0, 0.2, 8)
        );
    }

    #[test]
    fn chain_structure() {
        let params = SinrParams::default_plane();
        let pts = chain_of_clusters(5, 8, 0.85 * 0.5, 0.05 * 0.5, 1);
        assert_eq!(pts.len(), 40);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
    }

    #[test]
    fn chain_for_diameter_is_exact() {
        let params = SinrParams::default_plane();
        for d in [1u32, 3, 7] {
            let pts = chain_for_diameter(d, 6, &params, 42);
            let g = CommGraph::build(&pts, params.comm_radius());
            assert!(g.is_connected(), "d={d}");
            assert_eq!(g.diameter_exact(), Some(d), "d={d}");
        }
    }

    #[test]
    fn single_cluster_is_a_clique() {
        let params = SinrParams::default_plane();
        let pts = chain_for_diameter(0, 10, &params, 5);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(1));
    }

    #[test]
    fn core_and_satellites_geometry() {
        use sinr_geometry::MetricPoint;
        let pts = core_and_satellites(100, 8, 0.2, 0.6, 3);
        assert_eq!(pts.len(), 108);
        // Core within radius, satellites on the circle.
        for p in &pts[..100] {
            assert!(p.norm() <= 0.2 + 1e-9);
        }
        for p in &pts[100..] {
            assert!((p.norm() - 0.6).abs() < 1e-9);
        }
        // Satellites pairwise farther than eps/2 = 0.25 (8 on a 0.6 circle:
        // chord = 2*0.6*sin(pi/8) = 0.459).
        for i in 100..108 {
            for j in (i + 1)..108 {
                assert!(pts[i].distance(&pts[j]) > 0.25);
            }
        }
        // Each satellite sees the core inside its unit ball.
        assert!(pts[100].distance(&pts[0]) <= 0.8 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn satellites_inside_core_rejected() {
        let _ = core_and_satellites(10, 4, 0.5, 0.4, 1);
    }

    #[test]
    #[should_panic]
    fn chain_rejects_zero_clusters() {
        let _ = chain_of_clusters(0, 5, 0.4, 0.02, 1);
    }

    #[test]
    fn clusters_respect_min_separation() {
        use crate::perturb::min_separation_ok;
        let pts = gaussian_clusters(3, 50, 1.0, 1e-12, 9); // pathological sigma
        assert!(min_separation_ok(&pts));
    }
}
