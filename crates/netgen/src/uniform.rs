//! Uniform random deployments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::Point2;
use sinr_phy::{CommGraph, SinrParams};

use crate::perturb::min_separation_ok;

/// `n` points uniform in the axis-aligned square `[0, side]²`.
///
/// # Panics
///
/// Panics if `side` is not positive and finite.
pub fn square(n: usize, side: f64, seed: u64) -> Vec<Point2> {
    assert!(
        side.is_finite() && side > 0.0,
        "side must be positive, got {side}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
        .collect()
}

/// `n` points uniform in the disk of the given radius centred at the origin
/// (area-uniform via the √U radial transform).
///
/// # Panics
///
/// Panics if `radius` is not positive and finite.
pub fn disk(n: usize, radius: f64, seed: u64) -> Vec<Point2> {
    assert!(
        radius.is_finite() && radius > 0.0,
        "radius must be positive, got {radius}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = radius * rng.gen_range(0.0f64..=1.0).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            Point2::new(r * theta.cos(), r * theta.sin())
        })
        .collect()
}

/// Uniform square deployment, resampled (up to `MAX_ATTEMPTS` = 64 seeds)
/// until the communication graph under `params` is connected and stations
/// respect the minimum separation. Returns `None` when the density is too
/// low for connectivity to be plausible.
///
/// This is the workhorse generator of the experiment suite: experiments need
/// *connected* instances, and rejection sampling preserves uniformity
/// conditioned on connectivity.
pub fn connected_square(
    n: usize,
    side: f64,
    params: &SinrParams,
    seed: u64,
) -> Option<Vec<Point2>> {
    const MAX_ATTEMPTS: u64 = 64;
    for attempt in 0..MAX_ATTEMPTS {
        let pts = square(
            n,
            side,
            seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
        );
        if !min_separation_ok(&pts) {
            continue;
        }
        let g = CommGraph::build(&pts, params.comm_radius());
        if g.is_connected() {
            return Some(pts);
        }
    }
    None
}

/// Uniform disk deployment resampled until connected, as
/// [`connected_square`].
pub fn connected_disk(
    n: usize,
    radius: f64,
    params: &SinrParams,
    seed: u64,
) -> Option<Vec<Point2>> {
    const MAX_ATTEMPTS: u64 = 64;
    for attempt in 0..MAX_ATTEMPTS {
        let pts = disk(
            n,
            radius,
            seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
        );
        if !min_separation_ok(&pts) {
            continue;
        }
        let g = CommGraph::build(&pts, params.comm_radius());
        if g.is_connected() {
            return Some(pts);
        }
    }
    None
}

/// Side length giving expected density `density` stations per unit area for
/// `n` stations: `sqrt(n / density)`.
pub fn side_for_density(n: usize, density: f64) -> f64 {
    assert!(density > 0.0, "density must be positive");
    (n as f64 / density).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_bounds_and_count() {
        let pts = square(200, 5.0, 1);
        assert_eq!(pts.len(), 200);
        assert!(pts
            .iter()
            .all(|p| (0.0..=5.0).contains(&p.x) && (0.0..=5.0).contains(&p.y)));
    }

    #[test]
    fn square_deterministic_per_seed() {
        assert_eq!(square(50, 2.0, 9), square(50, 2.0, 9));
        assert_ne!(square(50, 2.0, 9), square(50, 2.0, 10));
    }

    #[test]
    fn disk_within_radius() {
        let pts = disk(300, 2.5, 3);
        assert!(pts.iter().all(|p| p.norm() <= 2.5 + 1e-12));
    }

    #[test]
    fn disk_roughly_area_uniform() {
        // Half the radius encloses a quarter of the area.
        let pts = disk(4000, 1.0, 7);
        let inner = pts.iter().filter(|p| p.norm() <= 0.5).count();
        let frac = inner as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.04, "frac = {frac}");
    }

    #[test]
    fn connected_square_is_connected() {
        let params = SinrParams::default_plane();
        let pts = connected_square(150, 2.0, &params, 11).expect("dense instance");
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
    }

    #[test]
    fn connected_square_gives_up_when_hopeless() {
        // 3 stations in a 1000-unit square will essentially never connect.
        let params = SinrParams::default_plane();
        assert!(connected_square(3, 1000.0, &params, 1).is_none());
    }

    #[test]
    fn side_for_density_math() {
        assert_eq!(side_for_density(100, 4.0), 5.0);
    }

    #[test]
    #[should_panic]
    fn square_rejects_bad_side() {
        let _ = square(5, -1.0, 0);
    }

    #[test]
    fn zero_points_ok() {
        assert!(square(0, 1.0, 0).is_empty());
        assert!(disk(0, 1.0, 0).is_empty());
    }
}
