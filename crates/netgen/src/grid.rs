//! Regular lattice deployments.

use sinr_geometry::Point2;

/// A `rows × cols` lattice with the given spacing, row-major order.
///
/// With spacing `<= comm_radius` the communication graph contains the
/// 4-neighbour grid and its diameter is the Manhattan corner distance
/// (possibly smaller if diagonals fit within range).
///
/// # Panics
///
/// Panics if `spacing` is not positive and finite.
pub fn lattice(rows: usize, cols: usize, spacing: f64) -> Vec<Point2> {
    assert!(
        spacing.is_finite() && spacing > 0.0,
        "spacing must be positive, got {spacing}"
    );
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            pts.push(Point2::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    pts
}

/// A lattice jittered by up to `amplitude` per coordinate (a "noisy grid").
pub fn jittered_lattice(
    rows: usize,
    cols: usize,
    spacing: f64,
    amplitude: f64,
    seed: u64,
) -> Vec<Point2> {
    crate::perturb::jitter(&lattice(rows, cols, spacing), amplitude, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_phy::{CommGraph, SinrParams};

    #[test]
    fn lattice_count_and_layout() {
        let pts = lattice(3, 4, 0.4);
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0], Point2::new(0.0, 0.0));
        // row 2, col 3 (allow for floating-point accumulation)
        assert!(pts[11].x - 1.2 < 1e-12 && pts[11].y - 0.8 < 1e-12);
    }

    #[test]
    fn lattice_connectivity() {
        let params = SinrParams::default_plane();
        let pts = lattice(5, 5, 0.45);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(8)); // Manhattan 4+4
    }

    #[test]
    fn jittered_lattice_deterministic() {
        assert_eq!(
            jittered_lattice(3, 3, 0.4, 0.05, 7),
            jittered_lattice(3, 3, 0.4, 0.05, 7)
        );
    }

    #[test]
    fn empty_lattice() {
        assert!(lattice(0, 5, 1.0).is_empty());
        assert!(lattice(5, 0, 1.0).is_empty());
    }
}
