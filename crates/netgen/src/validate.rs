//! Topology validation and reporting.

use sinr_geometry::Point2;
use sinr_phy::{CommGraph, SinrParams};

/// Structural summary of a deployed topology under given SINR parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyReport {
    /// Number of stations.
    pub n: usize,
    /// Whether the communication graph is connected.
    pub connected: bool,
    /// Exact diameter `D` (hops), `None` when disconnected.
    pub diameter: Option<u32>,
    /// Maximum communication-graph degree Δ.
    pub max_degree: usize,
    /// Number of communication-graph edges.
    pub num_edges: usize,
    /// Granularity `R_s`, `None` when the graph has no edges.
    pub granularity: Option<f64>,
}

/// Computes a [`TopologyReport`] for `points` under `params`.
///
/// Uses the exact all-sources-BFS diameter for n ≤ 2048 and the double-sweep
/// estimate beyond (exact on chains/paths, a lower bound in general — the
/// report notes which via [`TopologyReport::diameter`] being estimate-based
/// only at large n; experiment harnesses that need exactness keep n small or
/// use chain topologies where double-sweep is exact).
pub fn report(points: &[Point2], params: &SinrParams) -> TopologyReport {
    let g = CommGraph::build(points, params.comm_radius());
    let connected = g.is_connected();
    let diameter = if !connected {
        None
    } else if g.len() <= 2048 {
        g.diameter_exact()
    } else {
        g.diameter_double_sweep(0)
    };
    TopologyReport {
        n: g.len(),
        connected,
        diameter,
        max_degree: g.max_degree(),
        num_edges: g.num_edges(),
        granularity: g.granularity(points),
    }
}

/// Panics with a descriptive message unless the topology is connected.
/// Convenience guard for experiment harnesses.
///
/// # Panics
///
/// Panics when the communication graph of `points` under `params` is
/// disconnected.
pub fn require_connected(points: &[Point2], params: &SinrParams) {
    let g = CommGraph::build(points, params.comm_radius());
    assert!(
        g.is_connected(),
        "topology with {} stations is disconnected under {params}",
        points.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::uniform_line;

    #[test]
    fn report_on_path() {
        let params = SinrParams::default_plane();
        let pts = uniform_line(6, 0.45);
        let r = report(&pts, &params);
        assert_eq!(r.n, 6);
        assert!(r.connected);
        assert_eq!(r.diameter, Some(5));
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.num_edges, 5);
        assert!((r.granularity.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_disconnected() {
        let params = SinrParams::default_plane();
        let mut pts = uniform_line(3, 0.45);
        pts.push(Point2::new(100.0, 0.0));
        let r = report(&pts, &params);
        assert!(!r.connected);
        assert_eq!(r.diameter, None);
    }

    #[test]
    #[should_panic]
    fn require_connected_panics() {
        let params = SinrParams::default_plane();
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        require_connected(&pts, &params);
    }

    #[test]
    fn large_network_uses_double_sweep() {
        let params = SinrParams::default_plane();
        let pts = uniform_line(3000, 0.45);
        let r = report(&pts, &params);
        assert!(r.connected);
        assert_eq!(r.diameter, Some(2999)); // double-sweep exact on paths
    }
}
