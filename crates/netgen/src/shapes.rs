//! Additional deployment shapes: rings, bridges and two-tier densities.
//!
//! These stress specific aspects of the algorithms: rings double every
//! shortest path (robustness), bridges funnel all traffic through a thin
//! corridor (the hardest hop), and two-tier deployments put two uniform
//! densities side by side (no single flooding probability fits both).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::Point2;
use sinr_phy::SinrParams;

use crate::perturb::enforce_min_separation;

/// `n` stations evenly spaced on a circle of the given radius (plus
/// deterministic micro-jitter to avoid exact symmetries).
///
/// With spacing `2πr/n ≤ comm_radius` the communication graph is a cycle
/// (or denser), so the diameter is ~`n/2` · (spacing/comm reach) and every
/// pair of stations has two disjoint routes.
///
/// # Panics
///
/// Panics if `radius` is not positive finite or `n == 0`.
pub fn ring(n: usize, radius: f64, seed: u64) -> Vec<Point2> {
    assert!(n > 0, "ring needs at least one station");
    assert!(
        radius.is_finite() && radius > 0.0,
        "radius must be positive"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Point2> = (0..n)
        .map(|i| {
            let theta = i as f64 / n as f64 * std::f64::consts::TAU;
            let r = radius * (1.0 + rng.gen_range(-1e-3..1e-3));
            Point2::new(r * theta.cos(), r * theta.sin())
        })
        .collect();
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

/// Two dense square blobs joined by a thin single-file corridor: the
/// "bridge" topology. All traffic between the blobs crosses the corridor,
/// whose stations see heavy interference from both sides.
///
/// * each blob: `blob_n` stations uniform in a `blob_side`-square;
/// * corridor: `corridor_n + 2` stations in single file (two of them are
///   edge anchors guaranteeing blob attachment) with gap
///   `0.9·comm_radius` under `params`.
///
/// # Panics
///
/// Panics if any count is zero or `blob_side` is not positive finite.
pub fn bridge(
    blob_n: usize,
    corridor_n: usize,
    blob_side: f64,
    params: &SinrParams,
    seed: u64,
) -> Vec<Point2> {
    assert!(blob_n > 0 && corridor_n > 0, "counts must be positive");
    assert!(
        blob_side.is_finite() && blob_side > 0.0,
        "blob_side must be positive"
    );
    let gap = 0.9 * params.comm_radius();
    let corridor_len = (corridor_n + 1) as f64 * gap;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(2 * blob_n + corridor_n);
    // Left blob, right edge at x = 0.
    for _ in 0..blob_n {
        pts.push(Point2::new(
            rng.gen_range(-blob_side..=0.0),
            rng.gen_range(0.0..=blob_side),
        ));
    }
    // Corridor along y = blob_side/2, with anchor stations at both blob
    // edges (x = 0 and x = corridor_len) so the blobs always connect to it.
    let y = blob_side / 2.0;
    for i in 0..=(corridor_n + 1) {
        pts.push(Point2::new(i as f64 * gap, y));
    }
    // Right blob, left edge at the corridor's end.
    for _ in 0..blob_n {
        pts.push(Point2::new(
            corridor_len + rng.gen_range(0.0..=blob_side),
            rng.gen_range(0.0..=blob_side),
        ));
    }
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

/// Two adjacent uniform tiles with a density contrast of `ratio : 1` —
/// `dense_n` stations in the left `side`-square, `dense_n / ratio`
/// (at least 2) in the right one. The paper's point that no fixed
/// transmission probability suits both regimes, in one instance.
///
/// # Panics
///
/// Panics if `ratio == 0` or inputs are degenerate.
pub fn two_tier(dense_n: usize, ratio: usize, side: f64, seed: u64) -> Vec<Point2> {
    assert!(ratio > 0, "ratio must be positive");
    assert!(
        dense_n > 0 && side.is_finite() && side > 0.0,
        "degenerate inputs"
    );
    let sparse_n = (dense_n / ratio).max(2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(dense_n + sparse_n);
    for _ in 0..dense_n {
        pts.push(Point2::new(
            rng.gen_range(0.0..=side),
            rng.gen_range(0.0..=side),
        ));
    }
    for _ in 0..sparse_n {
        pts.push(Point2::new(
            rng.gen_range(side..=2.0 * side),
            rng.gen_range(0.0..=side),
        ));
    }
    enforce_min_separation(&mut pts, SinrParams::MIN_DISTANCE * 2.0);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_phy::CommGraph;

    #[test]
    fn ring_is_a_cycle() {
        let params = SinrParams::default_plane();
        // 40 stations, circumference chosen so spacing ~ 0.4 < 0.5.
        let radius = 40.0 * 0.4 / std::f64::consts::TAU;
        let pts = ring(40, radius, 1);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
        // Cycle diameter ~ n/2 hops (possibly less with chord edges).
        let d = g.diameter_exact().unwrap();
        assert!((10..=20).contains(&d), "d = {d}");
        assert!(pts
            .iter()
            .all(|p| (p.norm() - radius).abs() < radius * 0.01));
    }

    #[test]
    fn bridge_connects_blobs_through_corridor() {
        let params = SinrParams::default_plane();
        let pts = bridge(40, 6, 1.2, &params, 3);
        assert_eq!(pts.len(), 88);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
        // A left-blob to right-blob path must traverse >= corridor_n hops.
        let path = g.shortest_path(0, 87).unwrap();
        assert!(path.len() >= 6, "path too short: {}", path.len());
    }

    #[test]
    fn two_tier_density_contrast() {
        let pts = two_tier(120, 10, 2.0, 5);
        assert_eq!(pts.len(), 132);
        let left = pts.iter().filter(|p| p.x <= 2.0).count();
        let right = pts.len() - left;
        assert!(left >= 10 * right - 20, "contrast lost: {left} vs {right}");
    }

    #[test]
    fn generators_deterministic() {
        let params = SinrParams::default_plane();
        assert_eq!(ring(10, 2.0, 7), ring(10, 2.0, 7));
        assert_eq!(bridge(5, 3, 1.0, &params, 7), bridge(5, 3, 1.0, &params, 7));
        assert_eq!(two_tier(20, 4, 1.0, 7), two_tier(20, 4, 1.0, 7));
    }

    #[test]
    #[should_panic]
    fn ring_rejects_empty() {
        let _ = ring(0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn two_tier_rejects_zero_ratio() {
        let _ = two_tier(10, 0, 1.0, 0);
    }
}
