//! Jitter and separation utilities.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::{GridIndex, MetricPoint, Point2};
use sinr_phy::SinrParams;

/// Whether all pairwise distances respect [`SinrParams::MIN_DISTANCE`].
pub fn min_separation_ok(points: &[Point2]) -> bool {
    if points.len() < 2 {
        return true;
    }
    let grid = GridIndex::build(points, 1.0);
    points.iter().enumerate().all(|(i, p)| {
        grid.nearest(points, *p, i)
            .map_or(true, |(_, d)| d >= SinrParams::MIN_DISTANCE)
    })
}

/// Adds independent uniform jitter from `[-amplitude, amplitude]²` to every
/// point.
///
/// # Panics
///
/// Panics if `amplitude` is negative or non-finite.
pub fn jitter(points: &[Point2], amplitude: f64, seed: u64) -> Vec<Point2> {
    assert!(
        amplitude.is_finite() && amplitude >= 0.0,
        "amplitude must be non-negative, got {amplitude}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    points
        .iter()
        .map(|p| {
            p.translate(
                rng.gen_range(-amplitude..=amplitude),
                rng.gen_range(-amplitude..=amplitude),
            )
        })
        .collect()
}

/// Repairs near-coincident points by nudging the later of each too-close
/// pair in a deterministic direction until all pairs are separated by at
/// least `min_gap`. Returns the number of nudges applied.
///
/// Intended for synthetic generators that may (very rarely) sample
/// duplicates; the nudge magnitude is `min_gap`, negligible at deployment
/// scale.
pub fn enforce_min_separation(points: &mut [Point2], min_gap: f64) -> usize {
    assert!(min_gap > 0.0, "min_gap must be positive");
    let mut nudges = 0;
    // O(n²) pass is acceptable: generators call this once per instance and
    // violations are rare; loop until a clean pass (bounded retries).
    for _ in 0..16 {
        let mut dirty = false;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].distance(&points[j]) < min_gap {
                    // Golden-angle spiral with growing radius: successive
                    // nudges of coincident points land pairwise-separated.
                    let angle = (nudges as f64) * 2.399_963_229_728_653;
                    let dist = min_gap * (1.0 + nudges as f64);
                    points[j] = points[j].polar_offset(angle, dist);
                    nudges += 1;
                    dirty = true;
                }
            }
        }
        if !dirty {
            return nudges;
        }
    }
    nudges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_detects_duplicates() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.0, 0.0)];
        assert!(!min_separation_ok(&pts));
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        assert!(min_separation_ok(&pts));
        assert!(min_separation_ok(&[]));
        assert!(min_separation_ok(&[Point2::origin()]));
    }

    #[test]
    fn jitter_moves_points_within_amplitude() {
        let pts = vec![Point2::new(1.0, 1.0); 50];
        let moved = jitter(&pts, 0.1, 3);
        for (a, b) in pts.iter().zip(&moved) {
            assert!((a.x - b.x).abs() <= 0.1 + 1e-12);
            assert!((a.y - b.y).abs() <= 0.1 + 1e-12);
        }
    }

    #[test]
    fn jitter_zero_amplitude_identity() {
        let pts = vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)];
        assert_eq!(jitter(&pts, 0.0, 1), pts);
    }

    #[test]
    fn enforce_separation_fixes_duplicates() {
        let mut pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
        ];
        let nudges = enforce_min_separation(&mut pts, 1e-6);
        assert!(nudges > 0);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(pts[i].distance(&pts[j]) >= 1e-6);
            }
        }
    }

    #[test]
    fn enforce_separation_noop_when_clean() {
        let mut pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        assert_eq!(enforce_min_separation(&mut pts, 1e-6), 0);
    }
}
