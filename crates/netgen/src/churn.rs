//! Seed-deterministic population churn for dynamic-network experiments.
//!
//! A [`ChurnProcess`] owns the stochastic state of one trial's station
//! lifecycle and emits one [`ChurnDelta`](sinr_phy::ChurnDelta) per epoch:
//!
//! * **departures** — every live station dies independently with
//!   probability `1 / mean_lifetime` per epoch (geometric lifetimes, the
//!   memoryless "crash at any moment" regime);
//! * **arrivals** — a Poisson-distributed number of stations join per
//!   epoch (`arrival_rate` expected), each at a uniform position of the
//!   process's [`Bounds`] box. Arrivals first *rejoin* dead stations in
//!   ascending index order (the station returns at a fresh random
//!   position — a teleporting rejoin — with its protocol memory intact),
//!   and only spawn brand-new indices once no tombstones are left, so the
//!   index space grows only when the population genuinely exceeds every
//!   previous high-water mark.
//!
//! Like every generator in this crate, the schedule is **deterministic
//! given a seed**: the whole state lives in this struct, so equal seeds
//! replay equal churn schedules — the seeded churn schedule is a
//! first-class, replayable input of a scenario. `step_into` fills a
//! caller-owned delta, so steady-state epochs perform no heap
//! allocations once the buffers reach their high-water marks.
//!
//! # Example
//!
//! ```
//! use sinr_netgen::churn::{ChurnModel, ChurnProcess};
//! use sinr_netgen::uniform;
//! use sinr_phy::ChurnDelta;
//!
//! let pts = uniform::square(50, 4.0, 7);
//! let model = ChurnModel { arrival_rate: 1.5, mean_lifetime: 10.0 };
//! let mut churn = ChurnProcess::over_deployment(model, &pts, 42);
//! let mut alive = vec![true; 50];
//! let mut delta = ChurnDelta::new();
//! churn.step_into(&alive, &mut delta);
//! for &k in &delta.kills {
//!     alive[k] = false; // mirror what `Network::apply_churn` would do
//! }
//! assert!(delta.kills.iter().all(|&k| k < 50));
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::MetricPoint;
use sinr_phy::ChurnDelta;

use crate::mobility::Bounds;

/// Parameters of the per-epoch station lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Expected number of arrivals per epoch (Poisson-distributed; `0`
    /// disables arrivals).
    pub arrival_rate: f64,
    /// Expected station lifetime in epochs: each live station dies with
    /// probability `1 / mean_lifetime` per epoch. Must be at least 1 — a
    /// zero (or sub-epoch) lifetime would kill stations faster than
    /// epochs resolve.
    pub mean_lifetime: f64,
}

impl ChurnModel {
    /// Checks the model parameters, returning a description of the first
    /// problem: a negative or non-finite arrival rate, or a non-finite or
    /// sub-1 (including zero) mean lifetime. Builder surfaces call this
    /// to fail fast at `Scenario::build`; [`ChurnProcess::new`] panics on
    /// the same conditions.
    ///
    /// # Errors
    ///
    /// The human-readable description of the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(format!(
                "churn arrival rate must be finite and non-negative, got {}",
                self.arrival_rate
            ));
        }
        if !(self.mean_lifetime.is_finite() && self.mean_lifetime >= 1.0) {
            return Err(format!(
                "churn mean lifetime must be at least one epoch, got {}",
                self.mean_lifetime
            ));
        }
        Ok(())
    }
}

/// Per-trial churn state: one epoch of departures and arrivals per
/// [`ChurnProcess::step_into`] call.
///
/// The schedule is a pure function of `(model, bounds, seed, liveness
/// history)` — and the liveness history is itself determined by the
/// schedule, so one seed pins the whole lifecycle.
#[derive(Debug, Clone)]
pub struct ChurnProcess<P: MetricPoint> {
    model: ChurnModel,
    bounds: Bounds,
    rng: SmallRng,
    /// A station arrivals must never kill and never rejoin-relocate (a
    /// broadcast source, typically). `usize::MAX` protects nobody.
    protected: usize,
    /// Dead-index scratch, reused across epochs.
    dead: Vec<usize>,
    _point: std::marker::PhantomData<fn() -> P>,
}

impl<P: MetricPoint> ChurnProcess<P> {
    /// Churn state over an explicit arrival domain.
    ///
    /// # Panics
    ///
    /// Panics on invalid model parameters, or when the box dimensionality
    /// differs from the point type's.
    pub fn new(model: ChurnModel, bounds: Bounds, seed: u64) -> Self {
        if let Err(e) = model.validate() {
            panic!("{e}");
        }
        assert_eq!(
            bounds.axes(),
            P::AXES,
            "bounds dimensionality must match the point type"
        );
        ChurnProcess {
            model,
            bounds,
            rng: SmallRng::seed_from_u64(seed),
            protected: usize::MAX,
            dead: Vec::new(),
            _point: std::marker::PhantomData,
        }
    }

    /// Churn state whose arrivals land in the bounding box of the initial
    /// deployment — the default domain of generated topologies.
    ///
    /// # Panics
    ///
    /// As [`ChurnProcess::new`]; additionally panics on an empty
    /// deployment.
    pub fn over_deployment(model: ChurnModel, points: &[P], seed: u64) -> Self {
        ChurnProcess::new(model, Bounds::of_points(points), seed)
    }

    /// Protects `station` from ever being killed (a broadcast source
    /// whose death would make the dissemination goal undefined).
    #[must_use]
    pub fn protect(mut self, station: usize) -> Self {
        self.protected = station;
        self
    }

    /// The model in effect.
    pub fn model(&self) -> ChurnModel {
        self.model
    }

    /// The arrival domain.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Generates one epoch of churn into `delta` (cleared first):
    /// departures in ascending station order, then arrivals — rejoins of
    /// the lowest dead indices first, spawns once no tombstones remain.
    /// Stations that die this epoch are not rejoin candidates in the same
    /// epoch (they just left). Performs no heap allocations once the
    /// delta and the internal scratch reach their high-water marks.
    ///
    /// `alive` is the network's current liveness (one flag per station,
    /// [`sinr_phy::Network::alive`]).
    pub fn step_into(&mut self, alive: &[bool], delta: &mut ChurnDelta<P>) {
        delta.clear();
        // Tombstones from *previous* epochs are the rejoin pool. The
        // protected station is excluded: it can only be dead if an
        // external force (a fault-injecting adversary) took it down, and
        // a rejoin here would teleport it to a random position —
        // relocating a broadcast source mid-run would silently change
        // the dissemination goal.
        self.dead.clear();
        self.dead.extend(
            alive
                .iter()
                .enumerate()
                .filter(|&(i, &a)| !a && i != self.protected)
                .map(|(i, _)| i),
        );
        // Departures: geometric lifetime, visited in index order so the
        // RNG stream — and therefore the schedule — is deterministic.
        let p_die = 1.0 / self.model.mean_lifetime;
        for (i, &a) in alive.iter().enumerate() {
            if !a || i == self.protected {
                continue;
            }
            if self.rng.gen_range(0.0..1.0) < p_die {
                delta.kills.push(i);
            }
        }
        // Arrivals: Poisson count, then rejoin-before-spawn placement at
        // uniform positions of the domain.
        let arrivals = poisson(&mut self.rng, self.model.arrival_rate);
        let mut next_dead = 0usize;
        for _ in 0..arrivals {
            let pos = P::from_coords(self.sample());
            if next_dead < self.dead.len() {
                delta.rejoins.push((self.dead[next_dead], pos));
                next_dead += 1;
            } else {
                delta.spawns.push(pos);
            }
        }
    }

    /// A uniform point of the arrival domain, in fixed-width coordinates
    /// (the same draw [`crate::mobility::Bounds`] uses for waypoints).
    fn sample(&mut self) -> [f64; 3] {
        self.bounds.sample(&mut self.rng)
    }
}

/// A Poisson(`lambda`) draw — exact, allocation-free, and deterministic
/// on the in-tree RNG, valid for **any** finite non-negative rate.
///
/// Knuth's multiplicative method compares a running product of uniforms
/// against `exp(-lambda)`, which underflows to `0.0` for `lambda` ≳ 709
/// and would silently cap the count near ~750. Poisson variables are
/// additive, so large rates are split into chunks small enough for the
/// method and the independent draws summed. Chunks of ≤ 256 keep
/// `exp(-chunk)` comfortably inside the normal range; the cost stays
/// `O(lambda)` uniform draws either way.
fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    const CHUNK: f64 = 256.0;
    let mut total = 0u64;
    let mut remaining = lambda;
    while remaining > CHUNK {
        total += poisson_chunk(rng, CHUNK);
        remaining -= CHUNK;
    }
    total + poisson_chunk(rng, remaining)
}

/// Knuth's method for one in-range chunk (`lambda` ≤ 256).
fn poisson_chunk(rng: &mut SmallRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;
    use sinr_geometry::Point2;

    fn model() -> ChurnModel {
        ChurnModel {
            arrival_rate: 2.0,
            mean_lifetime: 5.0,
        }
    }

    /// Replays a whole schedule: steps the process `epochs` times,
    /// folding each delta into the liveness flags the way
    /// `Network::apply_churn` would.
    fn schedule(seed: u64, epochs: usize) -> Vec<ChurnDelta<Point2>> {
        let pts = uniform::square(40, 3.0, 9);
        let mut proc = ChurnProcess::over_deployment(model(), &pts, seed);
        let mut alive = vec![true; 40];
        let mut out = Vec::new();
        for _ in 0..epochs {
            let mut delta = ChurnDelta::new();
            proc.step_into(&alive, &mut delta);
            for &k in &delta.kills {
                alive[k] = false;
            }
            for &(r, _) in &delta.rejoins {
                alive[r] = true;
            }
            alive.resize(alive.len() + delta.spawns.len(), true);
            out.push(delta);
        }
        out
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        assert_eq!(schedule(5, 12), schedule(5, 12));
        assert_ne!(schedule(5, 12), schedule(6, 12));
    }

    #[test]
    fn deltas_are_well_formed_against_liveness() {
        let pts = uniform::square(30, 3.0, 3);
        let mut proc = ChurnProcess::over_deployment(model(), &pts, 11);
        let mut alive = vec![true; 30];
        let mut delta = ChurnDelta::new();
        for epoch in 0..30 {
            proc.step_into(&alive, &mut delta);
            for &k in &delta.kills {
                assert!(alive[k], "epoch {epoch}: kill of dead station {k}");
                alive[k] = false;
            }
            for &(r, p) in &delta.rejoins {
                assert!(!alive[r], "epoch {epoch}: rejoin of live station {r}");
                assert!((0.0..=3.0).contains(&p.x) && (0.0..=3.0).contains(&p.y));
                alive[r] = true;
            }
            for p in &delta.spawns {
                assert!((0.0..=3.0).contains(&p.x) && (0.0..=3.0).contains(&p.y));
                alive.push(true);
            }
        }
        let live = alive.iter().filter(|&&a| a).count();
        assert!(live > 0, "the population should not die out at these rates");
    }

    #[test]
    fn rejoins_fill_tombstones_before_spawns_grow_the_index_space() {
        // High arrival rate, long lifetimes: tombstones refill quickly.
        let pts = uniform::square(10, 2.0, 1);
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 4.0,
                mean_lifetime: 3.0,
            },
            &pts,
            2,
        );
        let mut alive = vec![true; 10];
        let mut delta = ChurnDelta::new();
        let mut saw_rejoin = false;
        for _ in 0..40 {
            proc.step_into(&alive, &mut delta);
            if !delta.spawns.is_empty() {
                // Spawns only happen when every pre-epoch tombstone was
                // refilled by a rejoin first.
                let dead_before: usize = alive.iter().filter(|&&a| !a).count();
                assert_eq!(delta.rejoins.len(), dead_before, "spawn with free slots");
            }
            saw_rejoin |= !delta.rejoins.is_empty();
            for &k in &delta.kills {
                alive[k] = false;
            }
            for &(r, _) in &delta.rejoins {
                alive[r] = true;
            }
            alive.resize(alive.len() + delta.spawns.len(), true);
        }
        assert!(saw_rejoin, "these rates must exercise the rejoin path");
    }

    #[test]
    fn protected_station_never_dies() {
        let pts = uniform::square(12, 2.0, 4);
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 0.0,
                mean_lifetime: 1.0, // everyone dies every epoch…
            },
            &pts,
            7,
        )
        .protect(3);
        let mut alive = vec![true; 12];
        let mut delta = ChurnDelta::new();
        proc.step_into(&alive, &mut delta);
        assert!(!delta.kills.contains(&3), "…except the protected station");
        assert_eq!(delta.kills.len(), 11);
        for &k in &delta.kills {
            alive[k] = false;
        }
        proc.step_into(&alive, &mut delta);
        assert!(delta.kills.is_empty(), "only the protected station lives");
    }

    #[test]
    fn protected_station_is_never_rejoin_relocated() {
        // A dead *protected* station (killed by an external adversary,
        // not by this process) must not be handed out as a rejoin slot —
        // that would teleport a broadcast source to a random position.
        let pts = uniform::square(6, 2.0, 4);
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 8.0, // plenty of arrivals every epoch
                mean_lifetime: 1e18,
            },
            &pts,
            9,
        )
        .protect(2);
        let mut alive = vec![true; 6];
        alive[2] = false; // adversary-induced source death
        alive[4] = false;
        let mut delta = ChurnDelta::new();
        proc.step_into(&alive, &mut delta);
        assert!(
            delta.rejoins.iter().all(|&(r, _)| r != 2),
            "protected tombstone handed out as a rejoin slot"
        );
        assert!(
            delta.rejoins.iter().any(|&(r, _)| r == 4),
            "unprotected tombstones still rejoin"
        );
    }

    #[test]
    fn kill_everything_schedule_is_survivable() {
        // The degenerate adversarial input: lifetime 1.0 and no
        // protection kills the whole population in one epoch; stepping
        // the process over an all-dead population must stay well-formed
        // (no kills of dead stations, rejoins only of tombstones) rather
        // than panic mid-run.
        let pts = uniform::square(8, 2.0, 6);
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 3.0,
                mean_lifetime: 1.0,
            },
            &pts,
            1,
        );
        let mut alive = vec![true; 8];
        let mut delta = ChurnDelta::new();
        proc.step_into(&alive, &mut delta);
        assert_eq!(delta.kills.len(), 8, "everyone dies at lifetime 1");
        for &k in &delta.kills {
            alive[k] = false;
        }
        for _ in 0..10 {
            proc.step_into(&alive, &mut delta);
            for &k in &delta.kills {
                assert!(alive[k]);
                alive[k] = false;
            }
            for &(r, _) in &delta.rejoins {
                assert!(!alive[r]);
                alive[r] = true;
            }
            alive.resize(alive.len() + delta.spawns.len(), true);
        }
    }

    #[test]
    fn zero_area_bounds_box_arrivals_are_well_defined() {
        // A degenerate deployment where every station sits at one point:
        // the arrival domain collapses to a zero-area box. `Bounds::
        // sample` draws from inclusive ranges, so arrivals land exactly
        // on the point instead of panicking on an empty range.
        let pts = vec![Point2::new(1.5, 2.5); 4];
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 5.0,
                mean_lifetime: 2.0,
            },
            &pts,
            3,
        );
        let alive = vec![true; 4];
        let mut delta = ChurnDelta::new();
        for _ in 0..5 {
            proc.step_into(&alive, &mut delta);
            for &(_, p) in &delta.rejoins {
                assert_eq!(p, Point2::new(1.5, 2.5));
            }
            for p in &delta.spawns {
                assert_eq!(*p, Point2::new(1.5, 2.5));
            }
        }
    }

    #[test]
    fn zero_rates_freeze_the_population() {
        let pts = uniform::square(20, 2.0, 8);
        // mean_lifetime can't be infinite-proof here, but a huge lifetime
        // with zero arrivals must (almost) always produce empty deltas;
        // make it deterministic by checking many epochs of rate 0 only.
        let mut proc = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 0.0,
                mean_lifetime: 1e18,
            },
            &pts,
            5,
        );
        let alive = vec![true; 20];
        let mut delta = ChurnDelta::new();
        for _ in 0..50 {
            proc.step_into(&alive, &mut delta);
            assert!(delta.is_empty());
        }
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| poisson(&mut rng, 2.5)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_survives_rates_beyond_exp_underflow() {
        // exp(-lambda) underflows to 0 above lambda ≈ 709; the chunked
        // draw must keep the mean, not cap near ~750.
        let mut rng = SmallRng::seed_from_u64(5);
        let lambda = 5_000.0;
        let trials = 60;
        let total: u64 = (0..trials).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - lambda).abs() < lambda * 0.02,
            "mean = {mean} for lambda = {lambda}"
        );
    }

    #[test]
    fn validate_reports_the_bad_parameter() {
        assert!(model().validate().is_ok());
        let err = ChurnModel {
            arrival_rate: -1.0,
            mean_lifetime: 5.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("arrival rate"), "{err}");
        let err = ChurnModel {
            arrival_rate: 1.0,
            mean_lifetime: 0.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("lifetime"), "{err}");
        let err = ChurnModel {
            arrival_rate: f64::NAN,
            mean_lifetime: 5.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("arrival rate"), "{err}");
    }

    #[test]
    #[should_panic]
    fn zero_lifetime_rejected_at_construction() {
        let pts = vec![Point2::origin(), Point2::new(1.0, 1.0)];
        let _ = ChurnProcess::over_deployment(
            ChurnModel {
                arrival_rate: 1.0,
                mean_lifetime: 0.0,
            },
            &pts,
            0,
        );
    }
}
