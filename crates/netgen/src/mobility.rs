//! Seed-deterministic mobility models for dynamic-topology experiments.
//!
//! A [`Mobility`] value owns the per-station motion state of one trial —
//! waypoint targets, drift velocities, the model's RNG stream — and
//! advances a position slice by **one epoch** per [`Mobility::advance`]
//! call. Three models cover the classic dynamic-network workloads:
//!
//! * [`MobilityModel::RandomWaypoint`] — each station walks toward a
//!   uniformly drawn waypoint at a fixed speed, pauses on arrival, then
//!   draws the next waypoint (the standard ad hoc mobility benchmark);
//! * [`MobilityModel::Drift`] — constant per-station velocities with
//!   reflection at the domain bounds (smooth, correlated motion);
//! * [`MobilityModel::TeleportChurn`] — each epoch every station
//!   relocates to a fresh uniform position independently with a fixed
//!   probability (the adversarial "memoryless churn" regime).
//!
//! Motion is confined to an axis-aligned [`Bounds`] box, typically the
//! bounding box of the initial deployment ([`Bounds::of_points`]). Like
//! every generator in this crate, trajectories are **deterministic given
//! a seed**: the whole state lives in this struct, so equal seeds replay
//! equal trajectories and [`Mobility::advance`] performs no heap
//! allocations after construction (the epoch path of the zero-allocation
//! pipeline). Stations may drift arbitrarily close together — the SINR
//! kernels clamp distances at `SinrParams::MIN_DISTANCE`, so dynamic
//! topologies never re-run the static min-separation check.
//!
//! # Example
//!
//! ```
//! use sinr_netgen::mobility::{Mobility, MobilityModel};
//! use sinr_netgen::uniform;
//!
//! let mut pts = uniform::square(50, 4.0, 7);
//! let model = MobilityModel::RandomWaypoint { speed: 0.25, pause_epochs: 1 };
//! let mut mob = Mobility::over_deployment(model, &pts, 42);
//! for _epoch in 0..10 {
//!     mob.advance(&mut pts);
//! }
//! assert_eq!(pts.len(), 50);
//! assert!(pts.iter().all(|p| (0.0..=4.0).contains(&p.x)));
//! ```

use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::MetricPoint;

/// How stations move between epochs. Speeds are distances per epoch;
/// all models confine motion to the trial's [`Bounds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Walk toward a uniformly drawn waypoint at `speed` per epoch; on
    /// arrival pause for `pause_epochs` epochs, then draw the next
    /// waypoint.
    RandomWaypoint {
        /// Distance covered per epoch.
        speed: f64,
        /// Epochs spent stationary at each reached waypoint.
        pause_epochs: u64,
    },
    /// Constant per-station velocity of magnitude `speed` per epoch
    /// (direction drawn uniformly at construction, over the
    /// non-degenerate bounds axes so confined deployments still move at
    /// full speed), reflecting off the bounds.
    Drift {
        /// Distance covered per epoch.
        speed: f64,
    },
    /// Each epoch, every station independently relocates to a fresh
    /// uniform position with probability `fraction`.
    TeleportChurn {
        /// Per-station relocation probability per epoch, in `[0, 1]`.
        fraction: f64,
    },
}

impl MobilityModel {
    /// Checks the model parameters, returning a description of the first
    /// problem: a non-finite or non-positive speed, or a churn fraction
    /// outside `[0, 1]`. Builder surfaces call this to fail fast;
    /// [`Mobility::new`] panics on the same conditions.
    ///
    /// # Errors
    ///
    /// The human-readable description of the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MobilityModel::RandomWaypoint { speed, .. } | MobilityModel::Drift { speed } => {
                if !(speed.is_finite() && speed > 0.0) {
                    return Err(format!(
                        "mobility speed must be positive and finite, got {speed}"
                    ));
                }
            }
            MobilityModel::TeleportChurn { fraction } => {
                if !((0.0..=1.0).contains(&fraction) && fraction.is_finite()) {
                    return Err(format!("churn fraction must lie in [0, 1], got {fraction}"));
                }
            }
        }
        Ok(())
    }
}

/// Axis-aligned box confining station motion (axes beyond the point
/// dimensionality stay `[0, 0]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    lo: [f64; 3],
    hi: [f64; 3],
    axes: usize,
}

impl Bounds {
    /// A box with the given per-axis extents over `axes` axes.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not 1, 2 or 3, or `lo[a] > hi[a]` on a used
    /// axis, or any used bound is non-finite.
    pub fn new(lo: [f64; 3], hi: [f64; 3], axes: usize) -> Self {
        assert!((1..=3).contains(&axes), "axes must be 1, 2 or 3");
        for a in 0..axes {
            assert!(
                lo[a].is_finite() && hi[a].is_finite() && lo[a] <= hi[a],
                "bounds axis {a}: need finite lo <= hi, got {} > {}",
                lo[a],
                hi[a]
            );
        }
        Bounds { lo, hi, axes }
    }

    /// The bounding box of `points` — the default motion domain of a
    /// deployment (degenerate axes are allowed: stations on a line stay
    /// on the line).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (there is no box to confine motion to).
    pub fn of_points<P: MetricPoint>(points: &[P]) -> Self {
        assert!(!points.is_empty(), "bounding box of an empty deployment");
        let mut lo = [0.0f64; 3];
        let mut hi = [0.0f64; 3];
        for a in 0..P::AXES {
            lo[a] = f64::INFINITY;
            hi[a] = f64::NEG_INFINITY;
            for p in points {
                lo[a] = lo[a].min(p.coord(a));
                hi[a] = hi[a].max(p.coord(a));
            }
        }
        Bounds::new(lo, hi, P::AXES)
    }

    /// Lower corner (axes beyond the box dimensionality are `0`).
    pub fn lo(&self) -> [f64; 3] {
        self.lo
    }

    /// Upper corner (axes beyond the box dimensionality are `0`).
    pub fn hi(&self) -> [f64; 3] {
        self.hi
    }

    /// Number of coordinate axes the box spans.
    pub fn axes(&self) -> usize {
        self.axes
    }

    /// A uniform point of the box, in fixed-width coordinates (shared
    /// with the churn process's arrival placement).
    pub(crate) fn sample(&self, rng: &mut SmallRng) -> [f64; 3] {
        let mut c = [0.0f64; 3];
        for (a, slot) in c.iter_mut().enumerate().take(self.axes) {
            *slot = rng.gen_range(self.lo[a]..=self.hi[a]);
        }
        c
    }

    /// Clamps coordinate `v` on axis `a` into the box.
    fn clamp(&self, a: usize, v: f64) -> f64 {
        v.clamp(self.lo[a], self.hi[a])
    }
}

/// Per-trial mobility state: one epoch of motion per [`Mobility::advance`].
///
/// Construct once per trial from the initial deployment and a seed; the
/// trajectory is a pure function of `(model, bounds, points, seed)`.
#[derive(Debug, Clone)]
pub struct Mobility<P: MetricPoint> {
    model: MobilityModel,
    bounds: Bounds,
    rng: SmallRng,
    /// Waypoint targets (random-waypoint only).
    targets: Vec<[f64; 3]>,
    /// Remaining pause epochs per station (random-waypoint only).
    pause: Vec<u64>,
    /// Per-station velocities (drift only).
    vel: Vec<[f64; 3]>,
    _point: PhantomData<fn() -> P>,
}

impl<P: MetricPoint> Mobility<P> {
    /// Mobility state over an explicit motion domain.
    ///
    /// # Panics
    ///
    /// Panics on invalid model parameters, or when the box dimensionality
    /// differs from the point type's.
    pub fn new(model: MobilityModel, bounds: Bounds, points: &[P], seed: u64) -> Self {
        if let Err(e) = model.validate() {
            panic!("{e}");
        }
        assert_eq!(
            bounds.axes(),
            P::AXES,
            "bounds dimensionality must match the point type"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = points.len();
        let mut targets = Vec::new();
        let mut pause = Vec::new();
        let mut vel = Vec::new();
        match model {
            MobilityModel::RandomWaypoint { .. } => {
                targets.reserve(n);
                for _ in 0..n {
                    targets.push(bounds.sample(&mut rng));
                }
                pause.resize(n, 0);
            }
            MobilityModel::Drift { speed } => {
                let usable: Vec<usize> = (0..bounds.axes())
                    .filter(|&a| bounds.hi()[a] > bounds.lo()[a])
                    .collect();
                vel.reserve(n);
                for _ in 0..n {
                    vel.push(draw_velocity(&mut rng, speed, &usable));
                }
            }
            MobilityModel::TeleportChurn { .. } => {}
        }
        Mobility {
            model,
            bounds,
            rng,
            targets,
            pause,
            vel,
            _point: PhantomData,
        }
    }

    /// Mobility state confined to the bounding box of the initial
    /// deployment — the default domain of generated topologies.
    ///
    /// # Panics
    ///
    /// As [`Mobility::new`]; additionally panics on an empty deployment.
    pub fn over_deployment(model: MobilityModel, points: &[P], seed: u64) -> Self {
        Mobility::new(model, Bounds::of_points(points), points, seed)
    }

    /// The model in effect.
    pub fn model(&self) -> MobilityModel {
        self.model
    }

    /// The motion domain.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Grows the per-station motion state to cover `n` stations — the
    /// composition point with population churn, whose spawns append
    /// stations mid-run. New stations draw their waypoint target /
    /// velocity from the mobility RNG at extension time (in index order,
    /// so the stream stays deterministic); existing state is untouched.
    /// No-op when the state already covers `n`.
    pub fn ensure_stations(&mut self, n: usize) {
        match self.model {
            MobilityModel::RandomWaypoint { .. } => {
                while self.targets.len() < n {
                    let t = self.bounds.sample(&mut self.rng);
                    self.targets.push(t);
                    self.pause.push(0);
                }
            }
            MobilityModel::Drift { speed } => {
                if self.vel.len() >= n {
                    return;
                }
                let usable: Vec<usize> = (0..self.bounds.axes())
                    .filter(|&a| self.bounds.hi()[a] > self.bounds.lo()[a])
                    .collect();
                while self.vel.len() < n {
                    let v = draw_velocity(&mut self.rng, speed, &usable);
                    self.vel.push(v);
                }
            }
            MobilityModel::TeleportChurn { .. } => {}
        }
    }

    /// Moves every station by one epoch. Stations are visited in index
    /// order, so the RNG stream — and therefore the whole trajectory — is
    /// deterministic. Performs no heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `points` has a different length than the deployment the
    /// state was built from (grow the state first with
    /// [`Mobility::ensure_stations`] when churn spawned stations).
    pub fn advance(&mut self, points: &mut [P]) {
        match self.model {
            MobilityModel::RandomWaypoint {
                speed,
                pause_epochs,
            } => {
                assert_eq!(points.len(), self.targets.len(), "station count changed");
                for (i, p) in points.iter_mut().enumerate() {
                    if self.pause[i] > 0 {
                        self.pause[i] -= 1;
                        continue;
                    }
                    let mut c = p.coords();
                    let t = self.targets[i];
                    let mut d2 = 0.0;
                    for a in 0..P::AXES {
                        let d = t[a] - c[a];
                        d2 += d * d;
                    }
                    let dist = d2.sqrt();
                    if dist <= speed {
                        // Arrive, pause, and draw the next waypoint now —
                        // one RNG draw per arrival, in station order.
                        c = t;
                        self.pause[i] = pause_epochs;
                        self.targets[i] = self.bounds.sample(&mut self.rng);
                    } else {
                        let step = speed / dist;
                        for a in 0..P::AXES {
                            c[a] += (t[a] - c[a]) * step;
                        }
                    }
                    *p = P::from_coords(c);
                }
            }
            MobilityModel::Drift { .. } => {
                assert_eq!(points.len(), self.vel.len(), "station count changed");
                for (i, p) in points.iter_mut().enumerate() {
                    let mut c = p.coords();
                    for (a, slot) in c.iter_mut().enumerate().take(P::AXES) {
                        let mut v = *slot + self.vel[i][a];
                        // Reflect once off either wall, then clamp (a
                        // degenerate axis or an over-long step cannot
                        // loop forever).
                        if v < self.bounds.lo[a] {
                            v = 2.0 * self.bounds.lo[a] - v;
                            self.vel[i][a] = -self.vel[i][a];
                        } else if v > self.bounds.hi[a] {
                            v = 2.0 * self.bounds.hi[a] - v;
                            self.vel[i][a] = -self.vel[i][a];
                        }
                        *slot = self.bounds.clamp(a, v);
                    }
                    *p = P::from_coords(c);
                }
            }
            MobilityModel::TeleportChurn { fraction } => {
                for p in points.iter_mut() {
                    if self.rng.gen_range(0.0..1.0) < fraction {
                        *p = P::from_coords(self.bounds.sample(&mut self.rng));
                    }
                }
            }
        }
    }
}

/// A velocity of magnitude `speed` with direction uniform on the sphere
/// of the `usable` (non-degenerate) bounds axes, rejection-sampled from
/// the unit cube, deterministically. Degenerate axes carry no velocity —
/// otherwise the wall reflection would cancel that component every epoch
/// and the observed per-station speed would be a random fraction of
/// `speed` (a line deployment could even leave stations immobile). With
/// every axis degenerate (a single-point box) the velocity is zero.
fn draw_velocity(rng: &mut SmallRng, speed: f64, usable: &[usize]) -> [f64; 3] {
    if usable.is_empty() {
        return [0.0; 3];
    }
    loop {
        let mut v = [0.0f64; 3];
        let mut norm2 = 0.0f64;
        for &a in usable {
            v[a] = rng.gen_range(-1.0..=1.0);
            norm2 += v[a] * v[a];
        }
        if norm2 > 1e-12 && norm2 <= 1.0 {
            let scale = speed / norm2.sqrt();
            for slot in &mut v {
                *slot *= scale;
            }
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;
    use sinr_geometry::{Point1, Point2, Point3};

    fn models() -> [MobilityModel; 3] {
        [
            MobilityModel::RandomWaypoint {
                speed: 0.3,
                pause_epochs: 1,
            },
            MobilityModel::Drift { speed: 0.2 },
            MobilityModel::TeleportChurn { fraction: 0.25 },
        ]
    }

    #[test]
    fn trajectories_are_seed_deterministic() {
        for model in models() {
            let base = uniform::square(40, 3.0, 9);
            let run = |seed: u64| {
                let mut pts = base.clone();
                let mut mob = Mobility::over_deployment(model, &pts, seed);
                for _ in 0..12 {
                    mob.advance(&mut pts);
                }
                pts
            };
            assert_eq!(run(5), run(5), "{model:?}");
            assert_ne!(run(5), run(6), "{model:?}");
        }
    }

    #[test]
    fn motion_stays_in_bounds() {
        for model in models() {
            let mut pts = uniform::square(60, 2.5, 3);
            let bounds = Bounds::of_points(&pts);
            let mut mob = Mobility::new(model, bounds, &pts, 11);
            for epoch in 0..40 {
                mob.advance(&mut pts);
                for (i, p) in pts.iter().enumerate() {
                    for a in 0..2 {
                        assert!(
                            (bounds.lo()[a] - 1e-12..=bounds.hi()[a] + 1e-12).contains(&p.coord(a)),
                            "{model:?}: station {i} escaped on axis {a} at epoch {epoch}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waypoint_moves_at_most_speed_per_epoch() {
        let mut pts = uniform::square(30, 4.0, 1);
        let speed = 0.15;
        let mut mob = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed,
                pause_epochs: 0,
            },
            &pts,
            2,
        );
        for _ in 0..25 {
            let before = pts.clone();
            mob.advance(&mut pts);
            for (b, a) in before.iter().zip(&pts) {
                assert!(b.distance(a) <= speed + 1e-12);
            }
        }
    }

    #[test]
    fn drift_preserves_speed_between_reflections() {
        let mut pts = uniform::square(20, 5.0, 4);
        let speed = 0.25;
        let mut mob = Mobility::over_deployment(MobilityModel::Drift { speed }, &pts, 8);
        let before = pts.clone();
        mob.advance(&mut pts);
        let moved = before
            .iter()
            .zip(&pts)
            .filter(|(b, a)| (b.distance(a) - speed).abs() < 1e-9)
            .count();
        // Most stations move exactly `speed` (the rest reflected/clamped).
        assert!(moved >= 15, "only {moved}/20 moved the full step");
    }

    #[test]
    fn zero_churn_freezes_everyone_full_churn_moves_everyone() {
        let base = uniform::square(50, 3.0, 6);
        let mut frozen = base.clone();
        Mobility::over_deployment(MobilityModel::TeleportChurn { fraction: 0.0 }, &frozen, 1)
            .advance(&mut frozen);
        assert_eq!(frozen, base);
        let mut churned = base.clone();
        Mobility::over_deployment(MobilityModel::TeleportChurn { fraction: 1.0 }, &churned, 1)
            .advance(&mut churned);
        let moved = base.iter().zip(&churned).filter(|(a, b)| a != b).count();
        assert_eq!(moved, 50, "full churn relocates every station");
    }

    #[test]
    fn works_in_one_and_three_dimensions() {
        let mut pts1: Vec<Point1> = (0..12).map(|i| Point1::new(i as f64 * 0.4)).collect();
        let mut mob1 = Mobility::over_deployment(MobilityModel::Drift { speed: 0.1 }, &pts1, 3);
        mob1.advance(&mut pts1);
        assert!(pts1.iter().all(|p| (0.0..=4.4).contains(&p.x)));

        let mut pts3: Vec<Point3> = (0..12)
            .map(|i| Point3::new(i as f64 * 0.3, (i % 3) as f64, (i % 2) as f64))
            .collect();
        let mut mob3 = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.2,
                pause_epochs: 0,
            },
            &pts3,
            3,
        );
        mob3.advance(&mut pts3);
        assert_eq!(pts3.len(), 12);
    }

    #[test]
    fn degenerate_axis_keeps_line_deployments_on_the_line() {
        // All stations share y = 1.0; the bounding box is degenerate on
        // that axis, so every model keeps them there.
        for model in models() {
            let mut pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 * 0.4, 1.0)).collect();
            let mut mob = Mobility::over_deployment(model, &pts, 7);
            for _ in 0..10 {
                mob.advance(&mut pts);
            }
            assert!(
                pts.iter().all(|p| p.y == 1.0),
                "{model:?} left the line: {pts:?}"
            );
        }
    }

    #[test]
    fn drift_on_a_line_moves_at_full_speed_along_it() {
        // The bounding box is degenerate in y, so the whole velocity
        // budget must land on x — no station may be diluted to a
        // fraction of `speed`.
        let mut pts: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64 * 0.5, 2.0)).collect();
        let speed = 0.2;
        let before = pts.clone();
        let mut mob = Mobility::over_deployment(MobilityModel::Drift { speed }, &pts, 17);
        mob.advance(&mut pts);
        for (i, (b, a)) in before.iter().zip(&pts).enumerate() {
            assert_eq!(a.y, 2.0, "station {i} left the line");
            let moved = b.distance(a);
            // Full step unless reflected off an end of the box (then the
            // travelled distance folds, but never to zero here).
            assert!(
                (moved - speed).abs() < 1e-9 || moved > 0.0,
                "station {i} moved {moved}"
            );
            assert!(
                (b.x - a.x).abs() <= speed + 1e-12,
                "station {i} overshot the per-epoch speed"
            );
        }
        let full_steps = before
            .iter()
            .zip(&pts)
            .filter(|(b, a)| (b.distance(a) - speed).abs() < 1e-9)
            .count();
        assert!(full_steps >= 18, "only {full_steps}/20 moved at full speed");
    }

    #[test]
    fn ensure_stations_extends_state_for_spawned_stations() {
        for model in models() {
            let mut pts = uniform::square(20, 3.0, 5);
            let mut mob = Mobility::over_deployment(model, &pts, 13);
            mob.advance(&mut pts);
            // Churn spawns five stations; the mobility state grows to
            // match and keeps advancing all of them in bounds.
            for i in 0..5 {
                pts.push(Point2::new(0.3 * i as f64, 0.5));
            }
            mob.ensure_stations(pts.len());
            mob.ensure_stations(pts.len()); // idempotent
            for _ in 0..10 {
                mob.advance(&mut pts);
            }
            assert_eq!(pts.len(), 25);
            assert!(
                pts.iter().all(|p| (0.0..=3.0).contains(&p.x)),
                "{model:?} left the box"
            );
        }
    }

    #[test]
    fn spawn_mid_run_leaves_existing_trajectories_byte_identical() {
        // Regression guard on `ensure_stations`: growing the motion
        // state for churn spawns must only *append* — never touch the
        // pre-existing stations' targets, pauses or velocities. Each
        // model is pinned at the strength it actually guarantees:
        //
        // * Drift: `advance` draws no randomness, so old stations'
        //   entire future trajectory is byte-identical to the
        //   spawn-free run of the same seed;
        // * RandomWaypoint: identical until an old station arrives and
        //   redraws its target (the shared stream has advanced) — the
        //   horizon below is too short for any arrival;
        // * TeleportChurn: stations draw in index order each epoch, so
        //   the first post-spawn epoch is byte-identical.
        let drift = MobilityModel::Drift { speed: 0.2 };
        let waypoint = MobilityModel::RandomWaypoint {
            speed: 0.05,
            pause_epochs: 0,
        };
        let teleport = MobilityModel::TeleportChurn { fraction: 0.4 };
        for (model, epochs_after_spawn) in [(drift, 10usize), (waypoint, 5), (teleport, 1)] {
            let base = uniform::square(20, 3.0, 5);

            // Reference timeline: no spawn ever happens.
            let mut ref_pts = base.clone();
            let mut ref_mob = Mobility::over_deployment(model, &ref_pts, 13);
            ref_mob.advance(&mut ref_pts);
            let mut spawned_pts = ref_pts.clone();

            // Spawned timeline: same seed, five stations appear mid-run.
            let mut mob = Mobility::over_deployment(model, &base, 13);
            let mut warm = base.clone();
            mob.advance(&mut warm);
            assert_eq!(warm, ref_pts, "{model:?}: timelines split before the spawn");
            for i in 0..5 {
                spawned_pts.push(Point2::new(0.3 * i as f64, 0.5));
            }
            mob.ensure_stations(spawned_pts.len());

            for epoch in 0..epochs_after_spawn {
                ref_mob.advance(&mut ref_pts);
                mob.advance(&mut spawned_pts);
                for (i, (r, s)) in ref_pts.iter().zip(&spawned_pts).enumerate() {
                    assert_eq!(
                        (r.x.to_bits(), r.y.to_bits()),
                        (s.x.to_bits(), s.y.to_bits()),
                        "{model:?} epoch {epoch}: spawn perturbed station {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn validate_reports_the_bad_parameter() {
        assert!(MobilityModel::Drift { speed: 0.2 }.validate().is_ok());
        let err = MobilityModel::Drift { speed: f64::NAN }
            .validate()
            .unwrap_err();
        assert!(err.contains("speed"), "{err}");
        let err = MobilityModel::TeleportChurn { fraction: 2.0 }
            .validate()
            .unwrap_err();
        assert!(err.contains("fraction"), "{err}");
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let pts = vec![Point2::origin(), Point2::new(1.0, 1.0)];
        let _ = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.0,
                pause_epochs: 0,
            },
            &pts,
            0,
        );
    }

    #[test]
    #[should_panic]
    fn churn_fraction_above_one_rejected() {
        let pts = vec![Point2::origin(), Point2::new(1.0, 1.0)];
        let _ = Mobility::over_deployment(MobilityModel::TeleportChurn { fraction: 1.5 }, &pts, 0);
    }

    #[test]
    #[should_panic]
    fn empty_deployment_rejected() {
        let pts: Vec<Point2> = Vec::new();
        let _ = Mobility::over_deployment(MobilityModel::Drift { speed: 0.1 }, &pts, 0);
    }
}
