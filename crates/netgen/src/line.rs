//! Line networks, including the paper's adversarial footnote-2 construction.
//!
//! The paper (footnote 2, Section 1.3 and Section 3.1) uses stations on a
//! line with geometrically shrinking gaps — `dist(x_i, x_{i+1}) = 1/2^i` —
//! as the canonical network whose granularity `R_s` is **exponential in n**
//! while the communication graph stays a simple path-like structure. Such
//! networks separate the paper's algorithm (round complexity independent of
//! `R_s`) from Daum et al.'s baseline (polylog in `R_s`).

use sinr_geometry::{Point1, Point2};

/// `n` stations on a line with constant gap (embedded in the plane, y = 0).
///
/// # Panics
///
/// Panics if `gap` is not positive and finite.
pub fn uniform_line(n: usize, gap: f64) -> Vec<Point2> {
    assert!(
        gap.is_finite() && gap > 0.0,
        "gap must be positive, got {gap}"
    );
    (0..n).map(|i| Point2::new(i as f64 * gap, 0.0)).collect()
}

/// `n` stations on a line with gaps shrinking geometrically from
/// `first_gap` by `ratio` per hop, floored at `min_gap`
/// (the footnote-2 construction `dist(x_i, x_{i+1}) = 1/2^i` corresponds to
/// `ratio = 0.5`).
///
/// Granularity grows like `ratio^{-(n-2)}` until the floor engages.
///
/// # Panics
///
/// Panics unless `0 < ratio <= 1`, `0 < min_gap <= first_gap`, both finite.
pub fn halving_line(n: usize, first_gap: f64, ratio: f64, min_gap: f64) -> Vec<Point2> {
    assert!(
        first_gap.is_finite() && first_gap > 0.0,
        "first_gap must be positive, got {first_gap}"
    );
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "ratio must be in (0,1], got {ratio}"
    );
    assert!(
        min_gap > 0.0 && min_gap <= first_gap,
        "min_gap must be in (0, first_gap], got {min_gap}"
    );
    let mut pts = Vec::with_capacity(n);
    let mut x = 0.0;
    let mut gap = first_gap;
    for _ in 0..n {
        pts.push(Point2::new(x, 0.0));
        x += gap;
        gap = (gap * ratio).max(min_gap);
    }
    pts
}

/// `n` stations on a line whose consecutive gaps interpolate geometrically
/// from `max_gap` down to `max_gap / rs_target`, so the resulting network
/// has granularity at least `rs_target` (longer chords among the packed tail
/// can only increase it). Gaps below `min_gap` are clamped, which caps the
/// achievable granularity near `max_gap / min_gap`.
///
/// # Panics
///
/// Panics if `n < 2`, or `rs_target < 1`, or `max_gap`/`min_gap` are not
/// positive finite with `min_gap <= max_gap`.
pub fn granularity_line(n: usize, max_gap: f64, rs_target: f64, min_gap: f64) -> Vec<Point2> {
    assert!(n >= 2, "need at least two stations, got {n}");
    assert!(rs_target >= 1.0, "rs_target must be >= 1, got {rs_target}");
    assert!(
        max_gap.is_finite() && max_gap > 0.0 && min_gap > 0.0 && min_gap <= max_gap,
        "gaps must satisfy 0 < min_gap <= max_gap"
    );
    let gaps = n - 1;
    let mut pts = Vec::with_capacity(n);
    let mut x = 0.0;
    pts.push(Point2::new(0.0, 0.0));
    for i in 0..gaps {
        // Exponent runs 0 -> 1 across the gaps.
        let t = if gaps == 1 {
            1.0
        } else {
            i as f64 / (gaps - 1) as f64
        };
        let gap = (max_gap * rs_target.powf(-t)).max(min_gap);
        x += gap;
        pts.push(Point2::new(x, 0.0));
    }
    pts
}

/// A line with **decoupled diameter and granularity**: `d_hops` leading
/// gaps of exactly `max_gap` (a sparse spine that fixes the hop count)
/// followed by a geometric tail of `n − 1 − d_hops` gaps interpolating from
/// `max_gap/2` down to `max_gap/(2·rs_target)` (a packed cluster that fixes
/// the granularity). Sweeping `rs_target` at fixed `d_hops` and `n` isolates
/// the granularity dependence of an algorithm — the E6 experiment.
///
/// # Panics
///
/// Panics if `n < d_hops + 2`, or parameters are out of range as in
/// [`granularity_line`].
pub fn granularity_line_fixed_d(
    n: usize,
    max_gap: f64,
    rs_target: f64,
    d_hops: usize,
    min_gap: f64,
) -> Vec<Point2> {
    assert!(
        n >= d_hops + 2,
        "need n >= d_hops + 2 (n = {n}, d_hops = {d_hops})"
    );
    assert!(rs_target >= 1.0, "rs_target must be >= 1, got {rs_target}");
    assert!(
        max_gap.is_finite() && max_gap > 0.0 && min_gap > 0.0 && min_gap <= max_gap,
        "gaps must satisfy 0 < min_gap <= max_gap"
    );
    let mut pts = Vec::with_capacity(n);
    let mut x = 0.0;
    pts.push(Point2::new(0.0, 0.0));
    for _ in 0..d_hops {
        x += max_gap;
        pts.push(Point2::new(x, 0.0));
    }
    let tail_gaps = n - 1 - d_hops;
    for i in 0..tail_gaps {
        let t = if tail_gaps == 1 {
            1.0
        } else {
            i as f64 / (tail_gaps - 1) as f64
        };
        let gap = (0.5 * max_gap * rs_target.powf(-t)).max(min_gap);
        x += gap;
        pts.push(Point2::new(x, 0.0));
    }
    pts
}

/// One-dimensional (γ = 1) variant of [`halving_line`] for experiments in
/// true line metrics.
pub fn halving_line_1d(n: usize, first_gap: f64, ratio: f64, min_gap: f64) -> Vec<Point1> {
    halving_line(n, first_gap, ratio, min_gap)
        .into_iter()
        .map(|p| Point1::new(p.x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::MetricPoint;
    use sinr_phy::{CommGraph, SinrParams};

    #[test]
    fn uniform_line_gaps() {
        let pts = uniform_line(5, 0.4);
        for w in pts.windows(2) {
            assert!((w[0].distance(&w[1]) - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn halving_line_matches_footnote_two() {
        let pts = halving_line(5, 0.5, 0.5, 1e-9);
        let gaps: Vec<f64> = pts.windows(2).map(|w| w[0].distance(&w[1])).collect();
        assert!((gaps[0] - 0.5).abs() < 1e-12);
        assert!((gaps[1] - 0.25).abs() < 1e-12);
        assert!((gaps[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn halving_line_floors_at_min_gap() {
        let pts = halving_line(40, 0.5, 0.5, 1e-4);
        let gaps: Vec<f64> = pts.windows(2).map(|w| w[0].distance(&w[1])).collect();
        assert!(gaps.iter().all(|&g| g >= 1e-4 - 1e-15));
        assert!((gaps.last().unwrap() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn granularity_line_hits_target() {
        let params = SinrParams::default_plane();
        let max_gap = params.comm_radius(); // 0.5
        for rs in [4.0, 64.0, 1024.0] {
            let pts = granularity_line(32, max_gap, rs, 1e-8);
            let g = CommGraph::build(&pts, params.comm_radius());
            assert!(g.is_connected(), "rs={rs}");
            let got = g.granularity(&pts).unwrap();
            assert!(got >= rs * 0.99, "target {rs}, got {got}");
        }
    }

    #[test]
    fn granularity_line_connected_path() {
        // All gaps <= max_gap = comm radius, so the path exists.
        let params = SinrParams::default_plane();
        let pts = granularity_line(64, params.comm_radius(), 1e6, 1e-8);
        let g = CommGraph::build(&pts, params.comm_radius());
        assert!(g.is_connected());
    }

    #[test]
    fn exponential_granularity_of_halving_line() {
        let params = SinrParams::default_plane();
        let pts = halving_line(20, 0.5, 0.5, 1e-9);
        let g = CommGraph::build(&pts, params.comm_radius());
        let rs = g.granularity(&pts).unwrap();
        // 19 halvings: granularity ~ 2^18 or more.
        assert!(rs > 1e5, "rs = {rs}");
    }

    #[test]
    fn fixed_d_line_decouples_diameter_from_granularity() {
        let params = SinrParams::default_plane();
        let max_gap = params.comm_radius();
        let mut diameters = Vec::new();
        for rs in [4.0, 1024.0, 1e6] {
            let pts = granularity_line_fixed_d(48, max_gap, rs, 12, 2e-9);
            let g = CommGraph::build(&pts, params.comm_radius());
            assert!(g.is_connected(), "rs={rs}");
            assert!(g.granularity(&pts).unwrap() >= rs * 0.9, "rs={rs}");
            diameters.push(g.diameter_exact().unwrap());
        }
        // The diameter may drift a little (a low-granularity tail cannot
        // pack into one ball), but across six orders of magnitude of R_s it
        // must stay within a small factor — E6 additionally normalises
        // per hop.
        let min = *diameters.iter().min().unwrap() as f64;
        let max = *diameters.iter().max().unwrap() as f64;
        assert!(max / min <= 2.5, "diameters varied too much: {diameters:?}");
    }

    #[test]
    #[should_panic]
    fn fixed_d_line_rejects_short_n() {
        let _ = granularity_line_fixed_d(5, 0.5, 4.0, 12, 1e-9);
    }

    #[test]
    fn one_dimensional_variant_matches() {
        let p2 = halving_line(6, 0.5, 0.5, 1e-9);
        let p1 = halving_line_1d(6, 0.5, 0.5, 1e-9);
        for (a, b) in p2.iter().zip(&p1) {
            assert_eq!(a.x, b.x);
        }
    }

    #[test]
    #[should_panic]
    fn granularity_line_rejects_tiny_n() {
        let _ = granularity_line(1, 0.5, 4.0, 1e-9);
    }

    #[test]
    #[should_panic]
    fn halving_rejects_ratio_above_one() {
        let _ = halving_line(4, 0.5, 1.5, 1e-9);
    }
}
