//! Topology generators for SINR wireless-network experiments.
//!
//! Each generator produces station positions ([`sinr_geometry::Point2`] or
//! [`sinr_geometry::Point1`]) realising a network family used by the
//! reproduction experiments:
//!
//! * [`uniform`] — uniform random deployments in squares and disks (the
//!   "average case");
//! * [`line`] — line networks, including the paper's footnote-2 adversarial
//!   construction with geometrically shrinking gaps and therefore
//!   **exponential granularity** `R_s`;
//! * [`cluster`] — Gaussian clusters and *chains of clusters*, which give
//!   precise control over the communication-graph diameter `D` while
//!   keeping density high inside clusters (the dense–sparse hybrids the
//!   coloring must survive);
//! * [`grid`] — regular lattices;
//! * [`shapes`] — rings, bridge corridors and two-tier density contrasts;
//! * [`perturb`] — jitter and minimum-separation repair;
//! * [`validate`] — topology reports (connectivity, diameter, Δ, `R_s`).
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use sinr_netgen::{uniform, validate};
//! use sinr_phy::SinrParams;
//!
//! let params = SinrParams::default_plane();
//! let pts = uniform::connected_square(120, 3.0, &params, 42).expect("dense enough");
//! let report = validate::report(&pts, &params);
//! assert!(report.connected);
//! assert_eq!(report.n, 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod grid;
pub mod line;
pub mod perturb;
pub mod shapes;
pub mod uniform;
pub mod validate;

pub use validate::{report, TopologyReport};
