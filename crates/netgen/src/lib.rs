//! Topology generators for SINR wireless-network experiments.
//!
//! Each generator produces station positions ([`sinr_geometry::Point2`] or
//! [`sinr_geometry::Point1`]) realising a network family used by the
//! reproduction experiments:
//!
//! * [`uniform`] — uniform random deployments in squares and disks (the
//!   "average case");
//! * [`line`] — line networks, including the paper's footnote-2 adversarial
//!   construction with geometrically shrinking gaps and therefore
//!   **exponential granularity** `R_s`;
//! * [`cluster`] — Gaussian clusters and *chains of clusters*, which give
//!   precise control over the communication-graph diameter `D` while
//!   keeping density high inside clusters (the dense–sparse hybrids the
//!   coloring must survive);
//! * [`grid`] — regular lattices;
//! * [`shapes`] — rings, bridge corridors and two-tier density contrasts;
//! * [`perturb`] — jitter and minimum-separation repair;
//! * [`validate`] — topology reports (connectivity, diameter, Δ, `R_s`);
//! * [`mobility`] — dynamic topologies: random-waypoint, drift and
//!   teleport-churn motion between epochs (see below);
//! * [`churn`] — dynamic *populations*: seed-deterministic station
//!   lifecycles (Poisson arrivals, geometric lifetimes,
//!   rejoin-at-random-position) emitting one `ChurnDelta` per epoch
//!   (see below).
//!
//! All generators are deterministic given a seed.
//!
//! # Mobility
//!
//! Static generators produce the epoch-0 deployment; the [`mobility`]
//! module then moves it between epochs. A [`mobility::Mobility`] value
//! owns all per-station motion state (so trajectories replay bit-for-bit
//! from a seed) and advances one epoch per call, confined to the
//! bounding box of the initial deployment by default — compose it with
//! any generator in this crate:
//!
//! ```
//! use sinr_netgen::mobility::{Mobility, MobilityModel};
//! use sinr_netgen::uniform;
//!
//! // 120 stations uniform in a 3×3 square, then 5 epochs of random
//! // waypoint motion at 0.2 units per epoch.
//! let mut pts = uniform::square(120, 3.0, 42);
//! let model = MobilityModel::RandomWaypoint { speed: 0.2, pause_epochs: 0 };
//! let mut mob = Mobility::over_deployment(model, &pts, 42);
//! for _epoch in 0..5 {
//!     mob.advance(&mut pts);
//!     assert!(pts.iter().all(|p| (0.0..=3.0).contains(&p.x)));
//! }
//! ```
//!
//! Simulations plug the same models in declaratively through
//! `sinr_sim::MobilitySpec` / `Scenario::mobility`, which rebuilds the
//! spatial index in place at every epoch boundary.
//!
//! # Churn
//!
//! Where mobility moves a fixed population, [`churn`] changes the
//! population itself: each epoch a [`churn::ChurnProcess`] kills live
//! stations (geometric lifetimes), rejoins tombstoned ones at fresh
//! uniform positions, and spawns brand-new stations once no tombstones
//! remain (Poisson arrivals). The emitted deltas are exactly what
//! `sinr_phy::Network::apply_churn` consumes, and the whole schedule
//! replays from its seed:
//!
//! ```
//! use sinr_netgen::churn::{ChurnModel, ChurnProcess};
//! use sinr_netgen::uniform;
//! use sinr_phy::{ChurnDelta, Network, SinrParams};
//!
//! let pts = uniform::connected_square(80, 2.0, &SinrParams::default_plane(), 11).unwrap();
//! let mut net = Network::new(pts, SinrParams::default_plane()).unwrap();
//! let model = ChurnModel { arrival_rate: 2.0, mean_lifetime: 8.0 };
//! let mut churn = ChurnProcess::over_deployment(model, net.points(), 42);
//! let mut delta = ChurnDelta::new();
//! for _epoch in 0..5 {
//!     churn.step_into(net.alive(), &mut delta);
//!     net.apply_churn(&delta); // index-stable tombstones, in-place rebuilds
//! }
//! assert_eq!(net.alive().len(), net.len());
//! assert!(net.live_count() <= net.len());
//! ```
//!
//! Simulations plug churn in declaratively through `sinr_sim::ChurnSpec`
//! / `Scenario::churn`, which seeds the process from the run seed on its
//! own stream and composes it with mobility and parallel sweeps.
//!
//! # Example
//!
//! ```
//! use sinr_netgen::{uniform, validate};
//! use sinr_phy::SinrParams;
//!
//! let params = SinrParams::default_plane();
//! let pts = uniform::connected_square(120, 3.0, &params, 42).expect("dense enough");
//! let report = validate::report(&pts, &params);
//! assert!(report.connected);
//! assert_eq!(report.n, 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cluster;
pub mod grid;
pub mod line;
pub mod mobility;
pub mod perturb;
pub mod shapes;
pub mod uniform;
pub mod validate;

pub use validate::{report, TopologyReport};
