//! Topology generators for SINR wireless-network experiments.
//!
//! Each generator produces station positions ([`sinr_geometry::Point2`] or
//! [`sinr_geometry::Point1`]) realising a network family used by the
//! reproduction experiments:
//!
//! * [`uniform`] — uniform random deployments in squares and disks (the
//!   "average case");
//! * [`line`] — line networks, including the paper's footnote-2 adversarial
//!   construction with geometrically shrinking gaps and therefore
//!   **exponential granularity** `R_s`;
//! * [`cluster`] — Gaussian clusters and *chains of clusters*, which give
//!   precise control over the communication-graph diameter `D` while
//!   keeping density high inside clusters (the dense–sparse hybrids the
//!   coloring must survive);
//! * [`grid`] — regular lattices;
//! * [`shapes`] — rings, bridge corridors and two-tier density contrasts;
//! * [`perturb`] — jitter and minimum-separation repair;
//! * [`validate`] — topology reports (connectivity, diameter, Δ, `R_s`);
//! * [`mobility`] — dynamic topologies: random-waypoint, drift and
//!   teleport-churn motion between epochs (see below).
//!
//! All generators are deterministic given a seed.
//!
//! # Mobility
//!
//! Static generators produce the epoch-0 deployment; the [`mobility`]
//! module then moves it between epochs. A [`mobility::Mobility`] value
//! owns all per-station motion state (so trajectories replay bit-for-bit
//! from a seed) and advances one epoch per call, confined to the
//! bounding box of the initial deployment by default — compose it with
//! any generator in this crate:
//!
//! ```
//! use sinr_netgen::mobility::{Mobility, MobilityModel};
//! use sinr_netgen::uniform;
//!
//! // 120 stations uniform in a 3×3 square, then 5 epochs of random
//! // waypoint motion at 0.2 units per epoch.
//! let mut pts = uniform::square(120, 3.0, 42);
//! let model = MobilityModel::RandomWaypoint { speed: 0.2, pause_epochs: 0 };
//! let mut mob = Mobility::over_deployment(model, &pts, 42);
//! for _epoch in 0..5 {
//!     mob.advance(&mut pts);
//!     assert!(pts.iter().all(|p| (0.0..=3.0).contains(&p.x)));
//! }
//! ```
//!
//! Simulations plug the same models in declaratively through
//! `sinr_sim::MobilitySpec` / `Scenario::mobility`, which rebuilds the
//! spatial index in place at every epoch boundary.
//!
//! # Example
//!
//! ```
//! use sinr_netgen::{uniform, validate};
//! use sinr_phy::SinrParams;
//!
//! let params = SinrParams::default_plane();
//! let pts = uniform::connected_square(120, 3.0, &params, 42).expect("dense enough");
//! let report = validate::report(&pts, &params);
//! assert!(report.connected);
//! assert_eq!(report.n, 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod grid;
pub mod line;
pub mod mobility;
pub mod perturb;
pub mod shapes;
pub mod uniform;
pub mod validate;

pub use validate::{report, TopologyReport};
