//! `sinr-wire`: a dependency-free, canonical JSON-subset wire format.
//!
//! The serialization seam of the workspace (scenario submissions, run
//! reports, streamed round traces) in the same spirit as the in-tree
//! `crates/rand` shim: the container has no registry, so the format is
//! implemented here rather than pulled in as `serde_json`.
//!
//! # Canonical form
//!
//! [`Value::encode`] emits a *canonical* byte string: no whitespace,
//! object fields in the order the encoder pushed them, integers in plain
//! decimal, floats through Rust's shortest round-trip `Display`. Two
//! properties follow, and the golden tests in
//! `crates/core/src/sim/wire.rs` and `tests/roundtrip.rs` pin them:
//!
//! 1. **encode → parse → encode is byte-identical** for every value this
//!    crate can produce (the server's determinism contract extends over
//!    the wire: byte-identical reports stay byte-identical as text).
//! 2. Numbers survive exactly: `u64` values (seeds!) round-trip through
//!    [`Value::UInt`] without passing through `f64`, and finite floats
//!    round-trip bit-exactly via shortest-display parsing.
//!
//! Note that canonical-form identity is a *byte* property, not a
//! [`Value`]-tree property: `Float(1.0)` encodes as `1`, which parses
//! back as `UInt(1)`. Schema-directed decoders therefore read numbers
//! through the coercing accessors ([`Value::as_f64`] accepts any numeric
//! variant) rather than matching variants directly.
//!
//! Non-finite floats have no JSON representation; [`Value::encode`]
//! writes them as `null` (the codecs upstream never produce them).
//!
//! # Grammar
//!
//! The accepted grammar is standard JSON restricted to UTF-8 input:
//! `null`, `true`/`false`, numbers (with optional fraction/exponent),
//! strings with `\" \\ \/ \b \f \n \r \t \uXXXX` escapes (surrogate
//! pairs supported), arrays, and objects. Parsing is recursive descent
//! with an explicit depth limit of [`MAX_DEPTH`] so untrusted input
//! cannot overflow the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 64;

/// A JSON value with exact integer variants.
///
/// Unsigned and signed integers are kept apart from floats so 64-bit
/// seeds and counters survive the wire without rounding through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no sign, no fraction/exponent).
    UInt(u64),
    /// A negative integer literal (no fraction/exponent).
    Int(i64),
    /// A number literal carrying a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered field list (the canonical encoder writes the
    /// fields in exactly this order; no hashing anywhere).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Canonical encoding: no whitespace, fields in stored order.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// As [`Value::encode`], appending to an existing buffer.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let mut buf = itoa_u64(*u);
                out.push_str(buf.as_str_mut());
            }
            Value::Int(i) => {
                if *i < 0 {
                    out.push('-');
                    let mut buf = itoa_u64(i.unsigned_abs());
                    out.push_str(buf.as_str_mut());
                } else {
                    let mut buf = itoa_u64(*i as u64);
                    out.push_str(buf.as_str_mut());
                }
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trip representation; parses back to
                    // the identical f64 (or to UInt/Int when the value
                    // happens to be integral — the coercing accessors
                    // absorb that).
                    use fmt::Write as _;
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => encode_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(key, out);
                    out.push(':');
                    val.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input`; trailing content (other than
    /// whitespace) is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after value"));
        }
        Ok(v)
    }

    /// The value as `u64`, coercing from any integer variant.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, coercing from any integer variant.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as `i64`, coercing from any integer variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64`, coercing from any numeric variant (canonical
    /// encoding strips the fraction from integral floats, so decoders of
    /// float-typed fields must accept integer literals).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match; `None` for non-objects
    /// and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Stack buffer for u64 decimal formatting (avoids a `format!` heap
/// allocation on the hot encode path).
struct Itoa {
    buf: [u8; 20],
    start: usize,
}

impl Itoa {
    fn as_str_mut(&mut self) -> &str {
        // Digits are ASCII by construction.
        std::str::from_utf8(&self.buf[self.start..]).unwrap_or("0")
    }
}

fn itoa_u64(mut v: u64) -> Itoa {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    Itoa { buf, start: i }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any byte run inside it is
                // valid UTF-8 as long as it starts and ends on char
                // boundaries — '"' and '\\' are ASCII, so it does.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digit"));
        }
        // Leading zeros are rejected (canonical form has none).
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digit in exponent"));
            }
        }
        // The slice is ASCII digits/sign/dot/exponent by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let x: f64 = text.parse().map_err(|_| self.err("invalid float"))?;
            Ok(Value::Float(x))
        } else if negative {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Magnitude overflow: fall back to float like JSON does.
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Float(x))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Float(x))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> String {
        let text = v.encode();
        let back = Value::parse(&text).expect("canonical text parses");
        assert_eq!(back.encode(), text, "encode->parse->encode not stable");
        text
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip(&Value::Null), "null");
        assert_eq!(roundtrip(&Value::Bool(true)), "true");
        assert_eq!(roundtrip(&Value::Bool(false)), "false");
        assert_eq!(roundtrip(&Value::UInt(0)), "0");
        assert_eq!(roundtrip(&Value::UInt(u64::MAX)), "18446744073709551615");
        assert_eq!(roundtrip(&Value::Int(-42)), "-42");
        assert_eq!(roundtrip(&Value::Int(i64::MIN)), "-9223372036854775808");
        assert_eq!(
            roundtrip(&Value::Str("hi \"there\"\n".into())),
            r#""hi \"there\"\n""#
        );
    }

    #[test]
    fn u64_exactness() {
        // A value f64 cannot represent: must survive via UInt.
        let v = Value::UInt(u64::MAX - 1);
        let back = Value::parse(&v.encode()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX - 1));
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for x in [
            0.5,
            -1.25e-7,
            std::f64::consts::PI,
            1e300,
            f64::MIN_POSITIVE,
        ] {
            let text = Value::Float(x).encode();
            let back = Value::parse(&text).unwrap();
            let y = back.as_f64().unwrap();
            assert_eq!(y.to_bits(), x.to_bits(), "float {x} corrupted to {y}");
        }
        // Integral floats canonicalise to integer literals — the accessor
        // coerces back.
        let text = Value::Float(2.0).encode();
        assert_eq!(text, "2");
        assert_eq!(Value::parse(&text).unwrap().as_f64(), Some(2.0));
        // Non-finite floats degrade to null.
        assert_eq!(Value::Float(f64::NAN).encode(), "null");
        assert_eq!(Value::Float(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn containers_roundtrip() {
        let v = Value::Object(vec![
            ("seed".into(), Value::UInt(2014)),
            ("name".into(), Value::str("nos-broadcast")),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Null, Value::Bool(false)]),
            ),
            (
                "nested".into(),
                Value::Object(vec![("k".into(), Value::Float(0.25))]),
            ),
        ]);
        let text = roundtrip(&v);
        assert_eq!(
            text,
            r#"{"seed":2014,"name":"nos-broadcast","xs":[1,null,false],"nested":{"k":0.25}}"#
        );
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.get("seed").and_then(Value::as_u64), Some(2014));
        assert_eq!(
            back.get("name").and_then(Value::as_str),
            Some("nos-broadcast")
        );
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn whitespace_and_escapes_accepted() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\u00e9\\ud83d\\ude00\" } ")
            .unwrap();
        assert_eq!(v.get("b").and_then(Value::as_str), Some("Aé😀"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01",
            "1.",
            "1e",
            "\"abc",
            "\"\\q\"",
            "{\"a\":1,}",
            "[1] x",
            "\"\\ud800\"",
            "nul",
            "-",
        ] {
            assert!(
                Value::parse(bad).is_err(),
                "accepted malformed input {bad:?}"
            );
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Value::parse(&ok).is_ok());
    }
}
