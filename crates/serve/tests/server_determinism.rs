//! The server-side determinism contract: reports read off the socket
//! are byte-identical to in-process runs, for any number of concurrent
//! clients and subscribers.

use std::thread;

use sinr_core::sim::{ProtocolSpec, ScenarioSpec, TopologySpec};
use sinr_serve::{reference_report, request_shutdown, Client, Server};

fn test_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        TopologySpec::UniformSquare { n: 30, side: 2.0 },
        ProtocolSpec::ReFloodBroadcast {
            source: 0,
            p: 0.25,
            burst_rounds: 24,
        },
    );
    spec.budget = Some(300);
    spec.record = true;
    spec
}

#[test]
fn concurrent_clients_get_byte_identical_reports() {
    let server = Server::bind("127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    let spec = test_spec();
    let seeds: [u64; 2] = [11, 2014];
    let reference: Vec<String> = seeds
        .iter()
        .map(|&s| reference_report(&spec, s).expect("in-process run"))
        .collect();

    // Three clients submit the same spec concurrently; trials from all
    // three jobs interleave on the two shared arena-reusing workers.
    thread::scope(|scope| {
        for client_idx in 0..3 {
            let spec = &spec;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Every other client declines round streaming: report-only
                // subscribers must see identical bytes too.
                let stream = client_idx % 2 == 0;
                client.submit(spec, &seeds, stream).expect("submit");
                let job = client.expect_accepted().expect("accepted");
                let result = client.collect_job(job).expect("collect");
                assert_eq!(result.reports.len(), seeds.len());
                for (i, &seed) in seeds.iter().enumerate() {
                    assert_eq!(
                        result.report_for(seed).expect("report for seed"),
                        reference[i],
                        "client {client_idx}: server bytes differ from in-process run"
                    );
                }
                if !stream {
                    assert_eq!(result.rounds_seen, 0, "report-only client saw rounds");
                }
            });
        }
    });

    request_shutdown(addr).expect("shutdown");
    server_thread.join().expect("server thread");
}

#[test]
fn attached_subscriber_sees_the_same_reports() {
    let server = Server::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    let spec = test_spec();
    let seeds: [u64; 3] = [1, 2, 3];

    let mut submitter = Client::connect(addr).expect("connect submitter");
    submitter.submit(&spec, &seeds, true).expect("submit");
    let job = submitter.expect_accepted().expect("accepted");

    // Second subscriber on the same job from a separate connection —
    // whether it attaches mid-run or after completion, it must end up
    // with the same report bytes (late attaches replay from the log).
    let mut watcher = Client::connect(addr).expect("connect watcher");
    watcher.attach(job).expect("attach");
    watcher.expect_accepted().expect("attach accepted");

    let submitted = submitter.collect_job(job).expect("submitter collect");
    let watched = watcher.collect_job(job).expect("watcher collect");

    assert_eq!(submitted.reports.len(), seeds.len());
    assert_eq!(watched.reports.len(), seeds.len());
    for &seed in &seeds {
        let a = submitted.report_for(seed).expect("submitter report");
        let b = watched.report_for(seed).expect("watcher report");
        assert_eq!(a, b, "subscribers disagree on seed {seed}");
        let reference = reference_report(&spec, seed).expect("in-process run");
        assert_eq!(a, reference, "server bytes differ from in-process run");
    }

    request_shutdown(addr).expect("shutdown");
    server_thread.join().expect("server thread");
}

#[test]
fn bad_submissions_fail_fast_with_error_events() {
    let server = Server::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr).expect("connect");

    // Malformed line → error event, connection stays usable.
    client.send_line("this is not json").expect("send");
    let event = client.next_event().expect("read").expect("event");
    assert_eq!(event.kind, "error");

    // Spec that fails validation (no budget for a budgeted protocol).
    let spec = ScenarioSpec::new(
        TopologySpec::UniformSquare { n: 10, side: 1.5 },
        ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 },
    );
    client.submit(&spec, &[1], false).expect("submit");
    let event = client.next_event().expect("read").expect("event");
    assert_eq!(
        event.kind, "error",
        "invalid spec must be rejected at submit"
    );

    // And the connection still works afterwards.
    client.send_line("{\"op\":\"ping\"}").expect("ping");
    let event = client.next_event().expect("read").expect("event");
    assert_eq!(event.kind, "pong");

    request_shutdown(addr).expect("shutdown");
    server_thread.join().expect("server thread");
}
