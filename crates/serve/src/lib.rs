//! `sinr-serve`: a persistent simulation server over plain TCP.
//!
//! The server holds a pool of worker threads, each owning a persistent
//! [`EngineArena`] so consecutive trials reuse the reception oracle,
//! kernel pool, round-outcome and graph-scratch allocations across
//! *jobs*, not just within one sweep. Clients speak a line-delimited
//! protocol of canonical-JSON objects (grammar in
//! [`sinr_core::sim`]'s "Simulation as a service" section): `submit` a
//! [`ScenarioSpec`] plus seeds, get one trial per seed scheduled on the
//! shared pool, and receive `round` events live plus one `report` event
//! per finished trial.
//!
//! # Backpressure
//!
//! Round events reach each subscriber through a bounded lossy
//! [`RoundSink`] channel: a reader that falls behind loses round events
//! (counted, reported in its `done` event) but **never stalls the
//! engine** — and always still receives every `report`, which travels
//! on a separate unbounded control channel whose sends never block.
//!
//! # Determinism
//!
//! A trial's report is a pure function of `(spec, seed)` — arena reuse,
//! worker count, subscriber count and drop patterns cannot perturb it.
//! The `report` event embeds the canonical
//! [`sinr_core::sim::wire`] bytes, so what a client reads off the
//! socket is byte-identical to [`encode_run_report`] of an in-process
//! run (`tests/server_determinism.rs` pins this with concurrent
//! clients).
//!
//! No wall-clock is read anywhere in this crate's library: scheduling
//! blocks on condition variables and channel receives with fixed tick
//! durations, keeping `sinr-lint`'s determinism rules trivially green.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use sinr_core::sim::wire::run_report_to_value;
use sinr_core::sim::{
    encode_run_report, EngineArena, Observer, RoundSink, ScenarioSpec, Simulation,
};
use sinr_geometry::Point2;
use sinr_runtime::RoundStats;
use sinr_wire::Value;

/// Round events buffered per subscriber before the lossy sink starts
/// dropping. Sized to absorb normal writer-thread scheduling jitter;
/// a genuinely slow reader degrades to report-only.
pub const ROUND_CHANNEL_CAPACITY: usize = 1024;

/// How often blocked writer loops re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------
// Protocol lines
// ---------------------------------------------------------------------

fn event_line(fields: Vec<(String, Value)>) -> String {
    let mut line = Value::Object(fields).encode();
    line.push('\n');
    line
}

fn error_line(message: &str) -> String {
    event_line(vec![
        ("event".into(), Value::str("error")),
        ("message".into(), Value::str(message)),
    ])
}

fn round_line(job: u64, seed: u64, stats: &RoundStats, informed: usize) -> String {
    event_line(vec![
        ("event".into(), Value::str("round")),
        ("job".into(), Value::UInt(job)),
        ("seed".into(), Value::UInt(seed)),
        ("round".into(), Value::UInt(stats.round)),
        (
            "transmitters".into(),
            Value::UInt(stats.transmitters as u64),
        ),
        ("receptions".into(), Value::UInt(stats.receptions as u64)),
        ("informed".into(), Value::UInt(informed as u64)),
    ])
}

fn done_line(job: u64, dropped: u64) -> String {
    event_line(vec![
        ("event".into(), Value::str("done")),
        ("job".into(), Value::UInt(job)),
        ("dropped_rounds".into(), Value::UInt(dropped)),
        ("degraded".into(), Value::Bool(dropped > 0)),
    ])
}

// ---------------------------------------------------------------------
// Subscribers and jobs
// ---------------------------------------------------------------------

/// One registration of a connection on a job: a lossy bounded round
/// channel plus a reliable unbounded control channel. Both receivers
/// are drained by the connection's writer thread.
struct Subscriber {
    stream_rounds: bool,
    round: Mutex<RoundSink<String>>,
    control: Sender<String>,
}

impl Subscriber {
    /// Lossy: a full channel or departed reader counts a drop.
    fn offer_round(&self, line: &str) {
        if self.stream_rounds {
            self.round.lock().unwrap().offer(line.to_string());
        }
    }

    /// Reliable and non-blocking (unbounded channel); a departed reader
    /// just discards.
    fn push_control(&self, line: String) {
        let _ = self.control.send(line);
    }

    fn dropped(&self) -> u64 {
        self.round.lock().unwrap().dropped()
    }
}

/// One submitted sweep: a spec, its outstanding trial count, the
/// subscribers to fan events out to, and the report lines already
/// produced (replayed to late `attach`ers).
struct Job {
    id: u64,
    spec: ScenarioSpec,
    remaining: AtomicUsize,
    subscribers: Mutex<Vec<Arc<Subscriber>>>,
    reports: Mutex<Vec<String>>,
}

impl Job {
    fn fan_round(&self, line: &str) {
        for sub in self.subscribers.lock().unwrap().iter() {
            sub.offer_round(line);
        }
    }

    fn fan_control(&self, line: &str) {
        for sub in self.subscribers.lock().unwrap().iter() {
            sub.push_control(line.to_string());
        }
    }

    fn push_report(&self, line: String) {
        // Record before fanning out, under the reports lock an attach
        // also takes: a racing subscriber either replays this report
        // from the log or receives it live, never both, never neither.
        let mut reports = self.reports.lock().unwrap();
        reports.push(line.clone());
        self.fan_control(&line);
        drop(reports);
    }

    /// Per-subscriber completion notice carrying that subscriber's own
    /// round-drop count.
    fn finish(&self) {
        for sub in self.subscribers.lock().unwrap().iter() {
            let dropped = sub.dropped();
            sub.push_control(done_line(self.id, dropped));
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }
}

/// A unit of work: one seed of one job.
struct Trial {
    job: Arc<Job>,
    seed: u64,
}

// ---------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------

struct Shared {
    /// The server's own bound address, for the shutdown self-connect.
    addr: SocketAddr,
    queue: Mutex<VecDeque<Trial>>,
    available: Condvar,
    shutdown: AtomicBool,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_job: AtomicU64,
    /// Clones of every live connection, shut down on server shutdown so
    /// blocked `read_line`s return EOF.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn new(addr: SocketAddr) -> Self {
        Shared {
            addr,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
        for conn in self.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Wake the accept loop. The connect happens strictly after the
        // flag store, so the accepted wake connection (or any racing
        // real one) observes is_shutdown() and breaks the loop.
        let _ = TcpStream::connect(self.addr);
    }

    fn enqueue(&self, job: &Arc<Job>, seeds: &[u64]) {
        let mut queue = self.queue.lock().unwrap();
        for &seed in seeds {
            queue.push_back(Trial {
                job: Arc::clone(job),
                seed,
            });
        }
        drop(queue);
        self.available.notify_all();
    }

    fn next_trial(&self) -> Option<Trial> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(trial) = queue.pop_front() {
                return Some(trial);
            }
            if self.is_shutdown() {
                return None;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// The engine-side observer: encodes each resolved round once and fans
/// it out through every subscriber's lossy sink.
struct FanoutObserver {
    job: Arc<Job>,
    seed: u64,
}

impl Observer for FanoutObserver {
    fn on_round(&mut self, stats: &RoundStats, informed: usize) {
        let line = round_line(self.job.id, self.seed, stats, informed);
        self.job.fan_round(&line);
    }

    fn finish(&mut self, _report: &mut sinr_core::sim::RunReport) {}
}

fn build_simulation(job: &Arc<Job>, seed: u64) -> Result<Simulation<Point2>, String> {
    let job_for_observer = Arc::clone(job);
    job.spec
        .to_scenario()
        .and_then(|scenario| {
            scenario
                .observe(move || {
                    Box::new(FanoutObserver {
                        job: Arc::clone(&job_for_observer),
                        seed,
                    }) as Box<dyn Observer>
                })
                .build()
        })
        .map_err(|e| e.to_string())
}

fn run_trial(trial: &Trial, arena: &mut EngineArena) {
    let job = &trial.job;
    let outcome = build_simulation(job, trial.seed).and_then(|sim| {
        sim.run_reusing(trial.seed, arena)
            .map_err(|e| e.to_string())
    });
    match outcome {
        Ok(report) => {
            let line = event_line(vec![
                ("event".into(), Value::str("report")),
                ("job".into(), Value::UInt(job.id)),
                ("seed".into(), Value::UInt(trial.seed)),
                ("report".into(), run_report_to_value(&report)),
            ]);
            job.push_report(line);
        }
        Err(message) => {
            job.fan_control(&error_line(&format!(
                "job {} seed {}: {message}",
                job.id, trial.seed
            )));
        }
    }
}

fn worker(shared: &Shared) {
    // The persistent arena: trials of *different* jobs landing on this
    // worker reuse the same oracle/pool/outcome/scratch allocations.
    let mut arena = EngineArena::new();
    while let Some(trial) = shared.next_trial() {
        run_trial(&trial, &mut arena);
        if trial.job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            trial.job.finish();
        }
    }
}

// ---------------------------------------------------------------------
// Connection side
// ---------------------------------------------------------------------

/// The per-connection outgoing half shared between the reader (which
/// registers new subscriptions) and the writer thread (which drains
/// them into the socket).
struct Outgoing {
    control_tx: Sender<String>,
    /// Receivers of every round channel subscribed on this connection.
    round_rxs: Mutex<Vec<Receiver<String>>>,
}

impl Outgoing {
    fn drain_rounds(&self, out: &mut impl Write) -> io::Result<()> {
        for rx in self.round_rxs.lock().unwrap().iter() {
            for line in rx.try_iter() {
                out.write_all(line.as_bytes())?;
            }
        }
        Ok(())
    }
}

fn flush_outgoing(
    stream: &mut TcpStream,
    outgoing: &Outgoing,
    line: Option<String>,
) -> io::Result<()> {
    // Rounds queued before a control event was sent are already in
    // their channels (channel sends happen-before), so draining rounds
    // first keeps `report`/`done` after the rounds they trail.
    outgoing.drain_rounds(stream)?;
    if let Some(line) = line {
        stream.write_all(line.as_bytes())?;
    }
    stream.flush()
}

fn writer_loop(
    shared: &Shared,
    outgoing: &Outgoing,
    control_rx: &Receiver<String>,
    mut stream: TcpStream,
) {
    loop {
        match control_rx.recv_timeout(TICK) {
            Ok(line) => {
                if flush_outgoing(&mut stream, outgoing, Some(line)).is_err() {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if flush_outgoing(&mut stream, outgoing, None).is_err() || shared.is_shutdown() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let _ = flush_outgoing(&mut stream, outgoing, None);
                return;
            }
        }
    }
}

fn subscribe(job: &Arc<Job>, outgoing: &Arc<Outgoing>, stream_rounds: bool) {
    let (sink, rx) = RoundSink::bounded(ROUND_CHANNEL_CAPACITY);
    outgoing.round_rxs.lock().unwrap().push(rx);
    let sub = Arc::new(Subscriber {
        stream_rounds,
        round: Mutex::new(sink),
        control: outgoing.control_tx.clone(),
    });
    // Lock order mirrors push_report (reports, then subscribers), so
    // replay plus live fan-out hand each report to this subscriber
    // exactly once. The done-check happens *inside* the subscribers
    // lock: either this subscriber registers before a finishing worker
    // takes the lock (and gets `done` from it), or it observes the job
    // already done and synthesizes its own.
    let reports = job.reports.lock().unwrap();
    let mut subs = job.subscribers.lock().unwrap();
    for line in reports.iter() {
        sub.push_control(line.clone());
    }
    if job.is_done() {
        sub.push_control(done_line(job.id, 0));
    } else {
        subs.push(sub);
    }
    drop(subs);
    drop(reports);
}

fn handle_submit(shared: &Shared, outgoing: &Arc<Outgoing>, req: &Value) -> Result<(), String> {
    let spec_value = req.get("spec").ok_or("submit is missing 'spec'")?;
    let spec = ScenarioSpec::from_value(spec_value).map_err(|e| e.to_string())?;
    let seeds_value = req
        .get("seeds")
        .and_then(Value::as_array)
        .ok_or("submit is missing a 'seeds' array")?;
    if seeds_value.is_empty() {
        return Err("submit needs at least one seed".into());
    }
    let mut seeds = Vec::with_capacity(seeds_value.len());
    for s in seeds_value {
        seeds.push(s.as_u64().ok_or("seeds must be u64")?);
    }
    let stream_rounds = match req.get("stream") {
        None => true,
        Some(v) => v.as_bool().ok_or("'stream' must be a bool")?,
    };
    // Validate the whole spec up front so a bad submission fails at the
    // submitting client, not inside a worker.
    spec.to_scenario()
        .and_then(|s| s.build())
        .map_err(|e| e.to_string())?;

    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    let job = Arc::new(Job {
        id,
        spec,
        remaining: AtomicUsize::new(seeds.len()),
        subscribers: Mutex::new(Vec::new()),
        reports: Mutex::new(Vec::new()),
    });
    subscribe(&job, outgoing, stream_rounds);
    shared.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    outgoing
        .control_tx
        .send(event_line(vec![
            ("event".into(), Value::str("accepted")),
            ("job".into(), Value::UInt(id)),
            ("trials".into(), Value::UInt(seeds.len() as u64)),
        ]))
        .map_err(|_| "connection closed".to_string())?;
    shared.enqueue(&job, &seeds);
    Ok(())
}

fn handle_attach(shared: &Shared, outgoing: &Arc<Outgoing>, req: &Value) -> Result<(), String> {
    let id = req
        .get("job")
        .and_then(Value::as_u64)
        .ok_or("attach is missing a 'job' id")?;
    let job = shared
        .jobs
        .lock()
        .unwrap()
        .get(&id)
        .cloned()
        .ok_or_else(|| format!("no such job {id}"))?;
    outgoing
        .control_tx
        .send(event_line(vec![
            ("event".into(), Value::str("accepted")),
            ("job".into(), Value::UInt(id)),
            (
                "trials".into(),
                Value::UInt(job.remaining.load(Ordering::SeqCst) as u64),
            ),
        ]))
        .map_err(|_| "connection closed".to_string())?;
    subscribe(&job, outgoing, true);
    Ok(())
}

/// Returns `false` when the connection should stop serving (shutdown).
fn handle_request(shared: &Shared, outgoing: &Arc<Outgoing>, line: &str) -> bool {
    let parsed = match Value::parse(line) {
        Ok(v) => v,
        Err(e) => {
            let _ = outgoing.control_tx.send(error_line(&e.to_string()));
            return true;
        }
    };
    let op = parsed.get("op").and_then(Value::as_str).unwrap_or("");
    let result = match op {
        "ping" => outgoing
            .control_tx
            .send(event_line(vec![("event".into(), Value::str("pong"))]))
            .map_err(|_| "connection closed".to_string()),
        "submit" => handle_submit(shared, outgoing, &parsed),
        "attach" => handle_attach(shared, outgoing, &parsed),
        "shutdown" => {
            shared.begin_shutdown();
            return false;
        }
        other => Err(format!("unknown op '{other}'")),
    };
    if let Err(message) = result {
        let _ = outgoing.control_tx.send(error_line(&message));
    }
    true
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if let Ok(shutdown_handle) = stream.try_clone() {
        let mut conns = shared.conns.lock().unwrap();
        conns.retain(|c| c.peer_addr().is_ok());
        conns.push(shutdown_handle);
    }
    let (control_tx, control_rx) = std::sync::mpsc::channel();
    let outgoing = Arc::new(Outgoing {
        control_tx,
        round_rxs: Mutex::new(Vec::new()),
    });
    let writer_outgoing = Arc::clone(&outgoing);
    thread::scope(|scope| {
        scope.spawn(move || writer_loop(shared, &writer_outgoing, &control_rx, write_half));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if !handle_request(shared, &outgoing, trimmed) {
                        break;
                    }
                }
            }
        }
        // Reader done. The writer exits on its next tick once shutdown
        // is set or its socket write fails (client gone); until then it
        // keeps draining events for jobs this connection subscribed.
    });
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A bound, not-yet-running server. [`Server::run`] blocks serving until
/// a client sends `{"op":"shutdown"}`.
pub struct Server {
    listener: TcpListener,
    workers: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) with a pool of
    /// `workers` trial threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
        })
    }

    /// The bound address — what clients connect to.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown: accepts connections, one handler pair
    /// (reader + writer thread) per client, over a shared pool of
    /// `workers` arena-reusing trial threads. Every thread is scoped —
    /// when this returns, all of them have exited.
    ///
    /// # Errors
    ///
    /// Never fails today; the signature reserves accept-loop I/O errors.
    pub fn run(self) -> io::Result<()> {
        let shared = Shared::new(self.local_addr()?);
        thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker(&shared));
            }
            // begin_shutdown's self-connect unblocks accept() after the
            // flag flips, so this loop always terminates on shutdown.
            for stream in self.listener.incoming() {
                if shared.is_shutdown() {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(|| handle_connection(&shared, stream));
                    }
                    Err(_) => continue,
                }
            }
            Ok(())
        })
    }
}

/// Requests a shutdown of the server at `addr`: connects, sends the
/// `shutdown` op, returns. Used by hosts that run the server on a
/// background thread.
///
/// # Errors
///
/// Propagates connect/write failures.
pub fn request_shutdown(addr: SocketAddr) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"{\"op\":\"shutdown\"}\n")?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Client helper
// ---------------------------------------------------------------------

/// A minimal blocking client for the line protocol — what the smoke
/// binary, the determinism test and `examples/serve_demo.rs` use; real
/// deployments can speak the protocol with anything that writes lines.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

/// One server→client event, pre-split on the `event` tag with the raw
/// [`Value`] retained for field access.
#[derive(Debug)]
pub struct Event {
    /// The `event` tag: `accepted`, `round`, `report`, `done`, `pong`
    /// or `error`.
    pub kind: String,
    /// The whole event object.
    pub body: Value,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream })
    }

    /// Submits `spec` across `seeds`; `stream` requests live round
    /// events. Returns after writing — read the `accepted` event (and
    /// everything after it) with [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn submit(&mut self, spec: &ScenarioSpec, seeds: &[u64], stream: bool) -> io::Result<()> {
        let line = Value::Object(vec![
            ("op".into(), Value::str("submit")),
            ("spec".into(), spec.to_value()),
            (
                "seeds".into(),
                Value::Array(seeds.iter().map(|&s| Value::UInt(s)).collect()),
            ),
            ("stream".into(), Value::Bool(stream)),
        ])
        .encode();
        self.send_line(&line)
    }

    /// Attaches to an existing job as an additional live subscriber.
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn attach(&mut self, job: u64) -> io::Result<()> {
        let line = Value::Object(vec![
            ("op".into(), Value::str("attach")),
            ("job".into(), Value::UInt(job)),
        ])
        .encode();
        self.send_line(&line)
    }

    /// Sends one raw request line.
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Blocks for the next event; `None` on a closed connection.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the server sends a non-protocol line.
    pub fn next_event(&mut self) -> io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let body = Value::parse(trimmed)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let kind = body
                .get("event")
                .and_then(Value::as_str)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing event tag"))?
                .to_string();
            return Ok(Some(Event { kind, body }));
        }
    }

    /// Waits for the `accepted` event of a just-sent request and
    /// returns its job id.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an error event or protocol violation.
    pub fn expect_accepted(&mut self) -> io::Result<u64> {
        while let Some(event) = self.next_event()? {
            match event.kind.as_str() {
                "accepted" => {
                    return event
                        .body
                        .get("job")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "accepted missing job id")
                        });
                }
                "error" => {
                    let message = event
                        .body
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown server error");
                    return Err(io::Error::new(io::ErrorKind::InvalidData, message));
                }
                _ => continue,
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before accepted",
        ))
    }

    /// Reads events until this job's `done`, returning the collected
    /// reports plus stream accounting. Round events are counted, not
    /// stored.
    ///
    /// # Errors
    ///
    /// `InvalidData` on protocol violations (error events, malformed
    /// reports) and `UnexpectedEof` when the connection closes first.
    pub fn collect_job(&mut self, job: u64) -> io::Result<JobResult> {
        let mut result = JobResult {
            reports: Vec::new(),
            rounds_seen: 0,
            dropped_rounds: 0,
            degraded: false,
        };
        while let Some(event) = self.next_event()? {
            let event_job = event.body.get("job").and_then(Value::as_u64);
            match event.kind.as_str() {
                "error" => {
                    let message = event
                        .body
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown server error");
                    return Err(io::Error::new(io::ErrorKind::InvalidData, message));
                }
                "round" if event_job == Some(job) => result.rounds_seen += 1,
                "report" if event_job == Some(job) => {
                    let seed = event
                        .body
                        .get("seed")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "report missing seed")
                        })?;
                    let report = event.body.get("report").ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "report missing body")
                    })?;
                    // Re-encoding the parsed value is byte-identity (the
                    // wire format is canonical), so these bytes are
                    // exactly what the server's encoder produced.
                    result.reports.push((seed, report.encode()));
                }
                "done" if event_job == Some(job) => {
                    result.dropped_rounds = event
                        .body
                        .get("dropped_rounds")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    result.degraded = event
                        .body
                        .get("degraded")
                        .and_then(Value::as_bool)
                        .unwrap_or(false);
                    return Ok(result);
                }
                _ => {}
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before done",
        ))
    }
}

/// What [`Client::collect_job`] gathered for one job.
#[derive(Debug)]
pub struct JobResult {
    /// `(seed, canonical report bytes)` in completion order.
    pub reports: Vec<(u64, String)>,
    /// Live round events this subscriber received.
    pub rounds_seen: u64,
    /// Round events the server dropped for this subscriber.
    pub dropped_rounds: u64,
    /// Whether any round event was dropped (reports are unaffected).
    pub degraded: bool,
}

impl JobResult {
    /// The canonical report bytes for `seed`, if present.
    pub fn report_for(&self, seed: u64) -> Option<&str> {
        self.reports
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, r)| r.as_str())
    }
}

/// The canonical report bytes an in-process run of `spec` at `seed`
/// produces — the reference side of the server byte-identity contract.
///
/// # Errors
///
/// The scenario error, stringified.
pub fn reference_report(spec: &ScenarioSpec, seed: u64) -> Result<String, String> {
    let sim = spec
        .to_scenario()
        .and_then(|s| s.build())
        .map_err(|e| e.to_string())?;
    let report = sim.run(seed).map_err(|e| e.to_string())?;
    Ok(encode_run_report(&report))
}
