//! CI smoke for `sinr-serve`: boots a server on an ephemeral loopback
//! port, drives it with two concurrent subscribers (one submitting, one
//! attaching to the same job), and asserts the wire contract — every
//! report byte-identical to an in-process run, live round events
//! observed, clean shutdown. Exits non-zero on any violation.

use std::thread;

use sinr_core::sim::{ProtocolSpec, ScenarioSpec, TopologySpec};
use sinr_serve::{reference_report, request_shutdown, Client, Server};

fn main() {
    let server = Server::bind("127.0.0.1:0", 2).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run().expect("server run"));
    println!("serve_smoke: server on {addr}");

    let mut spec = ScenarioSpec::new(
        TopologySpec::UniformSquare { n: 40, side: 2.0 },
        ProtocolSpec::ReFloodBroadcastEstimate {
            source: 0,
            nu0: 40,
            burst_rounds: 48,
        },
    );
    spec.budget = Some(400);
    spec.record = true;
    let seeds: [u64; 2] = [7, 2014];

    let reference: Vec<String> = seeds
        .iter()
        .map(|&s| reference_report(&spec, s).expect("in-process reference run"))
        .collect();

    // Subscriber 1 submits; subscriber 2 attaches to the same job over
    // its own connection. Both read concurrently while the job runs.
    let mut submitter = Client::connect(addr).expect("connect submitter");
    submitter.submit(&spec, &seeds, true).expect("submit");
    let job = submitter.expect_accepted().expect("accepted");
    println!("serve_smoke: job {job} accepted ({} trials)", seeds.len());

    let mut watcher = Client::connect(addr).expect("connect watcher");
    watcher.attach(job).expect("attach");
    watcher.expect_accepted().expect("attach accepted");

    let (submitted, watched) = thread::scope(|scope| {
        let watcher_result = scope.spawn(move || watcher.collect_job(job).expect("watcher"));
        let submitted = submitter.collect_job(job).expect("submitter");
        (submitted, watcher_result.join().expect("watcher thread"))
    });

    for (i, &seed) in seeds.iter().enumerate() {
        let from_submit = submitted.report_for(seed).expect("submitter report");
        let from_watch = watched.report_for(seed).expect("watcher report");
        assert_eq!(
            from_submit, reference[i],
            "seed {seed}: submitter bytes differ from in-process run"
        );
        assert_eq!(
            from_watch, reference[i],
            "seed {seed}: watcher bytes differ from in-process run"
        );
    }
    // The submitter subscribed before any trial started, so unless the
    // sink dropped under load it saw live rounds; dropped rounds are
    // fine (that is the backpressure contract), silence plus no drops
    // is not.
    assert!(
        submitted.rounds_seen > 0 || submitted.dropped_rounds > 0,
        "streaming subscriber saw no round events at all"
    );
    println!(
        "serve_smoke: {} reports byte-identical to in-process runs across 2 subscribers \
         (submitter: {} rounds live, {} dropped)",
        seeds.len(),
        submitted.rounds_seen,
        submitted.dropped_rounds
    );

    request_shutdown(addr).expect("shutdown");
    server_thread.join().expect("server thread");
    println!("serve_smoke: PASS");
}
