//! Facade crate for the Scenario/Simulation builder API.
//!
//! The implementation lives in [`sinr_core::sim`] (it constructs the
//! per-node protocol state machines, so it must sit next to them); this
//! crate re-exports it under the `sinr_sim` name so downstream users can
//! depend on the builder without naming the core crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sinr_core::sim::*;
