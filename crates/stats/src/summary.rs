//! Summary statistics over samples of simulation measurements.

/// Summary of a sample of f64 measurements (round counts, ratios, …).
///
/// # Example
///
/// ```
/// use sinr_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for singleton).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint of the two central order statistics for even n).
    pub median: f64,
}

impl Summary {
    /// Summarises `samples`; `None` when empty or any value is non-finite.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Summarises integer samples (round counts).
    pub fn of_counts(samples: &[u64]) -> Option<Summary> {
        let as_f: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        Summary::of(&as_f)
    }

    /// Normal-approximation 95% confidence half-width of the mean:
    /// `1.96 · s / √n`.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

/// The `p`-quantile (0 ≤ p ≤ 1) of `samples` by the nearest-rank method;
/// `None` when empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile p must be in [0,1], got {p}"
    );
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Equal-width histogram of `samples` over `[min, max]` with `bins`
/// buckets; returns bucket counts. Values equal to `max` land in the last
/// bucket. `None` for empty input.
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// use sinr_stats::histogram;
/// let h = histogram(&[0.0, 0.1, 0.5, 0.9, 1.0], 2).unwrap();
/// assert_eq!(h, vec![2, 3]); // 0.5 falls into the upper half-open bucket
/// ```
pub fn histogram(samples: &[f64], bins: usize) -> Option<Vec<usize>> {
    assert!(bins > 0, "need at least one bin");
    if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut counts = vec![0usize; bins];
    let span = (max - min).max(f64::MIN_POSITIVE);
    for &v in samples {
        let i = (((v - min) / span) * bins as f64) as usize;
        counts[i.min(bins - 1)] += 1;
    }
    Some(counts)
}

/// Fraction of `samples` satisfying `pred` (0 for empty input).
pub fn fraction<T>(samples: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| pred(s)).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn counts_variant() {
        let s = Summary::of_counts(&[10, 20, 30]).unwrap();
        assert_eq!(s.mean, 20.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&xs, 0.5), Some(5.0));
        assert_eq!(quantile(&xs, 0.9), Some(9.0));
        assert_eq!(quantile(&xs, 1.0), Some(10.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_bad_p() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn fraction_counts() {
        assert_eq!(fraction(&[1, 2, 3, 4], |&x| x % 2 == 0), 0.5);
        assert_eq!(fraction::<u32>(&[], |_| true), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[1.0, 2.0, 3.0, 4.0], 4).unwrap();
        assert_eq!(h, vec![1, 1, 1, 1]);
        let h = histogram(&[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(
            h.iter().sum::<usize>(),
            3,
            "degenerate span keeps all samples"
        );
        assert_eq!(histogram(&[], 2), None);
        assert_eq!(histogram(&[f64::NAN], 2), None);
    }

    #[test]
    #[should_panic]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let big_data: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let big = Summary::of(&big_data).unwrap();
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }
}
