//! Least-squares model fitting for scaling-law validation.
//!
//! The experiment harness checks bounds like `T = O(D log² n)` by fitting
//! measured round counts against the predicted feature (e.g. `D·log²n`) and
//! reporting the coefficient and the coefficient of determination `R²`. A
//! near-constant ratio and high `R²` across a sweep is the empirical
//! signature of the asymptotic bound.

/// Result of a least-squares fit `y ≈ Σ_j coef[j] · feature_j(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Fitted coefficients, one per feature.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination `R²` against the mean-only model.
    pub r_squared: f64,
    /// Residual sum of squares.
    pub rss: f64,
}

/// Solves the normal equations for the design matrix `rows` (each row is
/// the feature vector of one observation) against `ys`.
///
/// Returns `None` when the system is degenerate (collinear features or
/// fewer observations than features).
///
/// # Panics
///
/// Panics if rows have inconsistent lengths or `rows.len() != ys.len()`.
///
/// # Example
///
/// ```
/// use sinr_stats::fit_least_squares;
/// // y = 3·x exactly.
/// let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
/// let fit = fit_least_squares(&rows, &[3.0, 6.0, 9.0]).unwrap();
/// assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn fit_least_squares(rows: &[Vec<f64>], ys: &[f64]) -> Option<FitResult> {
    assert_eq!(rows.len(), ys.len(), "observations/targets length mismatch");
    let m = rows.first().map_or(0, Vec::len);
    if m == 0 || rows.len() < m {
        return None;
    }
    for r in rows {
        assert_eq!(r.len(), m, "ragged design matrix");
    }

    // Normal equations: (XᵀX) c = Xᵀy.
    let mut xtx = vec![vec![0.0; m]; m];
    let mut xty = vec![0.0; m];
    for (row, &y) in rows.iter().zip(ys) {
        for i in 0..m {
            xty[i] += row[i] * y;
            for j in 0..m {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    let coefficients = solve_gaussian(xtx, xty)?;

    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let tss: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let rss: f64 = rows
        .iter()
        .zip(ys)
        .map(|(row, &y)| {
            let pred: f64 = row.iter().zip(&coefficients).map(|(x, c)| x * c).sum();
            (y - pred).powi(2)
        })
        .sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };
    Some(FitResult {
        coefficients,
        r_squared,
        rss,
    })
}

/// Fits the one-parameter through-origin model `y ≈ a·x` and returns
/// `(a, r_squared)`; `None` for empty or degenerate input.
pub fn fit_proportional(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
    let fit = fit_least_squares(&rows, ys)?;
    Some((fit.coefficients[0], fit.r_squared))
}

/// Fits `y ≈ a·x + b` and returns `(a, b, r_squared)`.
pub fn fit_affine(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
    let fit = fit_least_squares(&rows, ys)?;
    Some((fit.coefficients[0], fit.coefficients[1], fit.r_squared))
}

/// Fits a power law `y ≈ c·x^k` by linear regression in log–log space,
/// returning `(k, c, r_squared_loglog)`. All inputs must be positive.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    if xs.iter().chain(ys).any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let (k, lnc, r2) = fit_affine(&lx, &ly)?;
    Some((k, lnc.exp(), r2))
}

/// Gaussian elimination with partial pivoting; `None` if singular.
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (rk, pk) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *rk -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_proportional() {
        let (a, r2) = fit_proportional(&[1.0, 2.0, 4.0], &[2.5, 5.0, 10.0]).unwrap();
        assert!((a - 2.5).abs() < 1e-9);
        assert!(r2 > 0.9999);
    }

    #[test]
    fn affine_recovers_slope_and_intercept() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
        let (a, b, r2) = fit_affine(&xs, &ys).unwrap();
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
        assert!(r2 > 0.9999);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x + ((x * 7.7).sin())).collect();
        let (a, r2) = fit_proportional(&xs, &ys).unwrap();
        assert!((a - 4.0).abs() < 0.05, "a = {a}");
        assert!(r2 > 0.99);
    }

    #[test]
    fn power_law_exponent() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.7)).collect();
        let (k, c, r2) = fit_power_law(&xs, &ys).unwrap();
        assert!((k - 1.7).abs() < 1e-6);
        assert!((c - 3.0).abs() < 1e-6);
        assert!(r2 > 0.9999);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(fit_power_law(&[1.0, -2.0], &[1.0, 2.0]).is_none());
        assert!(fit_power_law(&[1.0, 2.0], &[0.0, 2.0]).is_none());
    }

    #[test]
    fn two_feature_model() {
        // y = 2·u + 5·v
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 3.0],
        ];
        let ys = [2.0, 5.0, 7.0, 19.0];
        let fit = fit_least_squares(&rows, &ys).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        // Fewer observations than features.
        assert!(fit_least_squares(&[vec![1.0, 2.0]], &[1.0]).is_none());
        // Collinear features.
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        assert!(fit_least_squares(&rows, &[1.0, 2.0, 3.0]).is_none());
        // Empty.
        assert!(fit_proportional(&[], &[]).is_none());
    }

    #[test]
    fn constant_target_r2_defined() {
        let (a, _b, r2) = fit_affine(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!(a.abs() < 1e-9);
        assert_eq!(r2, 1.0);
    }
}
