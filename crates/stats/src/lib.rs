//! Statistics, model fitting and table rendering for the experiment suite.
//!
//! * [`Summary`] / [`quantile`] / [`fraction`] — sample summaries of round
//!   counts and success rates;
//! * [`fit_least_squares`] and friends — scaling-law fits used to validate
//!   the paper's asymptotic bounds (e.g. regressing measured rounds against
//!   `D·log²n` and checking the ratio is flat with high `R²`);
//! * [`Table`] — plain-text/CSV rendering of experiment tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod summary;
pub mod table;

pub use fit::{fit_affine, fit_least_squares, fit_power_law, fit_proportional, FitResult};
pub use summary::{fraction, histogram, quantile, Summary};
pub use table::{fmt_f64, Table};
