//! Plain-text and CSV table rendering for the experiment harness.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use sinr_stats::Table;
/// let mut t = Table::new(vec!["n", "rounds"]);
/// t.row(vec!["64".into(), "120".into()]);
/// t.row(vec!["128".into(), "161".into()]);
/// let text = t.render();
/// assert!(text.contains("n"));
/// assert!(text.contains("161"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders CSV (no quoting; the harness emits only numbers and plain
    /// identifiers).
    pub fn render_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for tables: integers as integers, otherwise 3
/// significant decimals.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("100"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(-2.0), "-2");
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.render().contains("only"));
    }
}
