//! The mobility benchmark suite: the kernels of the dynamic-topology
//! subsystem.
//!
//! Rows (all under the `mobility/` prefix, gated by the CI `bench_gate`
//! job like every other tracked kernel):
//!
//! * `mobility/build_fresh/<n>` — a from-scratch [`GridIndex::build`],
//!   the baseline the epoch reindex path is measured against;
//! * `mobility/rebuild_from/<n>` — the in-place, allocation-reusing
//!   [`GridIndex::rebuild_from`] over the same points;
//! * `mobility/advance_x8/{waypoint,drift,churn}/<n>` — eight epochs of
//!   each [`sinr_netgen::mobility`] model per iteration (batched so the
//!   rows clear the `bench_gate` timing floor on CI, where sub-floor
//!   rows are skipped rather than gated);
//! * `mobility/epoch_8_rounds/<n>` — a full epoch as the engine executes
//!   it: advance, reindex in place, then 8 grid-native rounds through a
//!   reused [`ReceptionOracle`].

use sinr_geometry::GridIndex;
use sinr_netgen::mobility::{Mobility, MobilityModel};
use sinr_netgen::uniform;
use sinr_phy::{InterferenceMode, ReceptionOracle, RoundOutcome, SinrParams};

use crate::microbench::{black_box, Session};
use crate::phy_suite::DENSITY;

/// Runs the suite into `session`. Under `--quick` the sizes shrink to a
/// single small deployment.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();
    // The quick size matches the smaller full size, so CI smoke runs
    // gate against the committed baseline rows (a quick-only size would
    // never be compared).
    let sizes: &[usize] = if session.quick {
        &[2_500]
    } else {
        &[2_500, 10_000]
    };
    for &n in sizes {
        let side = uniform::side_for_density(n, DENSITY);
        let pts = uniform::square(n, side, 7);

        // Reindex kernels over a fixed deployment: fresh build vs the
        // in-place rebuild (identical output, reused allocations). These
        // rows run in the ~100µs regime where the min over few samples is
        // noisy, so they keep the full iteration count even under
        // `--quick` — they are the rows the CI gate watches.
        let mut grid = GridIndex::build(&pts, 1.0);
        session.bench_n(&format!("mobility/build_fresh/{n}"), n, 3, 20, || {
            black_box(GridIndex::build(&pts, 1.0));
        });
        session.bench_n(&format!("mobility/rebuild_from/{n}"), n, 3, 20, || {
            grid.rebuild_from(&pts);
            black_box(&grid);
        });

        // One epoch of each motion model.
        let models = [
            (
                "waypoint",
                MobilityModel::RandomWaypoint {
                    speed: 0.2,
                    pause_epochs: 0,
                },
            ),
            ("drift", MobilityModel::Drift { speed: 0.2 }),
            ("churn", MobilityModel::TeleportChurn { fraction: 0.2 }),
        ];
        // Batched ×8: one advance is a handful of microseconds at these
        // sizes, under the CI gate's 50µs floor — the gate would skip
        // the rows entirely. Eight epochs per iteration keeps the rows
        // tracked; the measured quantity is "8 advances", consistently,
        // in both the baseline and the candidate.
        for (tag, model) in models {
            let mut moving = pts.clone();
            let mut mob = Mobility::over_deployment(model, &moving, 11);
            session.bench(&format!("mobility/advance_x8/{tag}/{n}"), n, || {
                for _ in 0..8 {
                    mob.advance(&mut moving);
                }
                black_box(&moving);
            });
        }

        // A full engine epoch: move, reindex in place, resolve 8 rounds
        // of grid-native physics through reused scratch.
        let mut moving = pts.clone();
        let mut mob = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.2,
                pause_epochs: 0,
            },
            &moving,
            13,
        );
        let mut epoch_grid = GridIndex::build(&moving, 1.0);
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        let mut oracle = ReceptionOracle::for_stations(n);
        let mut out = RoundOutcome::empty();
        session.bench(&format!("mobility/epoch_8_rounds/{n}"), n, || {
            mob.advance(&mut moving);
            epoch_grid.rebuild_from(&moving);
            for _round in 0..8 {
                oracle.resolve_into(
                    &moving,
                    &params,
                    &tx,
                    InterferenceMode::grid_native(),
                    Some(&epoch_grid),
                    &mut out,
                );
            }
            black_box(&out);
        });
    }
}
