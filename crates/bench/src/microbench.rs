//! A minimal timing harness for the `benches/` targets.
//!
//! The offline build environment cannot fetch criterion, so the bench
//! binaries use this instead: warm up, run a fixed number of timed
//! iterations, and print min/mean/max wall-clock per iteration. Benches
//! are declared `harness = false` and excluded from `cargo test`.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the criterion-familiar
/// name.
pub use std::hint::black_box;

/// Runs `f` for `iters` timed iterations (after `warmup` untimed ones)
/// and prints one line of statistics.
pub fn bench_n(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    let total: Duration = samples.iter().sum();
    let mean = total / iters as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!("{name:<40} iters {iters:>3}  min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}");
}

/// [`bench_n`] with the default 2 warmup + 10 timed iterations.
pub fn bench(name: &str, f: impl FnMut()) {
    bench_n(name, 2, 10, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_expected_iteration_count() {
        let mut count = 0u32;
        bench_n("noop", 1, 3, || count += 1);
        assert_eq!(count, 4, "1 warmup + 3 timed");
    }
}
