//! A minimal timing harness for the `benches/` targets.
//!
//! The offline build environment cannot fetch criterion, so the bench
//! binaries use this instead: warm up, run a fixed number of timed
//! iterations, and print min/mean/max wall-clock per iteration. Benches
//! are declared `harness = false` and excluded from `cargo test`.
//!
//! Besides printing, a [`Session`] collects machine-readable
//! [`BenchRecord`]s and — when the binary is invoked with `--json <path>`
//! — writes them as a JSON array, so benchmark results can be tracked
//! across commits (`BENCH_phy.json` at the repository root holds the
//! committed trajectory; CI regenerates and uploads it per run).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the criterion-familiar
/// name.
pub use std::hint::black_box;

/// One benchmark measurement: wall-clock per iteration over `iters`
/// timed iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark name, `group/case` style.
    pub name: String,
    /// Problem size the case ran at (stations, items, …).
    pub n: usize,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u128,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u128,
    /// CPU feature tier of the machine that recorded the row
    /// ([`sinr_geometry::hardware_tier`] label: `avx2+fma`, `neon` or
    /// `scalar`). Empty for rows from baselines predating the field.
    /// `bench_gate` refuses to compare rows whose recorded tier differs
    /// from the fresh run's — a `simd/` row timed on different hardware
    /// is a different kernel, not a regression signal.
    pub tier: String,
}

impl BenchRecord {
    fn to_json(&self) -> String {
        // Benchmark names and tier labels are plain identifiers with '/',
        // so escaping quotes/backslashes suffices.
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"tier\":\"{}\"}}",
            esc(&self.name),
            self.n,
            self.min_ns,
            self.mean_ns,
            self.max_ns,
            esc(&self.tier)
        )
    }
}

/// Runs `f` for `iters` timed iterations (after `warmup` untimed ones),
/// prints one line of statistics and returns the measurement.
// bench is the one crate whose job is reading the wall clock
// (clippy.toml mirrors sinr-lint's wall-clock rule workspace-wide).
#[allow(clippy::disallowed_methods)]
pub fn bench_record(
    name: &str,
    n: usize,
    warmup: usize,
    iters: usize,
    mut f: impl FnMut(),
) -> BenchRecord {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    let total: Duration = samples.iter().sum();
    let mean = total / iters as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    println!("{name:<40} iters {iters:>3}  min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}");
    BenchRecord {
        name: name.to_string(),
        n,
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        max_ns: max.as_nanos(),
        tier: sinr_geometry::hardware_tier().label().to_string(),
    }
}

/// Runs `f` for `iters` timed iterations (after `warmup` untimed ones)
/// and prints one line of statistics.
pub fn bench_n(name: &str, warmup: usize, iters: usize, f: impl FnMut()) {
    let _ = bench_record(name, 0, warmup, iters, f);
}

/// [`bench_n`] with the default 2 warmup + 10 timed iterations.
pub fn bench(name: &str, f: impl FnMut()) {
    bench_n(name, 2, 10, f);
}

/// Collects [`BenchRecord`]s and optionally writes them as JSON.
///
/// Construct with [`Session::from_args`] so every bench binary uniformly
/// understands `--json <path>` (and `--quick` for CI smoke runs).
#[derive(Debug, Default)]
pub struct Session {
    records: Vec<BenchRecord>,
    json_path: Option<std::path::PathBuf>,
    /// Whether `--quick` was passed: benches should shrink sizes and
    /// iteration counts to smoke-test levels.
    pub quick: bool,
    /// `--suite <name>` if passed: binaries hosting several suites run
    /// only the named one (`all` or absent runs everything).
    pub suite: Option<String>,
}

impl Session {
    /// A session with no JSON output.
    pub fn new() -> Self {
        Session::default()
    }

    /// Parses `--json <path>`, `--quick` and `--suite <name>` from the
    /// process arguments.
    ///
    /// # Panics
    ///
    /// Panics if `--json` or `--suite` is passed without its value (a
    /// usage error in a bench invocation).
    pub fn from_args() -> Self {
        let mut session = Session::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => {
                    let path = args.next().expect("--json requires a path argument");
                    session.json_path = Some(path.into());
                }
                "--quick" => session.quick = true,
                "--suite" => {
                    let name = args.next().expect("--suite requires a name argument");
                    session.suite = Some(name);
                }
                other => {
                    if let Some(path) = other.strip_prefix("--json=") {
                        session.json_path = Some(path.into());
                    } else if let Some(name) = other.strip_prefix("--suite=") {
                        session.suite = Some(name.into());
                    }
                    // Ignore the harness arguments `cargo bench` forwards
                    // (e.g. `--bench`) and any filter strings.
                }
            }
        }
        session
    }

    /// Sets the JSON output path unless `--json` already provided one
    /// (binaries that always emit a report call this after
    /// [`Session::from_args`]).
    pub fn default_json(&mut self, path: impl Into<std::path::PathBuf>) {
        if self.json_path.is_none() {
            self.json_path = Some(path.into());
        }
    }

    /// The unified report path with `suffix` appended to its file stem —
    /// section aliases derive from the `--json` target (`BENCH.json` →
    /// `BENCH_phy.json`, `/tmp/t.json` → `/tmp/t_phy.json`), so a custom
    /// output path can never clobber the committed files.
    pub fn sibling_json(&self, suffix: &str) -> Option<std::path::PathBuf> {
        let path = self.json_path.as_ref()?;
        let stem = path.file_stem()?.to_str()?;
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("json");
        Some(path.with_file_name(format!("{stem}{suffix}.{ext}")))
    }

    /// Picks `full` normally, `quick` under `--quick`.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Runs and records one case (default 2 warmup + 10 timed iterations,
    /// halved under `--quick`).
    pub fn bench(&mut self, name: &str, n: usize, f: impl FnMut()) {
        let iters = self.pick(10, 5);
        self.bench_n(name, n, 2, iters, f);
    }

    /// Runs and records one case with explicit warmup/iteration counts.
    pub fn bench_n(&mut self, name: &str, n: usize, warmup: usize, iters: usize, f: impl FnMut()) {
        let record = bench_record(name, n, warmup, iters, f);
        self.records.push(record);
    }

    /// The records collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Mean nanoseconds of the named record, if it ran.
    pub fn mean_ns(&self, name: &str) -> Option<u128> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
    }

    /// Renders all records as a JSON array (one record per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.to_json());
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Writes the records matching `pred` as a JSON array to `path` — the
    /// section/alias writer (e.g. the physical-layer records of a unified
    /// report also land in the historical `BENCH_phy.json`).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the report cannot be written.
    pub fn write_filtered(
        &self,
        path: impl AsRef<std::path::Path>,
        pred: impl Fn(&BenchRecord) -> bool,
    ) -> std::io::Result<()> {
        let subset: Vec<&BenchRecord> = self.records.iter().filter(|r| pred(r)).collect();
        let mut out = String::from("[\n");
        for (i, r) in subset.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.to_json());
            if i + 1 < subset.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        std::fs::write(path.as_ref(), out)?;
        println!(
            "wrote {} records to {}",
            subset.len(),
            path.as_ref().display()
        );
        Ok(())
    }

    /// Writes the JSON report if `--json` was given; returns the path
    /// written to.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the report cannot be written.
    pub fn finish(self) -> std::io::Result<Option<std::path::PathBuf>> {
        let json = self.to_json();
        let Some(path) = self.json_path else {
            return Ok(None);
        };
        std::fs::write(&path, json)?;
        println!("wrote {} records to {}", self.records.len(), path.display());
        Ok(Some(path))
    }
}

/// Parses a JSON array of benchmark records as written by
/// [`Session::finish`] / [`Session::write_filtered`] — the reader half of
/// the tracked-benchmark loop (the CI regression gate uses it to compare
/// a fresh report against the committed baseline).
///
/// Tolerant by construction: anything that does not look like a record
/// object is skipped, so partial or hand-edited files degrade to fewer
/// records rather than an error. Record names must not contain `{` or
/// `}` (ours never do).
pub fn parse_records(json: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find('{') {
        let Some(end) = rest[start..].find('}') else {
            break;
        };
        let obj = &rest[start..=start + end];
        rest = &rest[start + end + 1..];
        let record = (|| {
            Some(BenchRecord {
                name: extract_str(obj, "name")?,
                n: usize::try_from(extract_num(obj, "n")?).ok()?,
                min_ns: extract_num(obj, "min_ns")?,
                mean_ns: extract_num(obj, "mean_ns")?,
                max_ns: extract_num(obj, "max_ns")?,
                // Baselines predating the field parse to an empty tier.
                tier: extract_str(obj, "tier").unwrap_or_default(),
            })
        })();
        if let Some(r) = record {
            out.push(r);
        }
    }
    out
}

/// Position just past `"key":` (tolerating whitespace around the colon)
/// in a record object, or `None` if the key is absent.
fn after_key(obj: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\"");
    let mut at = obj.find(&pat)? + pat.len();
    let bytes = obj.as_bytes();
    while bytes.get(at).is_some_and(|b| b.is_ascii_whitespace()) {
        at += 1;
    }
    if bytes.get(at) != Some(&b':') {
        return None;
    }
    at += 1;
    while bytes.get(at).is_some_and(|b| b.is_ascii_whitespace()) {
        at += 1;
    }
    Some(at)
}

/// Extracts the string value of `"key": "..."` from a record object,
/// unescaping `\"` and `\\`.
fn extract_str(obj: &str, key: &str) -> Option<String> {
    let at = after_key(obj, key)?;
    let rest = obj[at..].strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => value.push(chars.next()?),
            '"' => return Some(value),
            _ => value.push(c),
        }
    }
    None
}

/// Extracts the unsigned integer value of `"key": <digits>` from a
/// record object.
fn extract_num(obj: &str, key: &str) -> Option<u128> {
    let at = after_key(obj, key)?;
    let end = obj[at..]
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(obj.len() - at);
    obj[at..at + end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_expected_iteration_count() {
        let mut count = 0u32;
        bench_n("noop", 1, 3, || count += 1);
        assert_eq!(count, 4, "1 warmup + 3 timed");
    }

    #[test]
    fn session_records_and_serializes() {
        let mut s = Session::new();
        s.bench_n("group/case", 128, 0, 2, || {});
        assert_eq!(s.records().len(), 1);
        assert_eq!(s.records()[0].n, 128);
        assert!(s.mean_ns("group/case").is_some());
        assert_eq!(s.mean_ns("missing"), None);
        let json = s.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"group/case\""));
        assert!(json.contains("\"n\":128"));
        assert!(json.trim_end().ends_with(']'));
        // A session without --json writes nothing.
        assert_eq!(s.finish().unwrap(), None);
    }

    #[test]
    fn record_json_escapes_quotes() {
        let r = BenchRecord {
            name: "a\"b".into(),
            n: 1,
            min_ns: 1,
            mean_ns: 2,
            max_ns: 3,
            tier: "scalar".into(),
        };
        assert!(r.to_json().contains("a\\\"b"));
        assert!(r.to_json().contains("\"tier\":\"scalar\""));
    }

    #[test]
    fn records_carry_the_machine_tier_and_old_baselines_parse_tierless() {
        let mut s = Session::new();
        s.bench_n("simd/distance_sq_ax2/auto/8", 8, 0, 1, || {});
        let want = sinr_geometry::hardware_tier().label();
        assert_eq!(s.records()[0].tier, want);
        let parsed = parse_records(&s.to_json());
        assert_eq!(parsed[0].tier, want);
        // A pre-tier baseline row degrades to an empty tier, not an error.
        let old = r#"[{"name":"oracle/exact/256","n":256,"min_ns":10,"mean_ns":20,"max_ns":30}]"#;
        let parsed = parse_records(old);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].tier, "");
    }

    #[test]
    fn pick_respects_quick() {
        let mut s = Session::new();
        assert_eq!(s.pick(10, 2), 10);
        s.quick = true;
        assert_eq!(s.pick(10, 2), 2);
    }

    #[test]
    fn parse_round_trips_serialized_records() {
        let mut s = Session::new();
        s.bench_n("phy/case_a/1", 128, 0, 2, || {});
        s.bench_n("broadcast/ca\"se_b", 64, 0, 2, || {});
        let parsed = parse_records(&s.to_json());
        assert_eq!(parsed, s.records());
    }

    #[test]
    fn parse_skips_malformed_objects() {
        let json = r#"[
  {"name":"ok","n":1,"min_ns":10,"mean_ns":20,"max_ns":30},
  {"name":"missing fields","n":2},
  {"garbage":true}
]"#;
        let parsed = parse_records(json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "ok");
        assert_eq!(parsed[0].min_ns, 10);
        assert_eq!(parsed[0].max_ns, 30);
        assert!(parse_records("").is_empty());
        assert!(parse_records("[not json").is_empty());
    }

    #[test]
    fn parse_tolerates_whitespace_around_colons() {
        // Hand-edited or pretty-printed baselines still gate correctly.
        let json = r#"[{"name": "a/b", "n": 4, "min_ns": 7, "mean_ns": 8, "max_ns": 9}]"#;
        let parsed = parse_records(json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "a/b");
        assert_eq!(parsed[0].n, 4);
        assert_eq!(parsed[0].mean_ns, 8);
    }

    #[test]
    fn write_filtered_selects_subset() {
        let mut s = Session::new();
        s.bench_n("phy/a", 1, 0, 1, || {});
        s.bench_n("other/b", 1, 0, 1, || {});
        let dir = std::env::temp_dir().join("sinr_bench_write_filtered_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("subset.json");
        s.write_filtered(&path, |r| r.name.starts_with("phy/"))
            .unwrap();
        let parsed = parse_records(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "phy/a");
        std::fs::remove_dir_all(&dir).ok();
    }
}
