//! The coloring benchmark suite: full `StabilizeProbability` executions
//! and the invariant verifiers.
//!
//! Shared by the `coloring` bench target and the `microbench` binary, so
//! the tracked `BENCH.json` carries the same cases the interactive bench
//! prints. Naming scheme: `coloring/<case>/<n>`.

use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_netgen::uniform;
use sinr_phy::SinrParams;

use crate::microbench::{black_box, Session};

/// Runs the suite into `session`. Under `--quick` only the smallest size
/// runs, with fewer iterations.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let sizes: &[usize] = if session.quick { &[128] } else { &[128, 256] };
    let iters = session.pick(5, 3);
    for &n in sizes {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
        session.bench_n(&format!("coloring/stabilize/{n}"), n, 1, iters, || {
            black_box(run_stabilize(pts.clone(), &params, consts, 5).expect("valid"));
        });
    }

    let n = *sizes.last().expect("non-empty sizes");
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
    let run = run_stabilize(pts.clone(), &params, consts, 5).expect("valid");
    session.bench_n(
        &format!("coloring/invariant_report/{n}"),
        n,
        1,
        iters,
        || {
            black_box(invariant_report(&pts, &run.coloring, params.eps()));
        },
    );
}
