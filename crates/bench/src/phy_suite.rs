//! The physical-layer benchmark suite: pre-oracle baseline vs the
//! stateful [`ReceptionOracle`], across interference modes and sizes.
//!
//! Shared by the `interference` bench target and the `microbench` binary
//! (which CI runs to produce the tracked `BENCH_phy.json`), so the
//! committed perf trajectory and the interactive bench measure the same
//! cases. Naming scheme: `legacy/...` is the frozen pre-PR implementation
//! ([`crate::legacy`]), `oracle/...` the reusable zero-allocation oracle.

use sinr_geometry::GridIndex;
use sinr_netgen::uniform;
use sinr_phy::{InterferenceMode, ReceptionOracle, RoundOutcome, SinrParams};

use crate::legacy;
use crate::microbench::{black_box, Session};

/// Stations per unit square in the dense-uniform deployments (the load the
/// ISSUE's ≥5× target is measured at).
pub const DENSITY: f64 = 30.0;

/// Runs the suite into `session`. Under `--quick` the largest size drops
/// from 10⁴ to 2 500 stations and iteration counts shrink.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();
    let sizes: &[usize] = if session.quick {
        &[256, 1024, 2500]
    } else {
        &[256, 1024, 4096, 10_000]
    };
    for &n in sizes {
        let side = uniform::side_for_density(n, DENSITY);
        let pts = uniform::square(n, side, 7);
        let grid = GridIndex::build(&pts, 1.0);
        // ~2% of stations transmit (typical dissemination load).
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        let mut oracle = ReceptionOracle::for_stations(n);
        let mut out = RoundOutcome::empty();

        let compat_modes = [
            ("exact", InterferenceMode::Exact),
            ("truncated_r4", InterferenceMode::Truncated { radius: 4.0 }),
            (
                "cell_aggregate_r4",
                InterferenceMode::CellAggregate { near_radius: 4.0 },
            ),
        ];
        for (tag, mode) in compat_modes {
            session.bench(&format!("legacy/{tag}/{n}"), n, || {
                black_box(legacy::resolve_round(&pts, &params, &tx, mode, Some(&grid)));
            });
            session.bench(&format!("oracle/{tag}/{n}"), n, || {
                oracle.resolve_into(&pts, &params, &tx, mode, Some(&grid), &mut out);
                black_box(&out);
            });
        }
        session.bench(&format!("oracle/grid_native_r4/{n}"), n, || {
            oracle.resolve_into(
                &pts,
                &params,
                &tx,
                InterferenceMode::grid_native(),
                Some(&grid),
                &mut out,
            );
            black_box(&out);
        });
    }

    // Transmitter-density scaling of the exact kernel (legacy vs oracle).
    let n = session.pick(1024, 512);
    let side = uniform::side_for_density(n, DENSITY);
    let pts = uniform::square(n, side, 11);
    let mut oracle = ReceptionOracle::for_stations(n);
    let mut out = RoundOutcome::empty();
    for &pct in &[2usize, 10, 25] {
        let tx: Vec<usize> = (0..n).step_by(100 / pct).collect();
        session.bench(&format!("legacy/exact_pct{pct}/{n}"), n, || {
            black_box(legacy::resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::Exact,
                None,
            ));
        });
        session.bench(&format!("oracle/exact_pct{pct}/{n}"), n, || {
            oracle.resolve_into(&pts, &params, &tx, InterferenceMode::Exact, None, &mut out);
            black_box(&out);
        });
    }

    report_speedups(session, sizes[sizes.len() - 1]);
}

/// Prints the headline speedups the ISSUE tracks: the grid-native
/// exact-decode path vs the pre-PR oracle at the largest size.
fn report_speedups(session: &Session, n: usize) {
    let native = session.mean_ns(&format!("oracle/grid_native_r4/{n}"));
    for baseline in ["cell_aggregate_r4", "exact"] {
        let legacy = session.mean_ns(&format!("legacy/{baseline}/{n}"));
        if let (Some(l), Some(o)) = (legacy, native) {
            println!(
                "speedup oracle/grid_native_r4 vs legacy/{baseline} at n={n}: {:.1}x",
                l as f64 / o.max(1) as f64
            );
        }
    }
}
