//! The physical-layer benchmark suite: the staged, batched
//! [`ReceptionOracle`] across interference modes, sizes and physics
//! thread counts — plus, under the `legacy-parity` feature, the frozen
//! pre-oracle baseline.
//!
//! Shared by the `interference` bench target and the `microbench` binary
//! (which CI runs to produce the tracked `BENCH.json`; the physical-layer
//! records also land in the historical `BENCH_phy.json` alias), so the
//! committed perf trajectory and the interactive bench measure the same
//! cases. Naming scheme: `legacy/...` is the frozen pre-PR2
//! implementation ([`crate::legacy`], `legacy-parity` builds only),
//! `oracle/...` the reusable zero-allocation oracle;
//! `oracle/grid_native_r4_t<k>/...` rows shard the accumulate stage
//! across `k` physics threads ([`KernelPool`]).

use sinr_geometry::GridIndex;
use sinr_netgen::uniform;
use sinr_phy::{InterferenceMode, KernelPool, ReceptionOracle, RoundOutcome, SinrParams};

#[cfg(feature = "legacy-parity")]
use crate::legacy;
use crate::microbench::{black_box, Session};

/// Stations per unit square in the dense-uniform deployments (the load the
/// tracked speedups are measured at).
pub const DENSITY: f64 = 30.0;

/// Runs the suite into `session`. Under `--quick` the largest size drops
/// from 10⁴ to 2 500 stations, the 10⁵ sharded rows are skipped and
/// iteration counts shrink.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();
    let sizes: &[usize] = if session.quick {
        &[256, 1024, 2500]
    } else {
        &[256, 1024, 4096, 10_000]
    };
    for &n in sizes {
        let side = uniform::side_for_density(n, DENSITY);
        let pts = uniform::square(n, side, 7);
        let grid = GridIndex::build(&pts, 1.0);
        // ~2% of stations transmit (typical dissemination load).
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        let mut oracle = ReceptionOracle::for_stations(n);
        let mut out = RoundOutcome::empty();

        let compat_modes = [
            ("exact", InterferenceMode::Exact),
            ("truncated_r4", InterferenceMode::Truncated { radius: 4.0 }),
            (
                "cell_aggregate_r4",
                InterferenceMode::CellAggregate { near_radius: 4.0 },
            ),
        ];
        for (tag, mode) in compat_modes {
            #[cfg(feature = "legacy-parity")]
            session.bench(&format!("legacy/{tag}/{n}"), n, || {
                black_box(legacy::resolve_round(&pts, &params, &tx, mode, Some(&grid)));
            });
            session.bench(&format!("oracle/{tag}/{n}"), n, || {
                oracle.resolve_into(&pts, &params, &tx, mode, Some(&grid), &mut out);
                black_box(&out);
            });
        }
        session.bench(&format!("oracle/grid_native_r4/{n}"), n, || {
            oracle.resolve_into(
                &pts,
                &params,
                &tx,
                InterferenceMode::grid_native(),
                Some(&grid),
                &mut out,
            );
            black_box(&out);
        });
    }

    // The sharded grid-native kernel: the scaling rows the ROADMAP's
    // per-round-parallelism item tracks. `_t1` is the single-thread
    // baseline the `_t2`/`_t8` rows are compared against **in the same
    // file** (thread speedups are meaningless across machines).
    let shard_sizes: &[usize] = if session.quick {
        &[2500]
    } else {
        &[10_000, 100_000]
    };
    for &n in shard_sizes {
        let side = uniform::side_for_density(n, DENSITY);
        let pts = uniform::square(n, side, 7);
        let grid = GridIndex::build(&pts, 1.0);
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        let mut oracle = ReceptionOracle::for_stations(n);
        let mut out = RoundOutcome::empty();
        for threads in [1usize, 2, 8] {
            let mut pool = KernelPool::new(threads);
            session.bench(&format!("oracle/grid_native_r4_t{threads}/{n}"), n, || {
                oracle.resolve_into_with(
                    &pts,
                    &params,
                    &tx,
                    InterferenceMode::grid_native(),
                    Some(&grid),
                    &mut pool,
                    &mut out,
                );
                black_box(&out);
            });
        }
    }

    // Transmitter-density scaling of the exact kernel (legacy vs oracle).
    let n = session.pick(1024, 512);
    let side = uniform::side_for_density(n, DENSITY);
    let pts = uniform::square(n, side, 11);
    let mut oracle = ReceptionOracle::for_stations(n);
    let mut out = RoundOutcome::empty();
    for &pct in &[2usize, 10, 25] {
        let tx: Vec<usize> = (0..n).step_by(100 / pct).collect();
        #[cfg(feature = "legacy-parity")]
        session.bench(&format!("legacy/exact_pct{pct}/{n}"), n, || {
            black_box(legacy::resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::Exact,
                None,
            ));
        });
        session.bench(&format!("oracle/exact_pct{pct}/{n}"), n, || {
            oracle.resolve_into(&pts, &params, &tx, InterferenceMode::Exact, None, &mut out);
            black_box(&out);
        });
    }

    report_speedups(session, sizes[sizes.len() - 1], shard_sizes);
}

/// Prints the headline speedups the repository tracks: the grid-native
/// exact-decode path vs the pre-PR oracle at the largest size (when the
/// legacy baseline is compiled in), and the sharded kernel vs its own
/// single-thread row.
fn report_speedups(session: &Session, n: usize, shard_sizes: &[usize]) {
    let native = session.mean_ns(&format!("oracle/grid_native_r4/{n}"));
    for baseline in ["cell_aggregate_r4", "exact"] {
        let legacy = session.mean_ns(&format!("legacy/{baseline}/{n}"));
        if let (Some(l), Some(o)) = (legacy, native) {
            println!(
                "speedup oracle/grid_native_r4 vs legacy/{baseline} at n={n}: {:.1}x",
                l as f64 / o.max(1) as f64
            );
        }
    }
    for &n in shard_sizes {
        let t1 = session.mean_ns(&format!("oracle/grid_native_r4_t1/{n}"));
        for threads in [2, 8] {
            let tk = session.mean_ns(&format!("oracle/grid_native_r4_t{threads}/{n}"));
            if let (Some(base), Some(sharded)) = (t1, tk) {
                println!(
                    "speedup oracle/grid_native_r4_t{threads} vs _t1 at n={n}: {:.2}x",
                    base as f64 / sharded.max(1) as f64
                );
            }
        }
    }
}
