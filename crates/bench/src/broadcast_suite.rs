//! The broadcast benchmark suite: end-to-end protocol runs (one per
//! theorem) and the baselines on a fixed cluster chain, plus the sweep
//! path itself — all through the `Scenario` API.
//!
//! Shared by the `broadcast` bench target and the `microbench` binary, so
//! the tracked `BENCH.json` carries the same cases the interactive bench
//! prints. Naming scheme: `broadcast/chain_d4/<case>`.

use sinr_core::Constants;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

use crate::microbench::{black_box, Session};

/// Runs the suite into `session`. Under `--quick` the multi-seed sweep
/// rows are skipped and iteration counts shrink.
pub fn run(session: &mut Session) {
    let consts = Constants::tuned();
    let d = 4u32;
    let per_cluster = 10;
    let n = (d as usize + 1) * per_cluster;
    let topology = TopologySpec::ClusterChain {
        diameter: d,
        per_cluster,
    };
    let seed = 3;

    let cases: Vec<(&str, ProtocolSpec, u64)> = vec![
        (
            "s_broadcast",
            ProtocolSpec::SBroadcast { source: 0 },
            2_000_000,
        ),
        (
            "nos_broadcast",
            ProtocolSpec::NoSBroadcast { source: 0 },
            consts.phase_rounds(n) * (u64::from(d) + 4) * 2,
        ),
        (
            "daum",
            ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: None,
            },
            2_000_000,
        ),
        (
            "flood_p02",
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.2 },
            2_000_000,
        ),
    ];
    for (name, spec, budget) in cases {
        let sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(spec)
            .budget(budget)
            .build()
            .expect("valid scenario");
        session.bench(&format!("broadcast/chain_d4/{name}"), n, || {
            black_box(sim.run(seed).expect("valid"));
        });
    }

    // The sweep path itself: 8 seeds serially vs under the machine's
    // thread budget (resolved once per Simulation).
    if !session.quick {
        let sim = Scenario::new(topology)
            .constants(consts)
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(2_000_000)
            .build()
            .expect("valid scenario");
        let seeds: Vec<u64> = (0..8).collect();
        session.bench("broadcast/chain_d4/sweep8_serial", n, || {
            black_box(sim.sweep_with_threads(&seeds, 1).expect("valid"));
        });
        session.bench("broadcast/chain_d4/sweep8_budget", n, || {
            black_box(sim.sweep(&seeds).expect("valid"));
        });
    }
}
