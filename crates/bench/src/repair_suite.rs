//! The repair benchmark suite: incremental epoch repair of the spatial
//! index and communication graph versus the full in-place rebuild — the
//! measured case for O(moved) epoch cost at million-station scale.
//!
//! Rows (all under the `repair/` prefix, gated by the CI `bench_gate`
//! job like every other tracked kernel):
//!
//! * `repair/full_rebuild/<n>` — one epoch boundary the pre-repair way:
//!   [`GridIndex::rebuild_from`] plus [`CommGraph::rebuild_from`] over
//!   the whole population, whatever moved;
//! * `repair/epoch_repair/<n>/p{0.1,1,10}` — the same boundary through
//!   [`GridIndex::repair_with_policy`] + [`CommGraph::repair`] with
//!   0.1% / 1% / 10% of the stations displaced, forced incremental
//!   ([`sinr_geometry::RepairPolicy::AlwaysIncremental`]) so the row
//!   measures the repair path even where `Auto` would fall back.
//!
//! Every iteration displaces the same mover set by an alternating ±δ so
//! the work is stationary across iterations, and both paths produce
//! bit-identical structures (the repair equivalence batteries pin this;
//! the suite asserts it once per size as a sanity check).
//!
//! The deployment density is kept at 10 stations per unit square — a
//! third of the physics suites' — purely so the n=10⁶ rows (≈10⁷ edges,
//! double-buffered) stay within container memory; the repair-vs-rebuild
//! ratio is insensitive to density.

use sinr_geometry::{GridIndex, RepairPolicy};
use sinr_netgen::uniform;
use sinr_phy::{CommGraph, SinrParams};

use crate::microbench::{black_box, Session};

/// Stations per unit square for the repair deployments (see module docs
/// for why this is lower than [`crate::phy_suite::DENSITY`]).
pub const REPAIR_DENSITY: f64 = 10.0;

/// Mover fractions measured, as (row tag, fraction) pairs.
const MOVER_FRACTIONS: &[(&str, f64)] = &[("p0.1", 0.001), ("p1", 0.01), ("p10", 0.10)];

/// Runs the suite into `session`. Under `--quick` only the n=10⁴
/// deployment runs (matching a committed full size, so CI smoke runs
/// still gate the rows).
pub fn run(session: &mut Session) {
    let radius = SinrParams::default_plane().comm_radius();
    let sizes: &[(usize, usize)] = if session.quick {
        &[(10_000, 15)]
    } else {
        &[(10_000, 15), (100_000, 8), (1_000_000, 3)]
    };
    for &(n, iters) in sizes {
        let side = uniform::side_for_density(n, REPAIR_DENSITY);
        let pts0 = uniform::square(n, side, 7);

        // The baseline epoch boundary: full in-place rebuilds of both
        // structures. 1% of the stations move per epoch — the rebuild
        // cost is O(n) regardless, so one row per size suffices.
        let movers = mover_set(n, 0.01);
        let mut pts = pts0.clone();
        let mut grid = GridIndex::build(&pts, 1.0);
        let mut graph = CommGraph::build(&pts, radius);
        let mut sign = 0.25f64;
        session.bench_n(&format!("repair/full_rebuild/{n}"), n, 1, iters, || {
            for &j in &movers {
                pts[j].x += sign;
            }
            sign = -sign;
            grid.rebuild_from(&pts);
            graph.rebuild_from::<sinr_geometry::Point2>(&pts, None);
            black_box(graph.num_edges());
        });

        for &(tag, fraction) in MOVER_FRACTIONS {
            let movers = mover_set(n, fraction);
            let mut pts = pts0.clone();
            let mut grid = GridIndex::build(&pts, 1.0);
            let mut graph = CommGraph::build(&pts, radius);
            // Prime the graph's owned index (static builds drop it; the
            // first repair would otherwise measure the one-time regrow).
            graph.rebuild_from::<sinr_geometry::Point2>(&pts, None);
            let mut sign = 0.25f64;
            session.bench_n(
                &format!("repair/epoch_repair/{n}/{tag}"),
                n,
                1,
                iters,
                || {
                    for &j in &movers {
                        pts[j].x += sign;
                    }
                    sign = -sign;
                    grid.repair_with_policy(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
                    graph.repair(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
                    black_box(graph.num_edges());
                },
            );
            // Once per size/fraction: the repaired structures are the
            // fresh builds, bit for bit.
            debug_assert_eq!(grid, GridIndex::build(&pts, 1.0));
            debug_assert_eq!(graph, CommGraph::build(&pts, radius));
        }
    }
}

/// The `fraction` of `n` stations a repair epoch displaces, evenly
/// strided so movers spread across cells.
fn mover_set(n: usize, fraction: f64) -> Vec<usize> {
    let k = ((n as f64 * fraction) as usize).max(1);
    let stride = (n / k).max(1);
    (0..k).map(|i| i * stride).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mover_sets_are_sized_and_in_range() {
        for &(_, f) in MOVER_FRACTIONS {
            let movers = mover_set(10_000, f);
            assert_eq!(movers.len(), ((10_000.0 * f) as usize).max(1));
            assert!(movers.iter().all(|&i| i < 10_000));
        }
        assert_eq!(mover_set(10, 0.001), vec![0], "at least one mover");
    }

    #[test]
    fn bench_kernel_paths_agree_bitwise() {
        // A miniature of the suite's measured loop: repair vs full
        // rebuild after the alternating displacement, bit-identical.
        let radius = SinrParams::default_plane().comm_radius();
        let n = 600;
        let side = uniform::side_for_density(n, REPAIR_DENSITY);
        let pts0 = uniform::square(n, side, 7);
        let movers = mover_set(n, 0.01);
        let mut pts = pts0.clone();
        let mut grid = GridIndex::build(&pts, 1.0);
        let mut graph = CommGraph::build(&pts, radius);
        graph.rebuild_from::<sinr_geometry::Point2>(&pts, None);
        let mut sign = 0.25f64;
        for _ in 0..4 {
            for &j in &movers {
                pts[j].x += sign;
            }
            sign = -sign;
            grid.repair_with_policy(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
            graph.repair(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
            assert_eq!(grid, GridIndex::build(&pts, 1.0));
            assert_eq!(graph, CommGraph::build(&pts, radius));
        }
    }
}
