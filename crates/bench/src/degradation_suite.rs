//! The degradation benchmark suite: the kernels of the fault-injection
//! and graceful-degradation subsystem, plus the degradation-curve table.
//!
//! Rows (all under the `degradation/` prefix, gated by the CI
//! `bench_gate` job like every other tracked kernel):
//!
//! * `degradation/estimator/observe/65536` — the online ν-estimator's
//!   per-listening-round hot path ([`sinr_core::NuEstimator::observe`]):
//!   65 536 observations with a decode every fifth round, the
//!   steady-state mix where the silence run never reaches the window;
//! * `degradation/cut_vertices/<n>` — the articulation-point pass
//!   ([`sinr_phy::CommGraph::cut_vertices_into`]) a cut-vertex kill
//!   schedule pays per strike: one scratch-reusing iterative Tarjan
//!   DFS, `O(n+m)`;
//! * `degradation/fault_plan_epoch/<n>` — one adversary boundary as the
//!   engine shapes it: in-place communication-graph refresh plus a
//!   composed blackout + jamming plan over the refreshed graph.
//!
//! After the rows, full (non-`--quick`) runs print the degradation-curve
//! table: final live-population coverage, completion latency and energy
//! of the fixed-ν re-flood baseline versus the online-ν estimating
//! re-flood, across cut-vertex kill intensities — the measured shape of
//! "degrade in latency, not in coverage" (see
//! `examples/adversarial_broadcast.rs` for the pinned single-seed
//! story).

use sinr_core::NuEstimator;
use sinr_netgen::uniform;
use sinr_phy::{GraphScratch, Network, SinrParams};
use sinr_runtime::{
    BlackoutAdversary, FaultDelta, FaultPlan, FaultPlanSet, FaultView, JamAdversary,
};
use sinr_sim::{AdversarySpec, ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Table};

use crate::microbench::{black_box, Session};
use crate::phy_suite::DENSITY;

/// Runs the suite into `session`. Under `--quick` the sizes shrink to a
/// single small deployment and the curve table is skipped.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();

    // The estimator's hot path: one branchy update per listening round
    // of every estimating station — the cost the online estimate adds
    // over a burned-in ν. A decode every fifth observation keeps the
    // silence run below the window, so this measures the common no-grow
    // path rather than the rare doubling.
    let mut est = NuEstimator::new(4, 8, 1 << 20);
    session.bench_n("degradation/estimator/observe/65536", 65_536, 3, 20, || {
        for i in 0..65_536u32 {
            est.observe(i % 5 == 0);
        }
        black_box(est.nu());
    });

    // The articulation-point pass. A single iterative Tarjan DFS made
    // this linear (it was an O(n·(n+m)) remove-and-re-BFS probe), so the
    // row scales to the 10⁴ deployment the epoch-boundary adversaries
    // actually strike.
    let cut_sizes: &[usize] = if session.quick {
        &[2_500]
    } else {
        &[2_500, 10_000]
    };
    for &n0 in cut_sizes {
        let pts = uniform::square(n0, uniform::side_for_density(n0, DENSITY), 7);
        let cut_net = Network::new(pts, params).expect("generated deployment is valid");
        let mut scratch = GraphScratch::new();
        let mut cuts = Vec::new();
        session.bench_n(&format!("degradation/cut_vertices/{n0}"), n0, 1, 5, || {
            cut_net
                .comm_graph()
                .cut_vertices_into(&mut scratch, &mut cuts);
            black_box(cuts.len());
        });
    }

    // One adversary boundary, engine-shaped: refresh the communication
    // graph in place, then run a recurring composed plan against it.
    // Blackout + jam keeps the per-epoch work stationary (the cut-vertex
    // strike is a one-shot; its kernel is the row above).
    let sizes: &[usize] = if session.quick {
        &[2_500]
    } else {
        &[2_500, 10_000]
    };
    for &n in sizes {
        let pts = uniform::square(n, uniform::side_for_density(n, DENSITY), 7);
        let mut net = Network::new(pts, params).expect("generated deployment is valid");
        let mut plans = FaultPlanSet::new();
        plans.push(Box::new(BlackoutAdversary::new(0.02, 2, 11)));
        plans.push(Box::new(JamAdversary::new(16, 13)));
        let mut delta = FaultDelta::default();
        let mut plan_scratch = GraphScratch::new();
        let mut epoch = 0u64;
        session.bench(&format!("degradation/fault_plan_epoch/{n}"), n, || {
            net.refresh_comm_graph();
            delta.clear();
            let view = FaultView {
                epoch,
                round: (epoch + 1) * 8,
                alive: net.alive(),
                graph: net.comm_graph(),
                next_phase: None,
                protected: 0,
            };
            plans.plan(&view, &mut delta, &mut plan_scratch);
            epoch += 1;
            black_box(delta.kills.len() + delta.jammers.len());
        });
    }

    if !session.quick {
        println!("{}", curve_table().render());
    }
}

/// The degradation-curve table: fixed-ν re-flood versus online-ν
/// estimating re-flood under increasing cut-vertex kill intensities,
/// both starting from the same (badly wrong) estimate ν₀ = 2.
///
/// Columns: mean final live-population coverage over the seeds, mean
/// rounds of the completed runs (`-` when none completed — the latency
/// cost of adapting is visible only where coverage survives), mean
/// transmissions (energy) and the completion tally.
pub fn curve_table() -> Table {
    let seeds: Vec<u64> = (1..=5).collect();
    let mut table = Table::new(vec![
        "kill fraction",
        "protocol",
        "coverage(mean)",
        "rounds(mean)",
        "tx(mean)",
        "ok",
    ]);
    for &fraction in &[0.0, 0.10, 0.25, 0.40] {
        for online in [false, true] {
            let protocol = if online {
                ProtocolSpec::ReFloodBroadcastEstimate {
                    source: 0,
                    nu0: 2,
                    burst_rounds: 512,
                }
            } else {
                ProtocolSpec::ReFloodBroadcast {
                    source: 0,
                    p: 1.0,
                    burst_rounds: 512,
                }
            };
            let sim = Scenario::new(TopologySpec::ConnectedSquareDensity {
                n: 120,
                density: 40.0,
            })
            .protocol(protocol)
            .fast_physics()
            .adversary(AdversarySpec::cut_vertex_kill(fraction, 1, 8))
            .budget(1_500)
            .build()
            .expect("valid degradation scenario");
            let sweep = sim.sweep(&seeds).expect("degradation sweep");
            let coverage = sweep
                .runs
                .iter()
                .map(|r| r.faults.as_ref().map_or(1.0, |f| f.final_coverage()))
                .sum::<f64>()
                / sweep.runs.len() as f64;
            let energy = sweep
                .runs
                .iter()
                .map(|r| r.total_transmissions as f64)
                .sum::<f64>()
                / sweep.runs.len() as f64;
            table.row(vec![
                format!("{fraction:.2}"),
                if online { "online-ν" } else { "fixed-ν" }.into(),
                format!("{coverage:.3}"),
                sweep
                    .rounds_summary()
                    .map_or_else(|| "-".into(), |s| fmt_f64(s.mean)),
                fmt_f64(energy),
                sweep.ok_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_table_separates_the_strategies() {
        // A single-seed, tiny-budget rendition of the table's claim:
        // same deployment, same adversary, same ν₀ — the online estimate
        // keeps coverage the fixed probability loses. (The full table is
        // measurement output; this pins its qualitative shape.)
        let build = |online: bool| {
            let protocol = if online {
                ProtocolSpec::ReFloodBroadcastEstimate {
                    source: 0,
                    nu0: 2,
                    burst_rounds: 512,
                }
            } else {
                ProtocolSpec::ReFloodBroadcast {
                    source: 0,
                    p: 1.0,
                    burst_rounds: 512,
                }
            };
            Scenario::new(TopologySpec::ConnectedSquareDensity {
                n: 120,
                density: 40.0,
            })
            .protocol(protocol)
            .fast_physics()
            .adversary(AdversarySpec::cut_vertex_kill(0.25, 1, 8))
            .budget(1_500)
            .build()
            .expect("valid scenario")
        };
        let fixed = build(false).run(2014).expect("fixed run");
        let online = build(true).run(2014).expect("online run");
        let cover = |r: &sinr_sim::RunReport| r.faults.as_ref().expect("faulted").final_coverage();
        assert!(cover(&fixed) < 0.95, "fixed-ν must stall under the kill");
        assert!(cover(&online) >= 0.95, "online-ν must keep coverage");
    }

    #[test]
    fn fault_plan_epoch_row_is_deterministic() {
        // The row's kernel replayed from scratch produces the identical
        // fault sequence — the bench measures deterministic work.
        let run_once = || {
            let pts = uniform::square(500, uniform::side_for_density(500, DENSITY), 7);
            let net = Network::new(pts, SinrParams::default_plane()).expect("valid");
            let mut plans = FaultPlanSet::new();
            plans.push(Box::new(BlackoutAdversary::new(0.02, 2, 11)));
            plans.push(Box::new(JamAdversary::new(16, 13)));
            let mut delta = FaultDelta::default();
            let mut scratch = GraphScratch::new();
            let mut log = Vec::new();
            for epoch in 0..4 {
                delta.clear();
                let view = FaultView {
                    epoch,
                    round: (epoch + 1) * 8,
                    alive: net.alive(),
                    graph: net.comm_graph(),
                    next_phase: None,
                    protected: 0,
                };
                plans.plan(&view, &mut delta, &mut scratch);
                log.push((
                    delta.kills.clone(),
                    delta.returns.clone(),
                    delta.jammers.clone(),
                ));
            }
            log
        };
        assert_eq!(run_once(), run_once());
    }
}
