//! Experiment configuration.

/// Shared configuration for experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Reduce sizes/trials for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Master seed; every trial derives its own seed from this.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: false,
            seed: 20140714, // PODC 2014
        }
    }
}

impl ExpConfig {
    /// Picks `full` or `quick` depending on the mode.
    pub fn pick<T: Copy>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Seed for trial `t` of experiment `exp`.
    pub fn trial_seed(&self, exp: u64, t: u64) -> u64 {
        sinr_runtime::derive_seed(self.seed, exp, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_mode() {
        let full = ExpConfig {
            quick: false,
            seed: 1,
        };
        let quick = ExpConfig {
            quick: true,
            seed: 1,
        };
        assert_eq!(full.pick(10, 2), 10);
        assert_eq!(quick.pick(10, 2), 2);
    }

    #[test]
    fn trial_seeds_distinct() {
        let cfg = ExpConfig::default();
        assert_ne!(cfg.trial_seed(1, 0), cfg.trial_seed(1, 1));
        assert_ne!(cfg.trial_seed(1, 0), cfg.trial_seed(2, 0));
    }
}
