//! A1 — ablation: the `c_ε` Playoff scale-up.
//!
//! The mechanism binds on the paper's footnote-4 adversary: a dense core
//! whose unit-ball mass makes `DensityTest` fire early, with isolated
//! satellites whose own ε/2-balls are empty. With a small `c_ε`, Playoff
//! receptions arrive unjammed from the core and the satellites quit at the
//! very first level — collapsing the Lemma 2 floor. The tuned `c_ε = 40`
//! scales the core's transmissions into a jam that only ε/2-local traffic
//! survives, so the satellites keep doubling and finish at `2·p_max`.

use sinr_core::Constants;
use sinr_stats::Table;

use crate::experiments::a2::invariant_rows;
use crate::ExpConfig;

/// Runs A1 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let n = cfg.pick(512, 128);
    let sweeps: &[f64] = cfg.pick(&[1.0, 5.0, 10.0, 20.0, 40.0, 80.0], &[5.0, 40.0]);
    let trials = cfg.pick(2, 1);

    let mut table = Table::new(vec![
        "c_eps",
        "family",
        "lemma1 worst",
        "lemma2 worst",
        "floor (p_max/4)",
        "holds",
    ]);
    for &c_eps in sweeps {
        let consts = Constants {
            c_eps,
            ..Constants::tuned()
        };
        let floor = consts.p_max() / 4.0;
        invariant_rows(
            cfg,
            31,
            c_eps as u64,
            n,
            trials,
            consts,
            &sinr_stats::fmt_f64(c_eps),
            floor,
            &mut table,
        );
    }
    let mut out = String::from(
        "A1: ablation of the Playoff scale-up c_eps on footnote-4 adversaries\n\
         expect: small c_eps -> 'holds' false (satellites quit at p_start, Lemma 2\n\
         floor collapses); the tuned c_eps = 40 holds\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
