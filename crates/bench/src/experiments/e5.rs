//! E5 — Theorem 2: `SBroadcast` completes in `O(D log n + log² n)` rounds
//! whp.
//!
//! Sweeping `D` at (roughly) fixed `n`, then `n` at fixed `D`, and fitting
//! rounds against the two features `D·log n` and `log² n` should give a
//! good two-term fit — and `SBroadcast` should beat `NoSBroadcast` by a
//! `Θ(log n)` factor at large `D` (the paper's motivation for the
//! spontaneous model).

use sinr_core::{log2n, Constants};
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fit_least_squares, fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs E5 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let diameters: &[u32] = cfg.pick(&[2, 4, 8, 16, 32], &[2, 4]);
    let per_cluster = cfg.pick(12, 8);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "D",
        "n",
        "rounds(mean)",
        "rounds(max)",
        "rounds/(D*log)",
        "ok",
    ]);
    let mut rows_feat = Vec::new();
    let mut ys = Vec::new();
    for &d in diameters {
        let n = (d as usize + 1) * per_cluster;
        let sim = Scenario::new(TopologySpec::ClusterChain {
            diameter: d,
            per_cluster,
        })
        .constants(consts)
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .budget(consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 4 + 100_000)
        .build()
        .expect("valid scenario");
        let sweep = sweep_cell(cfg, 5, u64::from(d), trials, &sim);
        let l = log2n(n) as f64;
        let s = sweep.rounds_summary();
        if let Some(s) = &s {
            rows_feat.push(vec![f64::from(d) * l, l * l]);
            ys.push(s.mean);
        }
        table.row(vec![
            d.to_string(),
            n.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            s.map_or("-".into(), |s| fmt_f64(s.max)),
            s.map_or("-".into(), |s| fmt_f64(s.mean / (f64::from(d) * l))),
            sweep.ok_string(),
        ]);
    }
    let mut out = String::from(
        "E5: SBroadcast rounds on cluster chains (Theorem 2: O(D log n + log^2 n))\n\
         expect: two-term fit a*(D log n) + b*log^2 n with high R^2;\n\
         rounds/(D log n) approaching a constant at large D\n\n",
    );
    out.push_str(&table.render());
    if let Some(fit) = fit_least_squares(&rows_feat, &ys) {
        out.push_str(&format!(
            "\nfit rounds ~ a*D*log(n) + b*log^2(n): a = {}, b = {}, R^2 = {}\n",
            fmt_f64(fit.coefficients[0]),
            fmt_f64(fit.coefficients[1]),
            fmt_f64(fit.r_squared)
        ));
    }
    println!("{out}");
    out
}
