//! E5 — Theorem 2: `SBroadcast` completes in `O(D log n + log² n)` rounds
//! whp.
//!
//! Sweeping `D` at (roughly) fixed `n`, then `n` at fixed `D`, and fitting
//! rounds against the two features `D·log n` and `log² n` should give a
//! good two-term fit — and `SBroadcast` should beat `NoSBroadcast` by a
//! `Θ(log n)` factor at large `D` (the paper's motivation for the
//! spontaneous model).

use sinr_core::{log2n, run::run_s_broadcast, Constants};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;
use sinr_stats::{fit_least_squares, fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E5 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let diameters: &[u32] = cfg.pick(&[2, 4, 8, 16, 32], &[2, 4]);
    let per_cluster = cfg.pick(12, 8);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "D",
        "n",
        "rounds(mean)",
        "rounds(max)",
        "rounds/(D*log)",
        "ok",
    ]);
    let mut rows_feat = Vec::new();
    let mut ys = Vec::new();
    for &d in diameters {
        let n = (d as usize + 1) * per_cluster;
        let mut rounds = Vec::new();
        let mut oks = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(5, t as u64 * 1000 + d as u64);
            let pts = cluster::chain_for_diameter(d, per_cluster, &params, seed);
            let budget =
                consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 4 + 100_000;
            let rep = run_s_broadcast(pts, &params, consts, 0, seed, budget).expect("valid");
            if rep.completed {
                oks += 1;
                rounds.push(rep.rounds as f64);
            }
        }
        let l = log2n(n) as f64;
        let s = Summary::of(&rounds);
        if let Some(s) = &s {
            rows_feat.push(vec![d as f64 * l, l * l]);
            ys.push(s.mean);
        }
        table.row(vec![
            d.to_string(),
            n.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            s.map_or("-".into(), |s| fmt_f64(s.max)),
            s.map_or("-".into(), |s| fmt_f64(s.mean / (d as f64 * l))),
            format!("{oks}/{trials}"),
        ]);
    }
    let mut out = String::from(
        "E5: SBroadcast rounds on cluster chains (Theorem 2: O(D log n + log^2 n))\n\
         expect: two-term fit a*(D log n) + b*log^2 n with high R^2;\n\
         rounds/(D log n) approaching a constant at large D\n\n",
    );
    out.push_str(&table.render());
    if let Some(fit) = fit_least_squares(&rows_feat, &ys) {
        out.push_str(&format!(
            "\nfit rounds ~ a*D*log(n) + b*log^2(n): a = {}, b = {}, R^2 = {}\n",
            fmt_f64(fit.coefficients[0]),
            fmt_f64(fit.coefficients[1]),
            fmt_f64(fit.r_squared)
        ));
    }
    println!("{out}");
    out
}
