//! E3 — Lemma 2: after `StabilizeProbability`, every station has some
//! color whose probability mass inside `B(v, ε/2)` is at least a constant
//! `C₂`, across sizes and topology families.

use sinr_core::Constants;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::experiments::e2::measure_invariants;
use crate::ExpConfig;

/// Runs E3 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let sizes: &[usize] = cfg.pick(&[128, 256, 512, 1024], &[96, 192]);
    let trials = cfg.pick(3, 1);
    let acc = measure_invariants(cfg, 3, sizes, trials, consts);

    let mut table = Table::new(vec!["family", "n", "lemma2 mean", "lemma2 worst"]);
    for ((family, n), (_l1, l2, _)) in &acc {
        let s = Summary::of(l2).expect("non-empty");
        table.row(vec![
            family.clone(),
            n.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.min),
        ]);
    }
    let mut out = format!(
        "E3: Lemma 2 - min best-color mass in B(v, eps/2) (floor scale C2 = {}, p_max = {})\n\
         expect: 'lemma2 worst' bounded BELOW by a constant (>= p_max/2) across n and families\n\n",
        consts.c2_mass,
        consts.p_max()
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
