//! E9 — baseline comparison across density regimes: the coloring-based
//! broadcast vs fixed-probability flooding (two settings of `p`), adaptive
//! local-broadcast flooding, and the decay baseline, on a uniform square, a
//! dense cluster chain and a geometric line.
//!
//! The story the paper's introduction tells: no fixed probability works in
//! all regimes, and granularity-aware baselines pay for it — the coloring
//! adapts.

use sinr_phy::SinrParams;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

use crate::{sweep_table, ExpConfig, SweepRow};

/// Runs E9 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(96, 48);
    let budget = 2_000_000;

    let topologies: Vec<(&str, TopologySpec)> = vec![
        (
            "uniform",
            TopologySpec::ConnectedSquareDensity { n, density: 30.0 },
        ),
        (
            "clusters",
            TopologySpec::ClusterChain {
                diameter: 5,
                per_cluster: n / 6,
            },
        ),
        (
            "geom-line",
            TopologySpec::GranularityLine {
                n,
                max_gap: params.comm_radius(),
                rs_target: 1e6,
                min_gap: 2e-9,
            },
        ),
    ];
    let algos: Vec<(&str, ProtocolSpec)> = vec![
        ("SBroadcast", ProtocolSpec::SBroadcast { source: 0 }),
        (
            "flood p=0.2",
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.2 },
        ),
        (
            "flood p=1/n",
            ProtocolSpec::FloodBroadcast {
                source: 0,
                p: 1.0 / n as f64,
            },
        ),
        ("local-bcast", ProtocolSpec::LocalBroadcast { source: 0 }),
        (
            "daum",
            ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: None,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, topology) in &topologies {
        for (algo_name, spec) in &algos {
            let sim = Scenario::new(topology.clone())
                .protocol(spec.clone())
                .budget(budget)
                .build()
                .expect("valid scenario");
            // Same tag for every algorithm on a topology: identical seeds,
            // so contenders race on identical deployments.
            rows.push(SweepRow::new(
                vec![name.to_string(), algo_name.to_string()],
                0,
                sim,
            ));
        }
    }
    let table = sweep_table(
        cfg,
        9,
        trials,
        vec!["topology", "algorithm", "rounds(mean)", "ok"],
        rows,
    );
    let mut out = String::from(
        "E9: algorithm comparison across density regimes\n\
         expect: no single flood p wins everywhere; daum suffers on geom-line;\n\
         SBroadcast completes everywhere with competitive rounds\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
