//! E9 — baseline comparison across density regimes: the coloring-based
//! broadcast vs fixed-probability flooding (two settings of `p`), adaptive
//! local-broadcast flooding, and the decay baseline, on a uniform square, a
//! dense cluster chain and a geometric line.
//!
//! The story the paper's introduction tells: no fixed probability works in
//! all regimes, and granularity-aware baselines pay for it — the coloring
//! adapts.

use sinr_core::{
    run::{run_daum_broadcast, run_flood_broadcast, run_local_broadcast, run_s_broadcast},
    Constants,
};
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E9 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(96, 48);
    let budget = 2_000_000;

    let topologies: Vec<(&str, Box<dyn Fn(u64) -> Vec<sinr_geometry::Point2>>)> = vec![
        (
            "uniform",
            Box::new(move |seed| {
                uniform::connected_square(n, uniform::side_for_density(n, 30.0), &params, seed)
                    .expect("connected")
            }),
        ),
        (
            "clusters",
            Box::new(move |seed| cluster::chain_for_diameter(5, n / 6, &params, seed)),
        ),
        (
            "geom-line",
            Box::new(move |_| line::granularity_line(n, params.comm_radius(), 1e6, 2e-9)),
        ),
    ];

    let mut table = Table::new(vec![
        "topology",
        "algorithm",
        "rounds(mean)",
        "ok",
    ]);
    for (name, gen) in &topologies {
        type Algo<'a> = (&'a str, Box<dyn Fn(Vec<sinr_geometry::Point2>, u64) -> (bool, u64)>);
        let algos: Vec<Algo> = vec![
            (
                "SBroadcast",
                Box::new(move |pts, seed| {
                    let r = run_s_broadcast(pts, &params, consts, 0, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "flood p=0.2",
                Box::new(move |pts, seed| {
                    let r = run_flood_broadcast(pts, &params, 0, 0.2, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "flood p=1/n",
                Box::new(move |pts, seed| {
                    let p = 1.0 / pts.len() as f64;
                    let r = run_flood_broadcast(pts, &params, 0, p, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "local-bcast",
                Box::new(move |pts, seed| {
                    let r = run_local_broadcast(pts, &params, 0, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "daum",
                Box::new(move |pts, seed| {
                    let r = run_daum_broadcast(pts, &params, 0, None, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
        ];
        for (algo_name, algo) in &algos {
            let mut rounds = Vec::new();
            let mut oks = 0;
            for t in 0..trials {
                let seed = cfg.trial_seed(9, t as u64);
                let pts = gen(seed);
                let (ok, r) = algo(pts, seed);
                if ok {
                    oks += 1;
                    rounds.push(r as f64);
                }
            }
            let s = Summary::of(&rounds);
            table.row(vec![
                name.to_string(),
                algo_name.to_string(),
                s.map_or("-".into(), |s| fmt_f64(s.mean)),
                format!("{oks}/{trials}"),
            ]);
        }
    }
    let mut out = String::from(
        "E9: algorithm comparison across density regimes\n\
         expect: no single flood p wins everywhere; daum suffers on geom-line;\n\
         SBroadcast completes everywhere with competitive rounds\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
