//! E2 — Lemma 1: after `StabilizeProbability`, the per-color probability
//! mass in every unit ball stays below a constant `C₁`, independent of `n`
//! and of the topology family.

use std::collections::BTreeMap;

use sinr_core::{invariant_report, Constants};
use sinr_phy::SinrParams;
use sinr_sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Summary, Table};

use crate::{sweep_cell, ExpConfig};

/// Named topology families used by E2/E3/A1/A2, as declarative specs.
pub fn families(n: usize, params: &SinrParams) -> Vec<(&'static str, TopologySpec)> {
    let clusters = (n / 24).max(2);
    vec![
        (
            "uniform",
            TopologySpec::ConnectedSquareDensity { n, density: 30.0 },
        ),
        (
            "clusters",
            TopologySpec::ClusterChain {
                diameter: (clusters - 1) as u32,
                per_cluster: n / clusters,
            },
        ),
        (
            "geom-line",
            TopologySpec::GranularityLine {
                n,
                max_gap: params.comm_radius(),
                rs_target: 1e6,
                min_gap: 2e-9,
            },
        ),
    ]
}

/// Lemma 1 masses, Lemma 2 masses and max color count per (family, n).
pub type InvariantSamples = BTreeMap<(String, usize), (Vec<f64>, Vec<f64>, usize)>;

/// Per-(family, n) Lemma 1 and Lemma 2 measurements over several trials:
/// a coloring `Scenario` per family, materialized points paired with each
/// run's coloring outcome.
pub fn measure_invariants(
    cfg: &ExpConfig,
    exp_id: u64,
    sizes: &[usize],
    trials: usize,
    consts: Constants,
) -> InvariantSamples {
    let params = SinrParams::default_plane();
    let mut acc: InvariantSamples = BTreeMap::new();
    for &n in sizes {
        for (fi, (family, spec)) in families(n, &params).into_iter().enumerate() {
            let sim = Scenario::new(spec)
                .params(params)
                .constants(consts)
                .protocol(ProtocolSpec::Coloring)
                .build()
                .expect("fixed-schedule protocol");
            let tag = n as u64 * 10 + fi as u64;
            let sweep = sweep_cell(cfg, exp_id, tag, trials, &sim);
            for run in &sweep.runs {
                let pts = sim.materialize(run.seed).expect("same stream as the run");
                let coloring = match &run.outcome {
                    Outcome::Coloring { coloring } => coloring,
                    other => unreachable!("coloring outcome expected, got {other:?}"),
                };
                let rep = invariant_report(&pts, coloring, params.eps());
                let entry = acc
                    .entry((family.to_string(), n))
                    .or_insert_with(|| (Vec::new(), Vec::new(), 0));
                entry.0.push(rep.max_unit_ball_mass);
                entry.1.push(rep.min_close_mass);
                entry.2 = entry.2.max(rep.num_colors);
            }
        }
    }
    acc
}

/// Runs E2 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let sizes: &[usize] = cfg.pick(&[128, 256, 512, 1024], &[96, 192]);
    let trials = cfg.pick(3, 1);
    let acc = measure_invariants(cfg, 2, sizes, trials, consts);

    let mut table = Table::new(vec![
        "family",
        "n",
        "lemma1 mean",
        "lemma1 worst",
        "colors(max)",
    ]);
    for ((family, n), (l1, _l2, colors)) in &acc {
        let s = Summary::of(l1).expect("non-empty");
        table.row(vec![
            family.clone(),
            n.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.max),
            colors.to_string(),
        ]);
    }
    let mut out = format!(
        "E2: Lemma 1 - max per-color unit-ball mass (cap C1 = {})\n\
         expect: 'lemma1 worst' bounded by a constant across n and families\n\n",
        consts.c1_cap
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
