//! E2 — Lemma 1: after `StabilizeProbability`, the per-color probability
//! mass in every unit ball stays below a constant `C₁`, independent of `n`
//! and of the topology family.

use std::collections::BTreeMap;

use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_geometry::Point2;
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Named topology families used by E2/E3/A1/A2.
pub fn families(
    n: usize,
    params: &SinrParams,
    seed: u64,
) -> Vec<(&'static str, Vec<Point2>)> {
    let mut out = Vec::new();
    let side = uniform::side_for_density(n, 30.0);
    if let Some(pts) = uniform::connected_square(n, side, params, seed) {
        out.push(("uniform", pts));
    }
    let clusters = (n / 24).max(2);
    out.push((
        "clusters",
        cluster::chain_for_diameter((clusters - 1) as u32, n / clusters, params, seed),
    ));
    out.push((
        "geom-line",
        line::granularity_line(n, params.comm_radius(), 1e6, 2e-9),
    ));
    out
}

/// Per-(family, n) Lemma 1 and Lemma 2 measurements over several trials.
pub fn measure_invariants(
    cfg: &ExpConfig,
    exp_id: u64,
    sizes: &[usize],
    trials: usize,
    consts: Constants,
) -> BTreeMap<(String, usize), (Vec<f64>, Vec<f64>, usize)> {
    let params = SinrParams::default_plane();
    let mut acc: BTreeMap<(String, usize), (Vec<f64>, Vec<f64>, usize)> = BTreeMap::new();
    for &n in sizes {
        for t in 0..trials {
            let seed = cfg.trial_seed(exp_id, t as u64 * 100_000 + n as u64);
            for (family, pts) in families(n, &params, seed) {
                let run = run_stabilize(pts.clone(), &params, consts, seed).expect("valid");
                let rep = invariant_report(&pts, &run.coloring, params.eps());
                let entry = acc
                    .entry((family.to_string(), n))
                    .or_insert_with(|| (Vec::new(), Vec::new(), 0));
                entry.0.push(rep.max_unit_ball_mass);
                entry.1.push(rep.min_close_mass);
                entry.2 = entry.2.max(rep.num_colors);
            }
        }
    }
    acc
}

/// Runs E2 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let sizes: &[usize] = cfg.pick(&[128, 256, 512, 1024], &[96, 192]);
    let trials = cfg.pick(3, 1);
    let acc = measure_invariants(cfg, 2, sizes, trials, consts);

    let mut table = Table::new(vec!["family", "n", "lemma1 mean", "lemma1 worst", "colors(max)"]);
    for ((family, n), (l1, _l2, colors)) in &acc {
        let s = Summary::of(l1).expect("non-empty");
        table.row(vec![
            family.clone(),
            n.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.max),
            colors.to_string(),
        ]);
    }
    let mut out = format!(
        "E2: Lemma 1 - max per-color unit-ball mass (cap C1 = {})\n\
         expect: 'lemma1 worst' bounded by a constant across n and families\n\n",
        consts.c1_cap
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
