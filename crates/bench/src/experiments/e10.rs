//! E10 — robustness to the population estimate ν.
//!
//! The paper (Section 1.1) only requires stations to share an estimate
//! `ν ≥ n` with `ν = O(n^c)`; the bounds then read `O(D log ν + log² ν)` /
//! `O(D log² ν)`. Inflating ν by powers of 4 should slow the broadcast by
//! (poly)logarithmic factors only — and never break it.

use sinr_core::{log2n, run::run_s_broadcast_with_estimate, Constants};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E10 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let d = cfg.pick(6u32, 3);
    let per = cfg.pick(10, 6);
    let n = (d as usize + 1) * per;
    let factors: &[usize] = cfg.pick(&[1, 4, 16, 64], &[1, 16]);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "nu/n",
        "nu",
        "log2(nu)",
        "rounds(mean)",
        "rounds/log2(nu)",
        "ok",
    ]);
    for &f in factors {
        let nu = n * f;
        let mut rounds = Vec::new();
        let mut oks = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(10, t as u64 * 1000 + f as u64);
            let pts = cluster::chain_for_diameter(d, per, &params, seed);
            let budget = consts.coloring_rounds(nu) + consts.wakeup_window(nu, d) * 4;
            let rep =
                run_s_broadcast_with_estimate(pts, &params, consts, 0, nu, seed, budget)
                    .expect("valid");
            if rep.completed {
                oks += 1;
                rounds.push(rep.rounds as f64);
            }
        }
        let s = Summary::of(&rounds);
        let l = log2n(nu) as f64;
        table.row(vec![
            f.to_string(),
            nu.to_string(),
            fmt_f64(l),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            s.map_or("-".into(), |s| fmt_f64(s.mean / l)),
            format!("{oks}/{trials}"),
        ]);
    }
    let mut out = format!(
        "E10: robustness to the population estimate nu (true n = {n}, D = {d})\n\
         expect: completion at every nu; rounds grow ~log(nu) (rounds/log2(nu) ~flat)\n\n"
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
