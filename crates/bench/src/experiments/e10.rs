//! E10 — robustness to the population estimate ν.
//!
//! The paper (Section 1.1) only requires stations to share an estimate
//! `ν ≥ n` with `ν = O(n^c)`; the bounds then read `O(D log ν + log² ν)` /
//! `O(D log² ν)`. Inflating ν by powers of 4 should slow the broadcast by
//! (poly)logarithmic factors only — and never break it.

use sinr_core::{log2n, Constants};
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::fmt_f64;

use crate::{sweep_table, ExpConfig, SweepRow};

/// Runs E10 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let d = cfg.pick(6u32, 3);
    let per = cfg.pick(10, 6);
    let n = (d as usize + 1) * per;
    let factors: &[usize] = cfg.pick(&[1, 4, 16, 64], &[1, 16]);
    let trials = cfg.pick(5, 2);

    let mut rows = Vec::new();
    for &f in factors {
        let nu = n * f;
        let sim = Scenario::new(TopologySpec::ClusterChain {
            diameter: d,
            per_cluster: per,
        })
        .constants(consts)
        .protocol(ProtocolSpec::SBroadcastWithEstimate { source: 0, nu })
        .budget(consts.coloring_rounds(nu) + consts.wakeup_window(nu, d) * 4)
        .build()
        .expect("valid scenario");
        let l = log2n(nu) as f64;
        rows.push(
            SweepRow::new(
                vec![f.to_string(), nu.to_string(), fmt_f64(l)],
                f as u64,
                sim,
            )
            .with_extra(move |sweep| {
                vec![sweep
                    .rounds_summary()
                    .map_or("-".into(), |s| fmt_f64(s.mean / l))]
            }),
        );
    }
    let table = sweep_table(
        cfg,
        10,
        trials,
        vec![
            "nu/n",
            "nu",
            "log2(nu)",
            "rounds(mean)",
            "ok",
            "rounds/log2(nu)",
        ],
        rows,
    );
    let mut out = format!(
        "E10: robustness to the population estimate nu (true n = {n}, D = {d})\n\
         expect: completion at every nu; rounds grow ~log(nu) (rounds/log2(nu) ~flat)\n\n"
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
