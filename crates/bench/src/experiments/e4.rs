//! E4 — Theorem 1: `NoSBroadcast` completes in `O(D log² n)` rounds whp.
//!
//! Chains of clusters give exact control of the diameter `D`; the fit of
//! measured rounds against the feature `D·log² n` should be proportional
//! (flat ratio, high R²).

use sinr_core::{log2n, run::run_nos_broadcast, Constants};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;
use sinr_stats::{fit_proportional, fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E4 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let diameters: &[u32] = cfg.pick(&[2, 4, 8, 16], &[2, 4]);
    let per_cluster = cfg.pick(12, 8);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "D",
        "n",
        "rounds(mean)",
        "rounds(max)",
        "rounds/(D*log^2)",
        "ok",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in diameters {
        let mut rounds = Vec::new();
        let mut oks = 0;
        let n = (d as usize + 1) * per_cluster;
        for t in 0..trials {
            let seed = cfg.trial_seed(4, t as u64 * 1000 + d as u64);
            let pts = cluster::chain_for_diameter(d, per_cluster, &params, seed);
            let budget = consts.phase_rounds(n) * (d as u64 + 4) * 2;
            let rep = run_nos_broadcast(pts, &params, consts, 0, seed, budget).expect("valid");
            if rep.completed {
                oks += 1;
                rounds.push(rep.rounds as f64);
            }
        }
        let l = log2n(n);
        let feature = d as f64 * (l * l) as f64;
        let s = Summary::of(&rounds);
        if let Some(s) = &s {
            xs.push(feature);
            ys.push(s.mean);
        }
        table.row(vec![
            d.to_string(),
            n.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            s.map_or("-".into(), |s| fmt_f64(s.max)),
            s.map_or("-".into(), |s| fmt_f64(s.mean / feature)),
            format!("{oks}/{trials}"),
        ]);
    }
    let fit = fit_proportional(&xs, &ys);
    let mut out = String::from(
        "E4: NoSBroadcast rounds on cluster chains (Theorem 1: O(D log^2 n))\n\
         expect: rounds/(D*log^2 n) roughly flat in D; proportional fit with high R^2\n\n",
    );
    out.push_str(&table.render());
    if let Some((a, r2)) = fit {
        out.push_str(&format!(
            "\nfit rounds ~ a * D*log^2(n): a = {}, R^2 = {}\n",
            fmt_f64(a),
            fmt_f64(r2)
        ));
    }
    println!("{out}");
    out
}
