//! E4 — Theorem 1: `NoSBroadcast` completes in `O(D log² n)` rounds whp.
//!
//! Chains of clusters give exact control of the diameter `D`; the fit of
//! measured rounds against the feature `D·log² n` should be proportional
//! (flat ratio, high R²).

use sinr_core::{log2n, Constants};
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fit_proportional, fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs E4 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let diameters: &[u32] = cfg.pick(&[2, 4, 8, 16], &[2, 4]);
    let per_cluster = cfg.pick(12, 8);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "D",
        "n",
        "rounds(mean)",
        "rounds(max)",
        "rounds/(D*log^2)",
        "ok",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in diameters {
        let n = (d as usize + 1) * per_cluster;
        let sim = Scenario::new(TopologySpec::ClusterChain {
            diameter: d,
            per_cluster,
        })
        .constants(consts)
        .protocol(ProtocolSpec::NoSBroadcast { source: 0 })
        .budget(consts.phase_rounds(n) * (u64::from(d) + 4) * 2)
        .build()
        .expect("valid scenario");
        let sweep = sweep_cell(cfg, 4, u64::from(d), trials, &sim);
        let l = log2n(n);
        let feature = f64::from(d) * (l * l) as f64;
        let s = sweep.rounds_summary();
        if let Some(s) = &s {
            xs.push(feature);
            ys.push(s.mean);
        }
        table.row(vec![
            d.to_string(),
            n.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            s.map_or("-".into(), |s| fmt_f64(s.max)),
            s.map_or("-".into(), |s| fmt_f64(s.mean / feature)),
            sweep.ok_string(),
        ]);
    }
    let fit = fit_proportional(&xs, &ys);
    let mut out = String::from(
        "E4: NoSBroadcast rounds on cluster chains (Theorem 1: O(D log^2 n))\n\
         expect: rounds/(D*log^2 n) roughly flat in D; proportional fit with high R^2\n\n",
    );
    out.push_str(&table.render());
    if let Some((a, r2)) = fit {
        out.push_str(&format!(
            "\nfit rounds ~ a * D*log^2(n): a = {}, R^2 = {}\n",
            fmt_f64(a),
            fmt_f64(r2)
        ));
    }
    println!("{out}");
    out
}
