//! E12 — the title question quantified: what does geometry knowledge buy?
//!
//! Races the paper's geometry-blind `SBroadcast` against the GPS-oracle
//! grid TDMA (full coordinates *plus* an in-cell contention oracle — the
//! strongest form of geometric knowledge, subsuming references [14, 15])
//! across the topology families. The paper's thesis: the gap is at most
//! polylogarithmic — geometry knowledge changes constants, not the shape.

use sinr_phy::SinrParams;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs E12 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(96, 48);
    let budget = 2_000_000;

    let topologies: Vec<(&str, TopologySpec)> = vec![
        (
            "uniform",
            TopologySpec::ConnectedSquareDensity { n, density: 30.0 },
        ),
        (
            "clusters",
            TopologySpec::ClusterChain {
                diameter: 5,
                per_cluster: n / 6,
            },
        ),
        (
            "geom-line",
            TopologySpec::GranularityLine {
                n,
                max_gap: params.comm_radius(),
                rs_target: 1e6,
                min_gap: 2e-9,
            },
        ),
        (
            "core-sats",
            TopologySpec::CoreAndSatellites {
                core_n: n - 12,
                sat_n: 12,
                core_radius: 0.2,
                sat_distance: 0.6,
            },
        ),
    ];

    let mut table = Table::new(vec![
        "topology",
        "no-GPS (ours)",
        "ok",
        "GPS oracle",
        "ok",
        "price of blindness",
    ]);
    for (name, topology) in &topologies {
        let ours_sim = Scenario::new(topology.clone())
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(budget)
            .build()
            .expect("valid scenario");
        let gps_sim = Scenario::new(topology.clone())
            .protocol(ProtocolSpec::GpsOracleBroadcast { source: 0 })
            .budget(budget)
            .build()
            .expect("valid scenario");
        // Same tag: both contenders race on identical per-seed deployments.
        let ours = sweep_cell(cfg, 12, 0, trials, &ours_sim);
        let gps = sweep_cell(cfg, 12, 0, trials, &gps_sim);
        let so = ours.rounds_summary();
        let sg = gps.rounds_summary();
        let ratio = match (&so, &sg) {
            (Some(a), Some(b)) if b.mean > 0.0 => fmt_f64(a.mean / b.mean),
            _ => "-".into(),
        };
        table.row(vec![
            name.to_string(),
            so.map_or("-".into(), |s| fmt_f64(s.mean)),
            ours.ok_string(),
            sg.map_or("-".into(), |s| fmt_f64(s.mean)),
            gps.ok_string(),
            ratio,
        ]);
    }
    let mut out = String::from(
        "E12: the title question - geometry-blind broadcast vs a GPS-oracle TDMA\n\
         expect: the oracle wins everywhere (it knows everything), but only by a\n\
         bounded polylog factor - the paper's thesis that geometry knowledge is\n\
         worth at most O(log^2 n)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
