//! E12 — the title question quantified: what does geometry knowledge buy?
//!
//! Races the paper's geometry-blind `SBroadcast` against the GPS-oracle
//! grid TDMA (full coordinates *plus* an in-cell contention oracle — the
//! strongest form of geometric knowledge, subsuming references [14, 15])
//! across the topology families. The paper's thesis: the gap is at most
//! polylogarithmic — geometry knowledge changes constants, not the shape.

use sinr_core::{
    baselines::run_gps_oracle_broadcast,
    run::run_s_broadcast,
    Constants,
};
use sinr_geometry::Point2;
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E12 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(96, 48);
    let budget = 2_000_000;

    let topologies: Vec<(&str, Box<dyn Fn(u64) -> Vec<Point2>>)> = vec![
        (
            "uniform",
            Box::new(move |seed| {
                uniform::connected_square(n, uniform::side_for_density(n, 30.0), &params, seed)
                    .expect("connected")
            }),
        ),
        (
            "clusters",
            Box::new(move |seed| cluster::chain_for_diameter(5, n / 6, &params, seed)),
        ),
        (
            "geom-line",
            Box::new(move |_| line::granularity_line(n, params.comm_radius(), 1e6, 2e-9)),
        ),
        (
            "core-sats",
            Box::new(move |seed| cluster::core_and_satellites(n - 12, 12, 0.2, 0.6, seed)),
        ),
    ];

    let mut table = Table::new(vec![
        "topology",
        "no-GPS (ours)",
        "ok",
        "GPS oracle",
        "ok",
        "price of blindness",
    ]);
    for (name, gen) in &topologies {
        let mut ours = Vec::new();
        let mut ours_ok = 0;
        let mut gps = Vec::new();
        let mut gps_ok = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(12, t as u64);
            let pts = gen(seed);
            let rep =
                run_s_broadcast(pts.clone(), &params, consts, 0, seed, budget).expect("valid");
            if rep.completed {
                ours_ok += 1;
                ours.push(rep.rounds as f64);
            }
            let rep = run_gps_oracle_broadcast(pts, &params, 0, seed, budget).expect("valid");
            if rep.completed {
                gps_ok += 1;
                gps.push(rep.rounds as f64);
            }
        }
        let so = Summary::of(&ours);
        let sg = Summary::of(&gps);
        let ratio = match (&so, &sg) {
            (Some(a), Some(b)) if b.mean > 0.0 => fmt_f64(a.mean / b.mean),
            _ => "-".into(),
        };
        table.row(vec![
            name.to_string(),
            so.map_or("-".into(), |s| fmt_f64(s.mean)),
            format!("{ours_ok}/{trials}"),
            sg.map_or("-".into(), |s| fmt_f64(s.mean)),
            format!("{gps_ok}/{trials}"),
            ratio,
        ]);
    }
    let mut out = String::from(
        "E12: the title question - geometry-blind broadcast vs a GPS-oracle TDMA\n\
         expect: the oracle wins everywhere (it knows everything), but only by a\n\
         bounded polylog factor - the paper's thesis that geometry knowledge is\n\
         worth at most O(log^2 n)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
