//! E7 — Section 5 applications: ad hoc wake-up (`O(D log² n)`), consensus
//! (`O(D log n·log x + log² n·log x)`), and leader election
//! (`O(D log² n + log³ n)`).

use sinr_core::{
    consensus::domain_bits,
    run::{run_adhoc_wakeup, run_consensus, run_leader_election},
    Constants,
};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;
use sinr_runtime::WakeSchedule;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E7 and returns the rendered tables.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(3, 1);
    let d = cfg.pick(6u32, 3);
    let per_cluster = cfg.pick(8, 6);
    let n = (d as usize + 1) * per_cluster;

    let mut out = String::new();

    // --- wake-up under three adversarial schedules ---
    let mut wt = Table::new(vec!["schedule", "rounds-from-first-wake(mean)", "ok"]);
    let schedules: Vec<(&str, WakeSchedule)> = vec![
        ("single@0", WakeSchedule::single(0, 0)),
        ("all@0", WakeSchedule::AllAt(0)),
        ("staggered", WakeSchedule::Staggered { start: 0, gap: 50 }),
    ];
    for (name, schedule) in &schedules {
        let mut rounds = Vec::new();
        let mut oks = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(7, t as u64);
            let pts = cluster::chain_for_diameter(d, per_cluster, &params, seed);
            let budget = consts.phase_rounds(n) * (d as u64 + 6) * 3
                + schedule.first_wake(n).unwrap_or(0)
                + n as u64 * 60; // staggered wakes spread over n*gap rounds
            let rep = run_adhoc_wakeup(pts, &params, consts, schedule, seed, budget)
                .expect("valid");
            if rep.completed {
                oks += 1;
                rounds.push(rep.rounds_from_first_wake as f64);
            }
        }
        let s = Summary::of(&rounds);
        wt.row(vec![
            name.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            format!("{oks}/{trials}"),
        ]);
    }
    out.push_str(&format!(
        "E7a: ad hoc wake-up on a D={d} cluster chain (n={n}); expect O(D log^2 n)\n\n{}",
        wt.render()
    ));

    // --- consensus: domain sweep ---
    let mut ct = Table::new(vec!["x(domain)", "bits", "rounds", "agreement", "valid"]);
    let domains: &[u64] = cfg.pick(&[3, 15, 255], &[3]);
    for &x in domains {
        let bits = domain_bits(x);
        let mut agree_all = true;
        let mut valid_all = true;
        let mut rounds = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(17, t as u64 * 10 + x);
            let pts = cluster::chain_for_diameter(d, per_cluster, &params, seed);
            let m = pts.len();
            let values: Vec<u64> = (0..m as u64).map(|i| (i * 7 + 3) % (x + 1)).collect();
            let rep = run_consensus(pts, &params, consts, &values, bits, d, seed).expect("valid");
            agree_all &= rep.agreement;
            valid_all &= rep.valid;
            rounds = rep.rounds;
        }
        ct.row(vec![
            x.to_string(),
            bits.to_string(),
            rounds.to_string(),
            agree_all.to_string(),
            valid_all.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nE7b: consensus on a D={d} chain; expect rounds ~ log(x)*(D log n + log^2 n)\n\n{}",
        ct.render()
    ));

    // --- leader election ---
    let mut lt = Table::new(vec!["trial", "rounds", "unique leader"]);
    for t in 0..trials {
        let seed = cfg.trial_seed(27, t as u64);
        let pts = cluster::chain_for_diameter(d, per_cluster, &params, seed);
        let rep = run_leader_election(pts, &params, consts, d, seed).expect("valid");
        lt.row(vec![
            t.to_string(),
            rep.rounds.to_string(),
            rep.unique.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nE7c: leader election on a D={d} chain; expect O(D log^2 n + log^3 n), unique leader whp\n\n{}",
        lt.render()
    ));

    println!("{out}");
    out
}
