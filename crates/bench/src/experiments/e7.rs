//! E7 — Section 5 applications: ad hoc wake-up (`O(D log² n)`), consensus
//! (`O(D log n·log x + log² n·log x)`), and leader election
//! (`O(D log² n + log³ n)`).

use sinr_core::{consensus::domain_bits, Constants};
use sinr_runtime::WakeSchedule;
use sinr_sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Summary, Table};

use crate::{sweep_cell, trial_seeds, ExpConfig};

/// Runs E7 and returns the rendered tables.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let trials = cfg.pick(3, 1);
    let d = cfg.pick(6u32, 3);
    let per_cluster = cfg.pick(8, 6);
    let n = (d as usize + 1) * per_cluster;
    let topology = TopologySpec::ClusterChain {
        diameter: d,
        per_cluster,
    };

    let mut out = String::new();

    // --- wake-up under three adversarial schedules ---
    let mut wt = Table::new(vec!["schedule", "rounds-from-first-wake(mean)", "ok"]);
    let schedules: Vec<(&str, WakeSchedule)> = vec![
        ("single@0", WakeSchedule::single(0, 0)),
        ("all@0", WakeSchedule::AllAt(0)),
        ("staggered", WakeSchedule::Staggered { start: 0, gap: 50 }),
    ];
    for (si, (name, schedule)) in schedules.iter().enumerate() {
        let budget = consts.phase_rounds(n) * (u64::from(d) + 6) * 3
            + schedule.first_wake(n).unwrap_or(0)
            + n as u64 * 60; // staggered wakes spread over n*gap rounds
        let sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(ProtocolSpec::AdhocWakeup {
                schedule: schedule.clone(),
            })
            .budget(budget)
            .build()
            .expect("valid scenario");
        let sweep = sweep_cell(cfg, 7, si as u64, trials, &sim);
        let rounds: Vec<f64> = sweep
            .runs
            .iter()
            .filter(|r| r.completed)
            .map(|r| match r.outcome {
                Outcome::Wakeup {
                    rounds_from_first_wake,
                    ..
                } => rounds_from_first_wake as f64,
                ref other => unreachable!("wakeup outcome expected, got {other:?}"),
            })
            .collect();
        let s = Summary::of(&rounds);
        wt.row(vec![
            name.to_string(),
            s.map_or("-".into(), |s| fmt_f64(s.mean)),
            sweep.ok_string(),
        ]);
    }
    out.push_str(&format!(
        "E7a: ad hoc wake-up on a D={d} cluster chain (n={n}); expect O(D log^2 n)\n\n{}",
        wt.render()
    ));

    // --- consensus: domain sweep ---
    let mut ct = Table::new(vec!["x(domain)", "bits", "rounds", "agreement", "valid"]);
    let domains: &[u64] = cfg.pick(&[3, 15, 255], &[3]);
    for &x in domains {
        let bits = domain_bits(x);
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % (x + 1)).collect();
        let sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(ProtocolSpec::Consensus {
                values,
                bits,
                d_bound: d,
            })
            .build()
            .expect("fixed-schedule protocol");
        let sweep = sim
            .sweep(&trial_seeds(cfg, 17, x, trials))
            .expect("valid scenario");
        let mut agree_all = true;
        let mut valid_all = true;
        let mut rounds = 0;
        for run in &sweep.runs {
            match run.outcome {
                Outcome::Consensus {
                    agreement, valid, ..
                } => {
                    agree_all &= agreement;
                    valid_all &= valid;
                }
                ref other => unreachable!("consensus outcome expected, got {other:?}"),
            }
            rounds = run.rounds;
        }
        ct.row(vec![
            x.to_string(),
            bits.to_string(),
            rounds.to_string(),
            agree_all.to_string(),
            valid_all.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nE7b: consensus on a D={d} chain; expect rounds ~ log(x)*(D log n + log^2 n)\n\n{}",
        ct.render()
    ));

    // --- leader election ---
    let mut lt = Table::new(vec!["trial", "rounds", "unique leader"]);
    let sim = Scenario::new(topology)
        .constants(consts)
        .protocol(ProtocolSpec::LeaderElection { d_bound: d })
        .build()
        .expect("fixed-schedule protocol");
    let sweep = sim
        .sweep(&trial_seeds(cfg, 27, 0, trials))
        .expect("valid scenario");
    for (t, run) in sweep.runs.iter().enumerate() {
        let unique = match run.outcome {
            Outcome::Leader { unique, .. } => unique,
            ref other => unreachable!("leader outcome expected, got {other:?}"),
        };
        lt.row(vec![
            t.to_string(),
            run.rounds.to_string(),
            unique.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nE7c: leader election on a D={d} chain; expect O(D log^2 n + log^3 n), unique leader whp\n\n{}",
        lt.render()
    ));

    println!("{out}");
    out
}
