//! E8 — whp success: with the fixed tuned constants, both broadcast
//! algorithms succeed within their asymptotic budgets in (nearly) all
//! trials, and the failure rate does not grow with `n`.

use sinr_core::Constants;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

use crate::{sweep_table, ExpConfig, SweepRow};

/// Runs E8 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let trials = cfg.pick(20, 4);
    let d = 4u32;
    let sizes_per_cluster: &[usize] = cfg.pick(&[8, 16, 32], &[8]);

    let mut rows = Vec::new();
    for (pi, &per) in sizes_per_cluster.iter().enumerate() {
        let n = (d as usize + 1) * per;
        let topology = TopologySpec::ClusterChain {
            diameter: d,
            per_cluster: per,
        };
        let s_sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 3)
            .build()
            .expect("valid scenario");
        rows.push(SweepRow::new(
            vec![n.to_string(), d.to_string(), "S".into()],
            pi as u64 * 2,
            s_sim,
        ));
        let nos_sim = Scenario::new(topology)
            .constants(consts)
            .protocol(ProtocolSpec::NoSBroadcast { source: 0 })
            .budget(consts.phase_rounds(n) * (u64::from(d) + 3))
            .build()
            .expect("valid scenario");
        rows.push(SweepRow::new(
            vec![n.to_string(), d.to_string(), "NoS".into()],
            pi as u64 * 2 + 1,
            nos_sim,
        ));
    }
    let table = sweep_table(
        cfg,
        8,
        trials,
        vec!["n", "D", "algorithm", "rounds(mean)", "ok"],
        rows,
    );
    let mut out = String::from(
        "E8: success rates within the asymptotic budgets (whp claim)\n\
         expect: ~all trials succeed at every n (failure rate not growing with n)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
