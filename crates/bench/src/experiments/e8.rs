//! E8 — whp success: with the fixed tuned constants, both broadcast
//! algorithms succeed within their asymptotic budgets in (nearly) all
//! trials, and the failure rate does not grow with `n`.

use sinr_core::{
    run::{run_nos_broadcast, run_s_broadcast},
    Constants,
};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;
use sinr_stats::Table;

use crate::ExpConfig;

/// Runs E8 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(20, 4);
    let d = 4u32;
    let sizes_per_cluster: &[usize] = cfg.pick(&[8, 16, 32], &[8]);

    let mut table = Table::new(vec!["n", "D", "S ok", "NoS ok"]);
    for &per in sizes_per_cluster {
        let n = (d as usize + 1) * per;
        let mut s_ok = 0;
        let mut nos_ok = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(8, t as u64 * 100 + per as u64);
            let pts = cluster::chain_for_diameter(d, per, &params, seed);
            let s_budget =
                consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 3;
            if run_s_broadcast(pts.clone(), &params, consts, 0, seed, s_budget)
                .expect("valid")
                .completed
            {
                s_ok += 1;
            }
            let nos_budget = consts.phase_rounds(n) * (d as u64 + 3);
            if run_nos_broadcast(pts, &params, consts, 0, seed, nos_budget)
                .expect("valid")
                .completed
            {
                nos_ok += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            d.to_string(),
            format!("{s_ok}/{trials}"),
            format!("{nos_ok}/{trials}"),
        ]);
    }
    let mut out = String::from(
        "E8: success rates within the asymptotic budgets (whp claim)\n\
         expect: ~all trials succeed at every n (failure rate not growing with n)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
