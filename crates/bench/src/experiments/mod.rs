//! One module per experiment; each exposes `run(&ExpConfig) -> String`
//! printing and returning its table.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use crate::ExpConfig;

/// Runs an experiment by id; `None` for unknown ids.
pub fn run_by_id(id: &str, cfg: &ExpConfig) -> Option<String> {
    let out = match id {
        "e1" => e1::run(cfg),
        "e2" => e2::run(cfg),
        "e3" => e3::run(cfg),
        "e4" => e4::run(cfg),
        "e5" => e5::run(cfg),
        "e6" => e6::run(cfg),
        "e7" => e7::run(cfg),
        "e8" => e8::run(cfg),
        "e9" => e9::run(cfg),
        "e10" => e10::run(cfg),
        "e11" => e11::run(cfg),
        "e12" => e12::run(cfg),
        "a1" => a1::run(cfg),
        "a2" => a2::run(cfg),
        "a3" => a3::run(cfg),
        _ => return None,
    };
    Some(out)
}

/// All experiment ids in canonical order.
pub const ALL_IDS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
];
