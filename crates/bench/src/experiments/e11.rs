//! E11 — hard instances: bridge corridors, rings and two-tier densities.
//!
//! These push the density-adaptation story beyond E9's benign sizes. The
//! two-tier instance is the paper introduction's core example: a single
//! flooding probability tuned to the dense half jams it (or crawls in the
//! sparse half when tuned the other way), while the coloring assigns each
//! half its own level. The bridge funnels all traffic through a thin
//! corridor bathed in blob interference.

use sinr_core::{
    run::{run_flood_broadcast, run_s_broadcast},
    Constants,
};
use sinr_geometry::Point2;
use sinr_netgen::shapes;
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E11 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(3, 2);
    let budget = 120_000;

    let topologies: Vec<(&str, Box<dyn Fn(u64) -> Vec<Point2>>)> = vec![
        (
            "bridge",
            Box::new(move |seed| shapes::bridge(cfg.pick(40, 16), 8, 1.0, &params, seed)),
        ),
        (
            "ring",
            Box::new(move |seed| {
                let n = cfg.pick(48, 24);
                shapes::ring(n, n as f64 * 0.4 / std::f64::consts::TAU, seed)
            }),
        ),
        (
            "two-tier",
            Box::new(move |seed| shapes::two_tier(cfg.pick(90, 45), 15, 1.2, seed)),
        ),
    ];

    let mut table = Table::new(vec!["topology", "algorithm", "rounds(mean)", "ok"]);
    for (name, gen) in &topologies {
        type Algo<'a> = (&'a str, Box<dyn Fn(Vec<Point2>, u64) -> (bool, u64)>);
        let algos: Vec<Algo> = vec![
            (
                "SBroadcast",
                Box::new(move |pts, seed| {
                    let r = run_s_broadcast(pts, &params, consts, 0, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "flood p=0.5",
                Box::new(move |pts, seed| {
                    let r = run_flood_broadcast(pts, &params, 0, 0.5, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
            (
                "flood p=0.05",
                Box::new(move |pts, seed| {
                    let r =
                        run_flood_broadcast(pts, &params, 0, 0.05, seed, budget).expect("valid");
                    (r.completed, r.rounds)
                }),
            ),
        ];
        for (algo_name, algo) in &algos {
            let mut rounds = Vec::new();
            let mut oks = 0;
            for t in 0..trials {
                let seed = cfg.trial_seed(11, t as u64);
                let pts = gen(seed);
                let (ok, r) = algo(pts, seed);
                if ok {
                    oks += 1;
                    rounds.push(r as f64);
                }
            }
            let s = Summary::of(&rounds);
            table.row(vec![
                name.to_string(),
                algo_name.to_string(),
                s.map_or("-".into(), |s| fmt_f64(s.mean)),
                format!("{oks}/{trials}"),
            ]);
        }
    }
    let mut out = String::from(
        "E11: hard instances (bridge / ring / two-tier density)\n\
         expect: SBroadcast completes everywhere; aggressive flooding (p=0.5)\n\
         degrades or fails under dense-interference funnels; timid flooding\n\
         (p=0.05) crawls on sparse stretches\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
