//! E11 — hard instances: bridge corridors, rings and two-tier densities.
//!
//! These push the density-adaptation story beyond E9's benign sizes. The
//! two-tier instance is the paper introduction's core example: a single
//! flooding probability tuned to the dense half jams it (or crawls in the
//! sparse half when tuned the other way), while the coloring assigns each
//! half its own level. The bridge funnels all traffic through a thin
//! corridor bathed in blob interference.

use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

use crate::{sweep_table, ExpConfig, SweepRow};

/// Runs E11 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let trials = cfg.pick(3, 2);
    let budget = 120_000;

    let ring_n = cfg.pick(48, 24);
    let topologies: Vec<(&str, TopologySpec)> = vec![
        (
            "bridge",
            TopologySpec::Bridge {
                blob_n: cfg.pick(40, 16),
                corridor_n: 8,
                blob_side: 1.0,
            },
        ),
        (
            "ring",
            TopologySpec::Ring {
                n: ring_n,
                radius: ring_n as f64 * 0.4 / std::f64::consts::TAU,
            },
        ),
        (
            "two-tier",
            TopologySpec::TwoTier {
                dense_n: cfg.pick(90, 45),
                ratio: 15,
                side: 1.2,
            },
        ),
    ];
    let algos: Vec<(&str, ProtocolSpec)> = vec![
        ("SBroadcast", ProtocolSpec::SBroadcast { source: 0 }),
        (
            "flood p=0.5",
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 },
        ),
        (
            "flood p=0.05",
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.05 },
        ),
    ];

    let mut rows = Vec::new();
    for (name, topology) in &topologies {
        for (algo_name, spec) in &algos {
            let sim = Scenario::new(topology.clone())
                .protocol(spec.clone())
                .budget(budget)
                .build()
                .expect("valid scenario");
            rows.push(SweepRow::new(
                vec![name.to_string(), algo_name.to_string()],
                0,
                sim,
            ));
        }
    }
    let table = sweep_table(
        cfg,
        11,
        trials,
        vec!["topology", "algorithm", "rounds(mean)", "ok"],
        rows,
    );
    let mut out = String::from(
        "E11: hard instances (bridge / ring / two-tier density)\n\
         expect: SBroadcast completes everywhere; aggressive flooding (p=0.5)\n\
         degrades or fails under dense-interference funnels; timid flooding\n\
         (p=0.05) crawls on sparse stretches\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
