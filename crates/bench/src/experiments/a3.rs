//! A3 — simulator-fidelity ablation: interference evaluation modes.
//!
//! The reproduction's default physics is the **exact** Equation (1) — every
//! transmitter contributes to every receiver. The oracle also offers a
//! cell-aggregated far field (a one-level multipole) and a hard truncation.
//! This ablation runs identical seeds under all three and compares protocol
//! outcomes, justifying the fast modes for large sweeps: the aggregate mode
//! should track exact rounds closely (its tail is estimated, not dropped),
//! while truncation is visibly optimistic (dropped tail ⇒ easier SINR).

use sinr_core::{run::run_s_broadcast_in_mode, Constants};
use sinr_netgen::{cluster, uniform};
use sinr_phy::{InterferenceMode, SinrParams};
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs A3 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(200, 80);

    let modes: [(&str, InterferenceMode); 3] = [
        ("exact", InterferenceMode::Exact),
        ("cell-aggregate", InterferenceMode::CellAggregate { near_radius: 4.0 }),
        ("truncated r=4", InterferenceMode::Truncated { radius: 4.0 }),
    ];

    let mut table = Table::new(vec!["topology", "mode", "rounds(mean)", "vs exact", "ok"]);
    for topo in ["uniform", "chain"] {
        let mut exact_mean = None;
        for (mode_name, mode) in modes {
            let mut rounds = Vec::new();
            let mut oks = 0;
            for t in 0..trials {
                let seed = cfg.trial_seed(33, t as u64);
                let pts = match topo {
                    "uniform" => uniform::connected_square(
                        n,
                        uniform::side_for_density(n, 30.0),
                        &params,
                        seed,
                    )
                    .expect("connected"),
                    _ => cluster::chain_for_diameter(8, n / 9, &params, seed),
                };
                let rep = run_s_broadcast_in_mode(pts, &params, consts, 0, mode, seed, 2_000_000)
                    .expect("valid");
                if rep.completed {
                    oks += 1;
                    rounds.push(rep.rounds as f64);
                }
            }
            let s = Summary::of(&rounds);
            let mean = s.map(|s| s.mean);
            if mode_name == "exact" {
                exact_mean = mean;
            }
            let ratio = match (mean, exact_mean) {
                (Some(m), Some(e)) if e > 0.0 => fmt_f64(m / e),
                _ => "-".into(),
            };
            table.row(vec![
                topo.to_string(),
                mode_name.to_string(),
                mean.map_or("-".into(), fmt_f64),
                ratio,
                format!("{oks}/{trials}"),
            ]);
        }
    }
    let mut out = String::from(
        "A3: simulator-fidelity ablation - interference evaluation modes\n\
         expect: cell-aggregate tracks exact closely (ratio ~1); truncation is\n\
         mildly optimistic (ratio <= 1); all modes complete\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
