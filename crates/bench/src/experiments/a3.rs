//! A3 — simulator-fidelity ablation: interference evaluation modes.
//!
//! The reproduction's default physics is the **exact** Equation (1) — every
//! transmitter contributes to every receiver. The oracle also offers a
//! cell-aggregated far field (a one-level multipole), the grid-native
//! kernel (exact decode, per-receiver-cell shared tail) and a hard
//! truncation. This ablation runs identical seeds under all four and
//! compares protocol outcomes, justifying the fast modes for large sweeps:
//! the aggregate and grid-native modes should track exact rounds closely
//! (their tails are estimated, not dropped), while truncation is visibly
//! optimistic (dropped tail ⇒ easier SINR).

use sinr_phy::InterferenceMode;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs A3 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let trials = cfg.pick(5, 2);
    let n = cfg.pick(200, 80);

    let modes: [(&str, InterferenceMode); 4] = [
        ("exact", InterferenceMode::Exact),
        (
            "cell-aggregate",
            InterferenceMode::CellAggregate { near_radius: 4.0 },
        ),
        ("grid-native", InterferenceMode::grid_native()),
        ("truncated r=4", InterferenceMode::Truncated { radius: 4.0 }),
    ];
    let topologies: [(&str, TopologySpec); 2] = [
        (
            "uniform",
            TopologySpec::ConnectedSquareDensity { n, density: 30.0 },
        ),
        (
            "chain",
            TopologySpec::ClusterChain {
                diameter: 8,
                per_cluster: n / 9,
            },
        ),
    ];

    let mut table = Table::new(vec!["topology", "mode", "rounds(mean)", "vs exact", "ok"]);
    for (topo_name, topology) in &topologies {
        let mut exact_mean = None;
        for (mode_name, mode) in modes {
            let sim = Scenario::new(topology.clone())
                .protocol(ProtocolSpec::SBroadcast { source: 0 })
                .interference_mode(mode)
                .budget(2_000_000)
                .build()
                .expect("valid scenario");
            // Same tag across modes: identical seeds, identical
            // deployments — only the physics fidelity differs.
            let sweep = sweep_cell(cfg, 33, 0, trials, &sim);
            let mean = sweep.rounds_summary().map(|s| s.mean);
            if mode_name == "exact" {
                exact_mean = mean;
            }
            let ratio = match (mean, exact_mean) {
                (Some(m), Some(e)) if e > 0.0 => fmt_f64(m / e),
                _ => "-".into(),
            };
            table.row(vec![
                topo_name.to_string(),
                mode_name.to_string(),
                mean.map_or_else(|| "-".into(), fmt_f64),
                ratio,
                sweep.ok_string(),
            ]);
        }
    }
    let mut out = String::from(
        "A3: simulator-fidelity ablation - interference evaluation modes\n\
         expect: cell-aggregate and grid-native track exact closely (ratio ~1);\n\
         truncation is mildly optimistic (ratio <= 1); all modes complete\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
