//! E1 — Fact 7: `StabilizeProbability` completes in `O(log² n)` rounds.
//!
//! The schedule length is deterministic given `n`, so the experiment both
//! reports the schedule (rounds and its ratio to `log² n`) and measures the
//! *work* the procedure performs (mean transmissions per station), sweeping
//! `n` on connected uniform squares of constant density.

use sinr_core::{log2n, Constants};
use sinr_sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Summary, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs E1 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let consts = Constants::tuned();
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024, 2048], &[128, 256]);
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "n",
        "log2n",
        "rounds",
        "rounds/log^2",
        "levels",
        "tx/station(mean)",
        "colors(mean)",
    ]);
    for &n in sizes {
        let sim = Scenario::new(TopologySpec::ConnectedSquareDensity { n, density: 30.0 })
            .constants(consts)
            .protocol(ProtocolSpec::Coloring)
            .build()
            .expect("fixed-schedule protocol");
        let sweep = sweep_cell(cfg, 1, n as u64, trials, &sim);
        let txs: Vec<f64> = sweep
            .runs
            .iter()
            .map(|r| r.total_transmissions as f64 / n as f64)
            .collect();
        let colors: Vec<f64> = sweep
            .runs
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Coloring { coloring } => coloring.num_colors() as f64,
                other => unreachable!("coloring outcome expected, got {other:?}"),
            })
            .collect();
        let rounds = sweep.runs.last().map_or(0, |r| r.rounds);
        let l = log2n(n);
        let tx_summary = Summary::of(&txs).expect("at least one trial");
        let color_summary = Summary::of(&colors).expect("at least one trial");
        table.row(vec![
            n.to_string(),
            l.to_string(),
            rounds.to_string(),
            fmt_f64(rounds as f64 / (l * l) as f64),
            consts.num_levels(n).to_string(),
            fmt_f64(tx_summary.mean),
            fmt_f64(color_summary.mean),
        ]);
    }
    let mut out = String::from(
        "E1: StabilizeProbability rounds vs n (Fact 7: O(log^2 n))\n\
         expect: rounds/log^2 column bounded by a constant as n grows\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
