//! E1 — Fact 7: `StabilizeProbability` completes in `O(log² n)` rounds.
//!
//! The schedule length is deterministic given `n`, so the experiment both
//! reports the schedule (rounds and its ratio to `log² n`) and measures the
//! *work* the procedure performs (mean transmissions per station), sweeping
//! `n` on connected uniform squares of constant density.

use sinr_core::{log2n, run_stabilize, Constants};
use sinr_netgen::uniform;
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E1 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024, 2048], &[128, 256]);
    let trials = cfg.pick(5, 2);
    let density = 30.0;

    let mut table = Table::new(vec![
        "n",
        "log2n",
        "rounds",
        "rounds/log^2",
        "levels",
        "tx/station(mean)",
        "colors(mean)",
    ]);
    for &n in sizes {
        let side = uniform::side_for_density(n, density);
        let mut txs = Vec::new();
        let mut colors = Vec::new();
        let mut rounds = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(1, t as u64 * 1000 + n as u64);
            let Some(pts) = uniform::connected_square(n, side, &params, seed) else {
                continue;
            };
            let run = run_stabilize(pts, &params, consts, seed).expect("valid network");
            rounds = run.rounds;
            txs.push(run.total_transmissions as f64 / n as f64);
            colors.push(run.coloring.num_colors() as f64);
        }
        let l = log2n(n);
        let tx_summary = Summary::of(&txs).expect("at least one trial");
        let color_summary = Summary::of(&colors).expect("at least one trial");
        table.row(vec![
            n.to_string(),
            l.to_string(),
            rounds.to_string(),
            fmt_f64(rounds as f64 / (l * l) as f64),
            consts.num_levels(n).to_string(),
            fmt_f64(tx_summary.mean),
            fmt_f64(color_summary.mean),
        ]);
    }
    let mut out = String::from(
        "E1: StabilizeProbability rounds vs n (Fact 7: O(log^2 n))\n\
         expect: rounds/log^2 column bounded by a constant as n grows\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
