//! A2 — ablation: removing Playoff (the gate becomes DensityTest alone).
//!
//! Setting the Playoff threshold `c₃ = 0` makes the test vacuous: a station
//! quits as soon as its *unit ball* is dense, with no information about its
//! ε/2-ball. On locally homogeneous networks nothing breaks — but on the
//! paper's footnote-4 adversaries (a dense core with isolated satellites,
//! and the halving line whose tail piles up geometrically) stations in
//! locally sparse spots quit at the very first probability level and the
//! Lemma 2 floor collapses. This is the paper's central algorithmic point:
//! a unit-ball density test alone cannot see the geometry inside the ball.

use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_geometry::Point2;
use sinr_netgen::{cluster, line};
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Table};

use crate::ExpConfig;

/// The adversarial topology families where the Playoff mechanism binds.
///
/// * `core-sats` — `n − 12` stations packed in a radius-0.2 disk plus 12
///   isolated satellites at distance 0.6 (inside the core's unit ball,
///   pairwise > ε/2 apart);
/// * `halving-line` — the footnote-2 line whose gaps shrink geometrically,
///   sparse head + packed tail in one reachability ball.
pub fn adversarial_families(n: usize, seed: u64) -> Vec<(&'static str, Vec<Point2>)> {
    vec![
        (
            "core-sats",
            cluster::core_and_satellites(n.saturating_sub(12).max(24), 12, 0.2, 0.6, seed),
        ),
        ("halving-line", line::halving_line(n, 0.5, 0.5, 2e-9)),
    ]
}

/// Runs A2 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let n = cfg.pick(512, 128);
    let trials = cfg.pick(2, 1);

    let full = Constants::tuned();
    let no_playoff = Constants { c3: 0.0, ..full };
    let floor = full.p_max() / 4.0;

    let mut table = Table::new(vec![
        "variant",
        "family",
        "lemma1 worst",
        "lemma2 worst",
        "floor",
        "holds",
    ]);
    for (variant, consts) in [("full", full), ("no-playoff", no_playoff)] {
        for t in 0..trials {
            let seed = cfg.trial_seed(32, t as u64 * 7);
            for (family, pts) in adversarial_families(n, seed) {
                let run = run_stabilize(pts.clone(), &params, consts, seed).expect("valid");
                let rep = invariant_report(&pts, &run.coloring, params.eps());
                table.row(vec![
                    variant.to_string(),
                    family.to_string(),
                    fmt_f64(rep.max_unit_ball_mass),
                    format!("{:.5}", rep.min_close_mass),
                    format!("{floor:.5}"),
                    (rep.min_close_mass >= floor).to_string(),
                ]);
            }
        }
    }
    let mut out = String::from(
        "A2: ablation - Playoff removed (c3 = 0, DensityTest-only gate)\n\
         expect: 'no-playoff' breaks the Lemma 2 floor on the footnote-4\n\
         adversaries (satellites/sparse-head quit at p_start), 'full' holds\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
