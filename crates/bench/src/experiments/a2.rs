//! A2 — ablation: removing Playoff (the gate becomes DensityTest alone).
//!
//! Setting the Playoff threshold `c₃ = 0` makes the test vacuous: a station
//! quits as soon as its *unit ball* is dense, with no information about its
//! ε/2-ball. On locally homogeneous networks nothing breaks — but on the
//! paper's footnote-4 adversaries (a dense core with isolated satellites,
//! and the halving line whose tail piles up geometrically) stations in
//! locally sparse spots quit at the very first probability level and the
//! Lemma 2 floor collapses. This is the paper's central algorithmic point:
//! a unit-ball density test alone cannot see the geometry inside the ball.

use sinr_core::{invariant_report, Constants};
use sinr_phy::SinrParams;
use sinr_sim::{Outcome, ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// The adversarial topology families where the Playoff mechanism binds.
///
/// * `core-sats` — `n − 12` stations packed in a radius-0.2 disk plus 12
///   isolated satellites at distance 0.6 (inside the core's unit ball,
///   pairwise > ε/2 apart);
/// * `halving-line` — the footnote-2 line whose gaps shrink geometrically,
///   sparse head + packed tail in one reachability ball.
pub fn adversarial_families(n: usize) -> Vec<(&'static str, TopologySpec)> {
    vec![
        (
            "core-sats",
            TopologySpec::CoreAndSatellites {
                core_n: n.saturating_sub(12).max(24),
                sat_n: 12,
                core_radius: 0.2,
                sat_distance: 0.6,
            },
        ),
        (
            "halving-line",
            TopologySpec::HalvingLine {
                n,
                first_gap: 0.5,
                ratio: 0.5,
                min_gap: 2e-9,
            },
        ),
    ]
}

/// Measures the Lemma 1/2 invariants of one coloring scenario per
/// adversarial family and appends a row per (variant, family, trial).
#[allow(clippy::too_many_arguments)]
pub fn invariant_rows(
    cfg: &ExpConfig,
    exp_id: u64,
    tag: u64,
    n: usize,
    trials: usize,
    consts: Constants,
    variant: &str,
    floor: f64,
    table: &mut Table,
) {
    let params = SinrParams::default_plane();
    for (fi, (family, spec)) in adversarial_families(n).into_iter().enumerate() {
        let sim = Scenario::new(spec)
            .params(params)
            .constants(consts)
            .protocol(ProtocolSpec::Coloring)
            .build()
            .expect("fixed-schedule protocol");
        let sweep = sweep_cell(cfg, exp_id, tag * 10 + fi as u64, trials, &sim);
        for run in &sweep.runs {
            let pts = sim.materialize(run.seed).expect("same stream as the run");
            let coloring = match &run.outcome {
                Outcome::Coloring { coloring } => coloring,
                other => unreachable!("coloring outcome expected, got {other:?}"),
            };
            let rep = invariant_report(&pts, coloring, params.eps());
            table.row(vec![
                variant.to_string(),
                family.to_string(),
                fmt_f64(rep.max_unit_ball_mass),
                format!("{:.5}", rep.min_close_mass),
                format!("{floor:.5}"),
                (rep.min_close_mass >= floor).to_string(),
            ]);
        }
    }
}

/// Runs A2 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let n = cfg.pick(512, 128);
    let trials = cfg.pick(2, 1);

    let full = Constants::tuned();
    let no_playoff = Constants { c3: 0.0, ..full };
    let floor = full.p_max() / 4.0;

    let mut table = Table::new(vec![
        "variant",
        "family",
        "lemma1 worst",
        "lemma2 worst",
        "floor",
        "holds",
    ]);
    for (vi, (variant, consts)) in [("full", full), ("no-playoff", no_playoff)]
        .into_iter()
        .enumerate()
    {
        invariant_rows(
            cfg, 32, vi as u64, n, trials, consts, variant, floor, &mut table,
        );
    }
    let mut out = String::from(
        "A2: ablation - Playoff removed (c3 = 0, DensityTest-only gate)\n\
         expect: 'no-playoff' breaks the Lemma 2 floor on the footnote-4\n\
         adversaries (satellites/sparse-head quit at p_start), 'full' holds\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
