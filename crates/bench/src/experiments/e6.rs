//! E6 — The headline claim: our broadcast's running time is independent of
//! the granularity `R_s`, while the Daum et al. baseline degrades
//! polylogarithmically in `R_s`.
//!
//! Line networks with geometrically interpolated gaps realise any target
//! `R_s` at fixed `n` and (almost) fixed `D`; we sweep `R_s` over orders of
//! magnitude and compare `SBroadcast` with the decay-class baseline, which
//! must cycle `Θ(α·log R_s)` probability classes.

use sinr_core::{
    run::{run_daum_broadcast, run_s_broadcast},
    Constants,
};
use sinr_netgen::{line, validate};
use sinr_phy::SinrParams;
use sinr_stats::{fmt_f64, Summary, Table};

use crate::ExpConfig;

/// Runs E6 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let n = cfg.pick(64, 32);
    let d_hops = cfg.pick(12, 6);
    let rs_targets: &[f64] = cfg.pick(
        &[4.0, 64.0, 1024.0, 16_384.0, 262_144.0, 16_777_216.0],
        &[4.0, 1024.0],
    );
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "Rs(target)",
        "Rs(actual)",
        "D",
        "ours(mean)",
        "ours/D",
        "ours ok",
        "daum(mean)",
        "daum/D",
        "daum ok",
    ]);
    for &rs in rs_targets {
        let pts = line::granularity_line_fixed_d(n, params.comm_radius(), rs, d_hops, 2e-9);
        let report = validate::report(&pts, &params);
        assert!(report.connected, "line must be connected");
        let d = report.diameter.unwrap_or(0);
        let actual_rs = report.granularity.unwrap_or(1.0);

        let mut ours = Vec::new();
        let mut ours_ok = 0;
        let mut daum = Vec::new();
        let mut daum_ok = 0;
        for t in 0..trials {
            let seed = cfg.trial_seed(6, t as u64 * 1000 + rs as u64);
            let budget = consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 4 + 200_000;
            let rep =
                run_s_broadcast(pts.clone(), &params, consts, 0, seed, budget).expect("valid");
            if rep.completed {
                ours_ok += 1;
                ours.push(rep.rounds as f64);
            }
            let rep = run_daum_broadcast(pts.clone(), &params, 0, Some(actual_rs), seed, budget)
                .expect("valid");
            if rep.completed {
                daum_ok += 1;
                daum.push(rep.rounds as f64);
            }
        }
        let so = Summary::of(&ours);
        let sd = Summary::of(&daum);
        table.row(vec![
            fmt_f64(rs),
            fmt_f64(actual_rs),
            d.to_string(),
            so.map_or("-".into(), |s| fmt_f64(s.mean)),
            so.map_or("-".into(), |s| fmt_f64(s.mean / d.max(1) as f64)),
            format!("{ours_ok}/{trials}"),
            sd.map_or("-".into(), |s| fmt_f64(s.mean)),
            sd.map_or("-".into(), |s| fmt_f64(s.mean / d.max(1) as f64)),
            format!("{daum_ok}/{trials}"),
        ]);
    }
    let mut out = String::from(
        "E6: granularity independence on geometric-gap lines (n fixed)\n\
         expect: per-hop cost 'ours/D' flat in Rs; 'daum/D' grows with log(Rs)\n\
         (the paper's asymptotic claim; our tuned constants give ours a large\n\
         constant factor, so the crossover sits beyond the sweep - the shapes\n\
         are the reproduction target)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
