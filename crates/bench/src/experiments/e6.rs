//! E6 — The headline claim: our broadcast's running time is independent of
//! the granularity `R_s`, while the Daum et al. baseline degrades
//! polylogarithmically in `R_s`.
//!
//! Line networks with geometrically interpolated gaps realise any target
//! `R_s` at fixed `n` and (almost) fixed `D`; we sweep `R_s` over orders of
//! magnitude and compare `SBroadcast` with the decay-class baseline, which
//! must cycle `Θ(α·log R_s)` probability classes.

use sinr_core::Constants;
use sinr_netgen::validate;
use sinr_phy::SinrParams;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};
use sinr_stats::{fmt_f64, Table};

use crate::{sweep_cell, ExpConfig};

/// Runs E6 and returns the rendered table.
pub fn run(cfg: &ExpConfig) -> String {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let n = cfg.pick(64, 32);
    let d_hops = cfg.pick(12, 6);
    let rs_targets: &[f64] = cfg.pick(
        &[4.0, 64.0, 1024.0, 16_384.0, 262_144.0, 16_777_216.0],
        &[4.0, 1024.0],
    );
    let trials = cfg.pick(5, 2);

    let mut table = Table::new(vec![
        "Rs(target)",
        "Rs(actual)",
        "D",
        "ours(mean)",
        "ours/D",
        "ours ok",
        "daum(mean)",
        "daum/D",
        "daum ok",
    ]);
    for &rs in rs_targets {
        let topology = TopologySpec::GranularityLineFixedD {
            n,
            max_gap: params.comm_radius(),
            rs_target: rs,
            d_hops,
            min_gap: 2e-9,
        };
        let budget_probe = Scenario::new(topology.clone())
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(1)
            .build()
            .expect("valid scenario");
        // The line family is deterministic (seed-independent), so one
        // materialization gives the exact deployment every trial uses.
        let pts = budget_probe.materialize(0).expect("generated");
        let report = validate::report(&pts, &params);
        assert!(report.connected, "line must be connected");
        let d = report.diameter.unwrap_or(0);
        let actual_rs = report.granularity.unwrap_or(1.0);
        let budget = consts.coloring_rounds(n) + consts.wakeup_window(n, d) * 4 + 200_000;

        let ours_sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(ProtocolSpec::SBroadcast { source: 0 })
            .budget(budget)
            .build()
            .expect("valid scenario");
        let daum_sim = Scenario::new(topology)
            .protocol(ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: Some(actual_rs),
            })
            .budget(budget)
            .build()
            .expect("valid scenario");
        let ours = sweep_cell(cfg, 6, rs as u64, trials, &ours_sim);
        let daum = sweep_cell(cfg, 6, rs as u64, trials, &daum_sim);

        let so = ours.rounds_summary();
        let sd = daum.rounds_summary();
        table.row(vec![
            fmt_f64(rs),
            fmt_f64(actual_rs),
            d.to_string(),
            so.map_or("-".into(), |s| fmt_f64(s.mean)),
            so.map_or("-".into(), |s| fmt_f64(s.mean / d.max(1) as f64)),
            ours.ok_string(),
            sd.map_or("-".into(), |s| fmt_f64(s.mean)),
            sd.map_or("-".into(), |s| fmt_f64(s.mean / d.max(1) as f64)),
            daum.ok_string(),
        ]);
    }
    let mut out = String::from(
        "E6: granularity independence on geometric-gap lines (n fixed)\n\
         expect: per-hop cost 'ours/D' flat in Rs; 'daum/D' grows with log(Rs)\n\
         (the paper's asymptotic claim; our tuned constants give ours a large\n\
         constant factor, so the crossover sits beyond the sweep - the shapes\n\
         are the reproduction target)\n\n",
    );
    out.push_str(&table.render());
    println!("{out}");
    out
}
