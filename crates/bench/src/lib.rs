//! Experiment harness reproducing the paper's stated bounds.
//!
//! The paper (PODC 2014) is pure theory — no tables or figures — so the
//! "evaluation" to reproduce is the set of stated complexity bounds and
//! invariants. Each experiment module regenerates one table of
//! `EXPERIMENTS.md`; the `experiments` binary runs them by id:
//!
//! | id | claim |
//! |----|-------|
//! | e1 | Fact 7: `StabilizeProbability` runs in `O(log² n)` rounds |
//! | e2 | Lemma 1: per-color unit-ball mass bounded by a constant |
//! | e3 | Lemma 2: every station has a constant-mass color nearby |
//! | e4 | Theorem 1: `NoSBroadcast` in `O(D log² n)` |
//! | e5 | Theorem 2: `SBroadcast` in `O(D log n + log² n)` |
//! | e6 | granularity independence vs the Daum et al. baseline |
//! | e7 | Section 5 applications: wake-up, consensus, leader election |
//! | e8 | whp success rates |
//! | e9 | baseline comparison across density regimes |
//! | e10 | robustness to the population estimate ν |
//! | e11 | hard instances: bridge, ring, two-tier density |
//! | e12 | geometry-blind vs GPS-oracle TDMA (the title question) |
//! | a1 | ablation: the `c_ε` Playoff scale-up |
//! | a2 | ablation: removing Playoff breaks Lemma 2 |
//! | a3 | ablation: interference-evaluation fidelity (exact / aggregate / truncated) |
//!
//! Every experiment drives the [`sinr_sim::Scenario`] builder through the
//! shared [`sweep_table`]/[`sweep_cell`] helpers below — the per-trial
//! seed loops live here, once.
//!
//! Like every library crate in the workspace, this harness is pure safe
//! Rust (`sinr-lint` rule `forbid-unsafe` checks the attribute below); it
//! is also the one crate *allowed* to read wall clocks and print, being
//! the designated measurement/reporting surface.

#![forbid(unsafe_code)]

pub mod broadcast_suite;
pub mod churn_suite;
pub mod coloring_suite;
pub mod config;
pub mod degradation_suite;
pub mod experiments;
#[cfg(feature = "legacy-parity")]
pub mod legacy;
pub mod microbench;
pub mod mobility_suite;
pub mod phy_suite;
pub mod repair_suite;
pub mod simd_suite;

pub use config::ExpConfig;

use sinr_sim::{Simulation, SweepReport};
use sinr_stats::{fmt_f64, Table};

/// Deterministic per-trial seeds for row `tag` of experiment `exp`.
///
/// Each seed fully determines its trial (topology draw and protocol
/// randomness), so the sweep both parallelizes and replays.
pub fn trial_seeds(cfg: &ExpConfig, exp: u64, tag: u64, trials: usize) -> Vec<u64> {
    (0..trials as u64)
        .map(|t| cfg.trial_seed(exp, t * 1_000_003 + tag))
        .collect()
}

/// Runs one table cell: `trials` seeded runs of `sim`, in parallel.
///
/// # Panics
///
/// Panics when a trial fails to build its scenario (an experiment bug,
/// not a measurement outcome).
pub fn sweep_cell(
    cfg: &ExpConfig,
    exp: u64,
    tag: u64,
    trials: usize,
    sim: &Simulation,
) -> SweepReport {
    sim.sweep(&trial_seeds(cfg, exp, tag, trials))
        .expect("experiment scenario must run")
}

/// One row of a [`sweep_table`]: leading label cells, a seed tag, the
/// simulation to sweep, and optional trailing columns computed from the
/// sweep.
pub struct SweepRow {
    /// Leading label cells (topology name, parameter values, …).
    pub cells: Vec<String>,
    /// Row tag mixed into the trial seeds (keep distinct per row).
    pub tag: u64,
    /// The scenario this row measures.
    pub sim: Simulation,
    /// Optional trailing columns derived from the sweep result.
    #[allow(clippy::type_complexity)]
    pub extra: Option<Box<dyn Fn(&SweepReport) -> Vec<String>>>,
}

impl SweepRow {
    /// A row with no extra columns.
    pub fn new(cells: Vec<String>, tag: u64, sim: Simulation) -> Self {
        SweepRow {
            cells,
            tag,
            sim,
            extra: None,
        }
    }

    /// Adds trailing columns computed from the sweep.
    #[must_use]
    pub fn with_extra(mut self, extra: impl Fn(&SweepReport) -> Vec<String> + 'static) -> Self {
        self.extra = Some(Box::new(extra));
        self
    }
}

/// The shared experiment-table driver: for every row, sweeps its
/// simulation over the row's trial seeds and renders
/// `label cells… | rounds(mean) | ok | extra…`.
///
/// `headers` must name the label columns, then `rounds(mean)` and `ok`,
/// then any extra columns the rows compute.
pub fn sweep_table(
    cfg: &ExpConfig,
    exp: u64,
    trials: usize,
    headers: Vec<&'static str>,
    rows: Vec<SweepRow>,
) -> Table {
    let mut table = Table::new(headers);
    for row in rows {
        let sweep = sweep_cell(cfg, exp, row.tag, trials, &row.sim);
        let mut cells = row.cells;
        cells.push(
            sweep
                .rounds_summary()
                .map_or_else(|| "-".into(), |s| fmt_f64(s.mean)),
        );
        cells.push(sweep.ok_string());
        if let Some(extra) = &row.extra {
            cells.extend(extra(&sweep));
        }
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

    fn tiny_sim() -> Simulation {
        Scenario::new(TopologySpec::UniformLine { n: 5, gap: 0.45 })
            .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.4 })
            .budget(50_000)
            .build()
            .unwrap()
    }

    #[test]
    fn trial_seeds_distinct_across_rows_and_trials() {
        let cfg = ExpConfig::default();
        let a = trial_seeds(&cfg, 1, 0, 3);
        let b = trial_seeds(&cfg, 1, 1, 3);
        let c = trial_seeds(&cfg, 2, 0, 3);
        assert_eq!(a.len(), 3);
        for s in &a {
            assert!(!b.contains(s) && !c.contains(s));
        }
        assert_eq!(a, trial_seeds(&cfg, 1, 0, 3), "replayable");
    }

    #[test]
    fn sweep_cell_runs_all_trials() {
        let cfg = ExpConfig::default();
        let sweep = sweep_cell(&cfg, 99, 0, 4, &tiny_sim());
        assert_eq!(sweep.runs.len(), 4);
        assert_eq!(sweep.completed(), 4, "flood on a 5-line completes");
    }

    #[test]
    fn sweep_table_renders_standard_columns() {
        let cfg = ExpConfig::default();
        let rows = vec![
            SweepRow::new(vec!["line".into()], 0, tiny_sim())
                .with_extra(|s| vec![format!("{:.2}", s.completion_rate())]),
            SweepRow::new(vec!["line2".into()], 1, tiny_sim())
                .with_extra(|s| vec![format!("{:.2}", s.completion_rate())]),
        ];
        let table = sweep_table(
            &cfg,
            99,
            2,
            vec!["topology", "rounds(mean)", "ok", "rate"],
            rows,
        );
        let rendered = table.render();
        assert!(rendered.contains("line"));
        assert!(rendered.contains("2/2"));
    }
}
