//! Experiment harness reproducing the paper's stated bounds.
//!
//! The paper (PODC 2014) is pure theory — no tables or figures — so the
//! "evaluation" to reproduce is the set of stated complexity bounds and
//! invariants. Each experiment module regenerates one table of
//! `EXPERIMENTS.md`; the `experiments` binary runs them by id:
//!
//! | id | claim |
//! |----|-------|
//! | e1 | Fact 7: `StabilizeProbability` runs in `O(log² n)` rounds |
//! | e2 | Lemma 1: per-color unit-ball mass bounded by a constant |
//! | e3 | Lemma 2: every station has a constant-mass color nearby |
//! | e4 | Theorem 1: `NoSBroadcast` in `O(D log² n)` |
//! | e5 | Theorem 2: `SBroadcast` in `O(D log n + log² n)` |
//! | e6 | granularity independence vs the Daum et al. baseline |
//! | e7 | Section 5 applications: wake-up, consensus, leader election |
//! | e8 | whp success rates |
//! | e9 | baseline comparison across density regimes |
//! | e10 | robustness to the population estimate ν |
//! | e11 | hard instances: bridge, ring, two-tier density |
//! | e12 | geometry-blind vs GPS-oracle TDMA (the title question) |
//! | a1 | ablation: the `c_ε` Playoff scale-up |
//! | a2 | ablation: removing Playoff breaks Lemma 2 |
//! | a3 | ablation: interference-evaluation fidelity (exact / aggregate / truncated) |

pub mod config;
pub mod experiments;

pub use config::ExpConfig;
