//! The explicit-SIMD kernel suite: the three batch kernels the runtime
//! dispatcher vectorizes — [`PositionStore::distance_sq_batch_with`],
//! [`SinrParams::signal_at_sq_batch_with`] and the sqrt-free
//! [`PositionStore::for_each_within_sq_with`] membership loop — each
//! timed under the auto-detected tier AND pinned to scalar on the same
//! machine, so the committed `BENCH.json` records the actual lane
//! speedup rather than inferring it across commits.
//!
//! Naming scheme: `simd/<kernel>/<dispatch>/<n>` where `<dispatch>` is
//! `auto` (the cached hardware tier) or `scalar` (forced, the reference
//! implementation every tier must match bit-for-bit). The per-row `tier`
//! field records the machine's hardware tier at measurement time;
//! `bench_gate` skips rows whose recorded tier differs from the current
//! machine, so an `avx2+fma` baseline never gates a NEON or
//! scalar-only runner.

use sinr_geometry::{hardware_tier, PositionStore, SimdTier};
use sinr_netgen::uniform;
use sinr_phy::SinrParams;

use crate::microbench::{black_box, Session};
use crate::phy_suite::DENSITY;

/// Problem size the tracked speedups are measured at.
const N: usize = 10_000;

/// Runs the suite into `session`. Under `--quick` the size drops to
/// 2 500 points and iteration counts shrink.
pub fn run(session: &mut Session) {
    let n = session.pick(N, 2_500);
    let side = uniform::side_for_density(n, DENSITY);
    let pts = uniform::square(n, side, 7);
    let store = PositionStore::from_points(&pts);
    let center = [side * 0.5, side * 0.5, 0.0];
    let auto = hardware_tier();
    let dispatches = [("auto", auto), ("scalar", SimdTier::Scalar)];

    // distance_sq_batch over the full store (2-axis points; the 1- and
    // 3-axis kernels share the structure and the equivalence tests pin
    // them element-wise).
    let mut d2 = vec![0.0f64; n];
    for (tag, tier) in dispatches {
        session.bench(&format!("simd/distance_sq_ax2/{tag}/{n}"), n, || {
            store.distance_sq_batch_with(0..n, &center, &mut d2, tier);
            black_box(&mut d2);
        });
    }

    // signal_at_sq_batch per integer path-loss exponent. The kernel is
    // in-place, so each iteration restores the input first; the copy cost
    // is identical across dispatches and cancels out of the ratio.
    store.distance_sq_batch_with(0..n, &center, &mut d2, auto);
    let master = d2.clone();
    for alpha in [2.0, 3.0, 4.0] {
        let params = SinrParams::builder()
            .alpha(alpha)
            .build(1.5)
            .expect("valid bench params");
        let a = alpha as u32;
        for (tag, tier) in dispatches {
            session.bench(&format!("simd/signal_alpha{a}/{tag}/{n}"), n, || {
                d2.copy_from_slice(&master);
                params.signal_at_sq_batch_with(&mut d2, tier);
                black_box(&mut d2);
            });
        }
    }

    // The sqrt-free radius-membership loop over the whole store (a ball
    // covering roughly a quarter of the deployment area).
    let radius = side * 0.25;
    let criterion = sinr_geometry::radius_criterion(radius);
    for (tag, tier) in dispatches {
        session.bench(&format!("simd/for_each_within/{tag}/{n}"), n, || {
            let mut hits = 0usize;
            store.for_each_within_sq_with(0..n, &center, criterion, tier, |_| hits += 1);
            black_box(hits);
        });
    }
}
