//! The pre-oracle round-resolution implementation, frozen as a benchmark
//! baseline.
//!
//! This is the `sinr_phy::resolve_round` of the repository *before* the
//! stateful [`sinr_phy::ReceptionOracle`] landed, kept verbatim so the
//! `interference` bench and the `microbench` binary can measure the
//! speedup honestly at any commit: per-call `Vec` allocations for every
//! accumulator, a per-round `HashMap` of transmitter cells in
//! cell-aggregate mode (whose iteration order was also nondeterministic —
//! the bug fixed by the sorted flat buckets), and allocating `ball`
//! queries in truncated mode. **Not for simulation use** — only benches
//! compare against it.

use sinr_geometry::{GridIndex, MetricPoint};
use sinr_phy::{InterferenceMode, RoundOutcome, SinrParams};

/// Resolves one round exactly like the pre-oracle implementation.
///
/// # Panics
///
/// As the historical function: out-of-range transmitters, missing grid for
/// grid-backed modes, or radii below their minimums. The
/// [`InterferenceMode::GridNative`] variant did not exist pre-oracle and
/// panics here.
pub fn resolve_round<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    mode: InterferenceMode,
    grid: Option<&GridIndex>,
) -> RoundOutcome {
    let n = points.len();
    let mut is_tx = vec![false; n];
    for &t in transmitters {
        assert!(t < n, "transmitter index {t} out of range (n = {n})");
        is_tx[t] = true;
    }

    let mut total = vec![0.0f64; n];
    let mut best_pow = vec![0.0f64; n];
    let mut best_idx = vec![usize::MAX; n];

    match mode {
        InterferenceMode::Exact => {
            for &t in transmitters {
                let tp = points[t];
                for (u, pu) in points.iter().enumerate() {
                    if u == t {
                        continue;
                    }
                    let s = params.signal_at(tp.distance(pu));
                    total[u] += s;
                    if s > best_pow[u] {
                        best_pow[u] = s;
                        best_idx[u] = t;
                    }
                }
            }
        }
        InterferenceMode::Truncated { radius } => {
            assert!(
                radius >= params.range(),
                "truncation radius {radius} must be at least the communication range 1"
            );
            let grid = grid.expect("Truncated interference mode requires a grid index");
            for &t in transmitters {
                let tp = points[t];
                for u in grid.ball(points, tp, radius) {
                    if u == t {
                        continue;
                    }
                    let s = params.signal_at(tp.distance(&points[u]));
                    total[u] += s;
                    if s > best_pow[u] {
                        best_pow[u] = s;
                        best_idx[u] = t;
                    }
                }
            }
        }
        InterferenceMode::CellAggregate { near_radius } => {
            assert!(
                near_radius >= 2.0,
                "near_radius {near_radius} must be at least 2 (range 1 plus cell slack)"
            );
            let grid = grid.expect("CellAggregate interference mode requires a grid index");
            let cell = grid.cell_side();
            let diag = cell * (P::AXES as f64).sqrt();

            // Bucket transmitters by cell; keep members and centroid. The
            // hash map is rebuilt from scratch every round — this is the
            // allocation pattern the oracle's flat buckets replaced.
            struct TxCell {
                centroid: [f64; 3],
                members: Vec<usize>,
            }
            // Frozen pre-oracle implementation, kept bit-exact for the
            // legacy-parity differential tests — the HashMap (and its
            // allocation churn) is the point of comparison, not a bug.
            #[allow(clippy::disallowed_types)]
            let mut cells: std::collections::HashMap<[i64; 3], TxCell> =
                std::collections::HashMap::new();
            for &t in transmitters {
                let tp = &points[t];
                let mut key = [0i64; 3];
                for (axis, slot) in key.iter_mut().enumerate().take(P::AXES) {
                    *slot = (tp.coord(axis) / cell).floor() as i64;
                }
                let e = cells.entry(key).or_insert(TxCell {
                    centroid: [0.0; 3],
                    members: Vec::new(),
                });
                for axis in 0..P::AXES {
                    e.centroid[axis] += tp.coord(axis);
                }
                e.members.push(t);
            }
            let cells: Vec<TxCell> = cells
                .into_values()
                .map(|mut c| {
                    let k = c.members.len() as f64;
                    for v in &mut c.centroid {
                        *v /= k;
                    }
                    c
                })
                .collect();

            for (u, pu) in points.iter().enumerate() {
                for c in &cells {
                    let mut d2 = 0.0;
                    for axis in 0..P::AXES {
                        let dd = pu.coord(axis) - c.centroid[axis];
                        d2 += dd * dd;
                    }
                    let dc = d2.sqrt();
                    if dc > near_radius + diag {
                        total[u] += c.members.len() as f64 * params.signal_at(dc);
                    } else {
                        for &t in &c.members {
                            if t == u {
                                continue;
                            }
                            let s = params.signal_at(points[t].distance(pu));
                            total[u] += s;
                            if s > best_pow[u] {
                                best_pow[u] = s;
                                best_idx[u] = t;
                            }
                        }
                    }
                }
            }
        }
        InterferenceMode::GridNative { .. } => {
            panic!("the grid-native kernel has no pre-oracle implementation")
        }
    }

    let decoded_from = (0..n)
        .map(|u| {
            if is_tx[u] || best_idx[u] == usize::MAX {
                return None;
            }
            let interference = total[u] - best_pow[u];
            if params.decodable(best_pow[u], interference) {
                Some(best_idx[u])
            } else {
                None
            }
        })
        .collect();

    RoundOutcome {
        decoded_from,
        num_transmitters: transmitters.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    #[test]
    fn legacy_baseline_agrees_with_current_oracle_on_exact_and_truncated() {
        // The baseline must stay a faithful measurement target: for the
        // order-stable modes it is bit-for-bit the current oracle.
        let pts: Vec<Point2> = (0..150)
            .map(|i| Point2::new((i % 15) as f64 * 0.8, (i / 15) as f64 * 0.8))
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let params = SinrParams::default_plane();
        let tx: Vec<usize> = (0..150).step_by(7).collect();
        for mode in [
            InterferenceMode::Exact,
            InterferenceMode::Truncated { radius: 4.0 },
        ] {
            let legacy = resolve_round(&pts, &params, &tx, mode, Some(&grid));
            let current = sinr_phy::resolve_round(&pts, &params, &tx, mode, Some(&grid));
            assert_eq!(legacy, current, "{mode:?}");
        }
        // Cell-aggregate sums depend on cell iteration order (the legacy
        // nondeterminism); decode decisions still agree on spread inputs.
        let mode = InterferenceMode::CellAggregate { near_radius: 4.0 };
        let legacy = resolve_round(&pts, &params, &tx, mode, Some(&grid));
        let current = sinr_phy::resolve_round(&pts, &params, &tx, mode, Some(&grid));
        assert_eq!(legacy.decoded_from, current.decoded_from);
    }
}
