//! The churn benchmark suite: the kernels of the dynamic-population
//! subsystem.
//!
//! Rows (all under the `churn/` prefix, gated by the CI `bench_gate` job
//! like every other tracked kernel):
//!
//! * `churn/apply_churn/<n>` — one [`Network::apply_churn`] transaction
//!   over a process-generated delta: tombstone/rejoin/spawn plus the
//!   in-place masked grid rebuild and communication-graph refresh;
//! * `churn/commgraph_rebuild_from/<n>` — the in-place,
//!   allocation-reusing [`sinr_phy::CommGraph::rebuild_from`] alone, the
//!   kernel every epoch boundary pays;
//! * `churn/epoch_8_rounds_churned/<n>` — a full churned epoch as the
//!   engine executes it: churn step + apply, waypoint advance + reindex,
//!   connectivity check through reused BFS scratch, then 8 grid-native
//!   rounds through a reused [`sinr_phy::ReceptionOracle`].

use sinr_netgen::churn::{ChurnModel, ChurnProcess};
use sinr_netgen::mobility::{Mobility, MobilityModel};
use sinr_netgen::uniform;
use sinr_phy::{ChurnDelta, GraphScratch, InterferenceMode, Network, RoundOutcome, SinrParams};

use crate::microbench::{black_box, Session};
use crate::phy_suite::DENSITY;

/// Runs the suite into `session`. Under `--quick` the sizes shrink to a
/// single small deployment.
pub fn run(session: &mut Session) {
    let params = SinrParams::default_plane();
    // The quick size matches the smaller full size, so CI smoke runs
    // gate against the committed baseline rows (a quick-only size would
    // never be compared).
    let sizes: &[usize] = if session.quick {
        &[2_500]
    } else {
        &[2_500, 10_000]
    };
    for &n in sizes {
        let side = uniform::side_for_density(n, DENSITY);
        let pts = uniform::square(n, side, 7);

        // Roughly stationary churn: deaths ≈ live/lifetime per epoch,
        // matched by the arrival rate, so the population the iterations
        // measure stays near `n` as the rows repeat.
        let model = ChurnModel {
            arrival_rate: n as f64 / 50.0,
            mean_lifetime: 50.0,
        };

        // One full churn transaction per iteration (delta generation is
        // a negligible slice of it; the cost is the in-place rebuilds).
        // These rows run in the sub-ms regime where the min over few
        // samples is noisy, so they keep a fixed iteration count even
        // under `--quick` — they are rows the CI gate watches.
        let mut net = Network::new(pts.clone(), params).expect("generated deployment is valid");
        let mut proc: ChurnProcess<_> = ChurnProcess::over_deployment(model, net.points(), 11);
        let mut delta = ChurnDelta::new();
        session.bench_n(&format!("churn/apply_churn/{n}"), n, 3, 20, || {
            proc.step_into(net.alive(), &mut delta);
            net.apply_churn(&delta);
            black_box(net.live_count());
        });

        // The epoch-refresh kernel alone, over a fixed deployment.
        let mut refresh_net = Network::new(pts.clone(), params).expect("valid");
        session.bench_n(
            &format!("churn/commgraph_rebuild_from/{n}"),
            n,
            3,
            20,
            || {
                refresh_net.refresh_comm_graph();
                black_box(refresh_net.comm_graph().num_edges());
            },
        );

        // A full churned epoch, engine-shaped: churn, move, reindex,
        // connectivity, then 8 grid-native rounds through reused scratch.
        let mut epoch_net = Network::new(pts.clone(), params)
            .expect("valid")
            .with_interference_mode(InterferenceMode::grid_native());
        let mut epoch_proc: ChurnProcess<_> =
            ChurnProcess::over_deployment(model, epoch_net.points(), 13);
        let mut epoch_delta = ChurnDelta::new();
        let mut mob = Mobility::over_deployment(
            MobilityModel::RandomWaypoint {
                speed: 0.2,
                pause_epochs: 0,
            },
            epoch_net.points(),
            13,
        );
        let mut scratch = GraphScratch::new();
        let mut oracle = epoch_net.new_oracle();
        let mut out = RoundOutcome::empty();
        let mut tx: Vec<usize> = Vec::new();
        session.bench(&format!("churn/epoch_8_rounds_churned/{n}"), n, || {
            epoch_proc.step_into(epoch_net.alive(), &mut epoch_delta);
            epoch_net.apply_churn(&epoch_delta);
            mob.ensure_stations(epoch_net.len());
            epoch_net.update_positions(|pts| mob.advance(pts));
            epoch_net.refresh_comm_graph();
            black_box(epoch_net.comm_graph().is_connected_with(&mut scratch));
            tx.clear();
            tx.extend(
                (0..epoch_net.len())
                    .filter(|&i| epoch_net.is_alive(i))
                    .step_by(50),
            );
            for _round in 0..8 {
                epoch_net.resolve_with(&mut oracle, &tx, &mut out);
            }
            black_box(&out);
        });
    }
}
