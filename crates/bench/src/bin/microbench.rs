//! Machine-readable benchmark runner for every tracked suite.
//!
//! Runs the shared [`sinr_bench::phy_suite`],
//! [`sinr_bench::broadcast_suite`], [`sinr_bench::coloring_suite`],
//! [`sinr_bench::mobility_suite`], [`sinr_bench::churn_suite`],
//! [`sinr_bench::degradation_suite`] and [`sinr_bench::repair_suite`]
//! and always writes a unified JSON report (default `BENCH.json`,
//! override with `--json <path>`; `--quick` shrinks sizes for CI smoke
//! runs; `--suite phy|broadcast|coloring|mobility|churn|degradation|repair`
//! runs one suite only):
//!
//! ```text
//! cargo run --release -p sinr-bench --bin microbench \
//!     [-- --json BENCH.json] [-- --quick] [-- --suite phy]
//! ```
//!
//! When the physical-layer suite runs, its records are additionally
//! written next to the unified report with a `_phy` stem suffix — for
//! the default output that is `BENCH_phy.json`, the historical per-layer
//! file, kept as an alias of the `legacy/`+`oracle/` section.
//!
//! CI runs this on every push, uploads both reports as workflow
//! artifacts, and gates on regressions against the committed `BENCH.json`
//! via the `bench_gate` binary; the copies committed at the repository
//! root record the before/after trajectory of the tracked kernels.
//! (Compile with `--features legacy-parity` to also measure the frozen
//! pre-oracle baseline rows.)

use sinr_bench::microbench::Session;
use sinr_bench::{
    broadcast_suite, churn_suite, coloring_suite, degradation_suite, mobility_suite, phy_suite,
    repair_suite, simd_suite,
};

fn main() {
    let mut session = Session::from_args();
    session.default_json("BENCH.json");
    let suite = session.suite.clone().unwrap_or_else(|| "all".into());
    let want = |name: &str| suite == "all" || suite == name;
    assert!(
        [
            "all",
            "phy",
            "simd",
            "broadcast",
            "coloring",
            "mobility",
            "churn",
            "degradation",
            "repair"
        ]
        .contains(&suite.as_str()),
        "unknown --suite {suite}; expected all, phy, simd, broadcast, coloring, mobility, churn, degradation or repair"
    );
    if want("phy") {
        phy_suite::run(&mut session);
        // The physical-layer alias derives from the unified report path
        // (BENCH.json → BENCH_phy.json), so smoke runs with a custom
        // --json target never clobber the committed trajectory files.
        let alias = session
            .sibling_json("_phy")
            .expect("unified report path is set");
        session
            .write_filtered(&alias, |r| {
                r.name.starts_with("legacy/") || r.name.starts_with("oracle/")
            })
            .unwrap_or_else(|e| panic!("write {}: {e}", alias.display()));
    }
    if want("simd") {
        simd_suite::run(&mut session);
    }
    if want("broadcast") {
        broadcast_suite::run(&mut session);
    }
    if want("coloring") {
        coloring_suite::run(&mut session);
    }
    if want("mobility") {
        mobility_suite::run(&mut session);
    }
    if want("churn") {
        churn_suite::run(&mut session);
    }
    if want("degradation") {
        degradation_suite::run(&mut session);
    }
    if want("repair") {
        repair_suite::run(&mut session);
    }
    session.finish().expect("write benchmark report");
}
