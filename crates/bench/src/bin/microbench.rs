//! Machine-readable physical-layer benchmark runner.
//!
//! Runs the shared [`sinr_bench::phy_suite`] and always writes a JSON
//! report (default `BENCH_phy.json`, override with `--json <path>`;
//! `--quick` shrinks sizes for CI smoke runs):
//!
//! ```text
//! cargo run --release -p sinr-bench --bin microbench [-- --json BENCH_phy.json] [-- --quick]
//! ```
//!
//! CI runs this on every push and uploads the report as a workflow
//! artifact; the copy committed at the repository root records the
//! before/after trajectory of the reception-oracle hot path.

use sinr_bench::microbench::Session;
use sinr_bench::phy_suite;

fn main() {
    let mut session = Session::from_args();
    session.default_json("BENCH_phy.json");
    phy_suite::run(&mut session);
    session.finish().expect("write benchmark report");
}
