//! Million-station repair smoke: the scale claim as an executable check.
//!
//! Builds a 10⁶-station deployment, runs three incremental repair
//! epochs (0.1% movers each) through [`GridIndex::repair_with_policy`]
//! and [`CommGraph::repair`], and then verifies the repaired structures
//! against fresh from-scratch builds — bit for bit. CI runs this in the
//! test job (`cargo run --release -p sinr-bench --bin repair_smoke`), so
//! the n=10⁶ path is exercised on every push even though the full
//! `repair/1000000/*` benchmark rows only regenerate with the committed
//! `BENCH.json`.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin repair_smoke [-- <n>]
//! ```
//!
//! The optional positional argument overrides the station count for
//! local experimentation; CI uses the default.

use std::time::Instant;

use sinr_bench::repair_suite::REPAIR_DENSITY;
use sinr_geometry::{GridIndex, Point2, RepairPolicy};
use sinr_netgen::uniform;
use sinr_phy::{CommGraph, SinrParams};

// Wall-clock progress timing in the smoke driver: bench is the one crate
// allowed to read clocks (clippy.toml mirrors sinr-lint wall-clock).
#[allow(clippy::disallowed_methods)]
fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("station count is an integer"))
        .unwrap_or(1_000_000);
    let radius = SinrParams::default_plane().comm_radius();
    let side = uniform::side_for_density(n, REPAIR_DENSITY);

    let t = Instant::now();
    let mut pts = uniform::square(n, side, 7);
    let mut grid = GridIndex::build(&pts, 1.0);
    let mut graph = CommGraph::build(&pts, radius);
    graph.rebuild_from::<Point2>(&pts, None); // regrow the owned index static builds drop
    println!(
        "repair_smoke: built n={n} ({} edges) in {:.2?}",
        graph.num_edges(),
        t.elapsed()
    );

    let k = (n / 1000).max(1);
    let stride = (n / k).max(1);
    let movers: Vec<usize> = (0..k).map(|i| i * stride).collect();
    let mut sign = 0.25f64;
    for epoch in 0..3 {
        let t = Instant::now();
        for &j in &movers {
            pts[j].x += sign;
        }
        sign = -sign;
        grid.repair_with_policy(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
        graph.repair(&movers, &pts, None, RepairPolicy::AlwaysIncremental);
        println!(
            "repair_smoke: epoch {epoch} repaired {} movers in {:.2?}",
            movers.len(),
            t.elapsed()
        );
    }

    let t = Instant::now();
    assert_eq!(
        grid,
        GridIndex::build(&pts, 1.0),
        "repaired grid must equal a fresh build bit for bit"
    );
    assert_eq!(
        graph,
        CommGraph::build(&pts, radius),
        "repaired graph must equal a fresh build bit for bit"
    );
    println!(
        "repair_smoke: OK — repaired structures bit-identical to fresh builds (checked in {:.2?})",
        t.elapsed()
    );
}
