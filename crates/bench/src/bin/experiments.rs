//! Experiment harness CLI.
//!
//! ```text
//! experiments <id>... [--quick] [--seed S]
//! experiments all [--quick]
//! experiments list
//! ```
//!
//! Each id regenerates one table of EXPERIMENTS.md (e1..e9, a1, a2).

use std::process::ExitCode;

use sinr_bench::experiments::{run_by_id, ALL_IDS};
use sinr_bench::ExpConfig;

fn usage() {
    eprintln!("usage: experiments <id>... [--quick] [--seed S]");
    eprintln!("       experiments all [--quick]");
    eprintln!("       experiments list");
    eprintln!("ids: {}", ALL_IDS.join(", "));
}

// Wall-clock progress timing in the experiments driver: bench is the one
// crate allowed to read clocks (clippy.toml mirrors sinr-lint wall-clock).
#[allow(clippy::disallowed_methods)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    for id in &ids {
        let start = std::time::Instant::now();
        match run_by_id(id, &cfg) {
            Some(_) => eprintln!("[{id}] done in {:.1}s\n", start.elapsed().as_secs_f64()),
            None => {
                eprintln!("unknown experiment id: {id}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
