//! CI benchmark regression gate.
//!
//! Compares a freshly generated benchmark report against the committed
//! baseline and **fails** (exit code 1) when any tracked kernel regressed
//! by more than the allowed ratio — turning `BENCH.json` from an uploaded
//! artifact into an enforced contract:
//!
//! ```text
//! cargo run --release -p sinr-bench --bin bench_gate -- \
//!     --baseline BENCH.json --fresh BENCH_fresh.json [--max-ratio 1.25] [--floor-ns 10000]
//! ```
//!
//! Rules:
//!
//! * only records whose names start with a tracked prefix (the
//!   [`TRACKED`] list: `oracle/`, `broadcast/`, `coloring/`,
//!   `mobility/`, `churn/`, `degradation/`, `repair/`, `simd/`) are
//!   gated — `legacy/` rows are a frozen baseline, not a kernel under
//!   development;
//! * a baseline row recorded on a different CPU feature tier (its `tier`
//!   field vs the fresh run's) is skipped, not compared — an `avx2+fma`
//!   `simd/` timing is meaningless on a NEON or scalar-only machine;
//! * a fresh record is compared against the baseline record of the same
//!   name; names present in only one file are reported but never fail
//!   the gate (quick CI runs cover a subset of the committed sizes);
//! * comparisons use `min_ns` (the least noisy statistic of the minimal
//!   harness) and baselines faster than the floor (default 10 µs) are
//!   skipped as noise-dominated;
//! * every skip is counted and the summary line reports how many tracked
//!   rows were floor-skipped or lacked a baseline row, so a gate run
//!   that silently compares less than it appears to is visible in the
//!   log rather than indistinguishable from full coverage.

use std::process::ExitCode;

use sinr_bench::microbench::parse_records;

/// Record-name prefixes the gate enforces.
const TRACKED: &[&str] = &[
    "oracle/",
    "broadcast/",
    "coloring/",
    "mobility/",
    "churn/",
    "degradation/",
    "repair/",
    "simd/",
];

struct Args {
    baseline: String,
    fresh: String,
    max_ratio: f64,
    floor_ns: u128,
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut fresh = None;
    let mut max_ratio = 1.25f64;
    let mut floor_ns = 10_000u128;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--fresh" => fresh = Some(value("--fresh")),
            "--max-ratio" => max_ratio = value("--max-ratio").parse().expect("ratio is a number"),
            "--floor-ns" => floor_ns = value("--floor-ns").parse().expect("floor is an integer"),
            other => panic!("unknown argument {other}"),
        }
    }
    Args {
        baseline: baseline.expect("--baseline <path> is required"),
        fresh: fresh.expect("--fresh <path> is required"),
        max_ratio,
        floor_ns,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let read = |path: &str| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        parse_records(&text)
    };
    let baseline = read(&args.baseline);
    let fresh = read(&args.fresh);
    assert!(!baseline.is_empty(), "no records in {}", args.baseline);
    assert!(!fresh.is_empty(), "no records in {}", args.fresh);

    let mut compared = 0usize;
    let mut skipped_no_baseline = 0usize;
    let mut skipped_floor = 0usize;
    let mut skipped_tier = 0usize;
    let mut regressions = Vec::new();
    for f in &fresh {
        if !TRACKED.iter().any(|p| f.name.starts_with(p)) {
            continue;
        }
        let Some(b) = baseline.iter().find(|b| b.name == f.name) else {
            skipped_no_baseline += 1;
            println!("gate: {:<44} (no baseline row; skipped)", f.name);
            continue;
        };
        if !b.tier.is_empty() && b.tier != f.tier {
            skipped_tier += 1;
            println!(
                "gate: {:<44} baseline tier `{}` != machine tier `{}`; skipped",
                f.name, b.tier, f.tier
            );
            continue;
        }
        if b.min_ns < args.floor_ns {
            skipped_floor += 1;
            println!(
                "gate: {:<44} baseline {} ns below floor; skipped",
                f.name, b.min_ns
            );
            continue;
        }
        compared += 1;
        let ratio = f.min_ns as f64 / b.min_ns as f64;
        let verdict = if ratio > args.max_ratio {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "gate: {:<44} baseline {:>12} ns  fresh {:>12} ns  ratio {ratio:.3}  {verdict}",
            f.name, b.min_ns, f.min_ns
        );
        if ratio > args.max_ratio {
            regressions.push((f.name.clone(), ratio));
        }
    }
    println!(
        "gate: compared {compared} tracked kernels against {} (max ratio {}); \
         skipped {skipped_floor} below the {} ns floor, {skipped_no_baseline} without a \
         baseline row, {skipped_tier} recorded on a different CPU tier",
        args.baseline, args.max_ratio, args.floor_ns
    );
    if regressions.is_empty() {
        println!("gate: PASS");
        return ExitCode::SUCCESS;
    }
    println!("gate: FAIL — {} kernel(s) regressed:", regressions.len());
    for (name, ratio) in &regressions {
        println!(
            "gate:   {name} slowed {ratio:.2}x (limit {:.2}x)",
            args.max_ratio
        );
    }
    ExitCode::FAILURE
}
