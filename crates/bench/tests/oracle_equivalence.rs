//! Property-style equivalence tests for the stateful `ReceptionOracle`.
//!
//! Compiled only under the `legacy-parity` feature (CI test jobs enable
//! it): the frozen pre-PR2 implementation these tests pin against is no
//! longer part of default builds.
#![cfg(feature = "legacy-parity")]
//!
//! For every netgen family (uniform, cluster, line, grid), several seeds
//! and every backward-compatible `InterferenceMode`, the oracle must match
//! the one-shot `resolve_round` **field-for-field** — and for the
//! order-stable modes (`Exact`, `Truncated`) it must also match the frozen
//! pre-PR implementation (`sinr_bench::legacy`) bit-for-bit, pinning
//! backward compatibility against the code that shipped before the oracle
//! existed. The grid-native kernel is additionally checked against exact
//! physics: identical decode decisions wherever the SINR margin exceeds
//! its documented tail error, which these spread-out families guarantee.

use rand::{Rng, SeedableRng, SmallRng};
use sinr_bench::legacy;
use sinr_geometry::{GridIndex, Point2};
use sinr_netgen::{cluster, grid as netgrid, line, uniform};
use sinr_phy::{resolve_round, InterferenceMode, ReceptionOracle, RoundOutcome, SinrParams};

/// Seeded transmitter subset: every station transmits with probability
/// `p`, replayable from `seed`.
fn draw_tx(n: usize, p: f64, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).filter(|_| rng.gen_range(0.0..1.0) < p).collect()
}

fn families(seed: u64) -> Vec<(&'static str, Vec<Point2>)> {
    vec![
        (
            "uniform",
            uniform::square(300, uniform::side_for_density(300, 12.0), seed),
        ),
        (
            "cluster",
            cluster::chain_of_clusters(8, 30, 0.35, 0.07, seed),
        ),
        (
            "line",
            line::halving_line(120, 0.45, 0.97, 0.05), // deterministic family: vary tx by seed instead
        ),
        ("grid", netgrid::jittered_lattice(15, 20, 0.7, 0.2, seed)),
    ]
}

fn compat_modes() -> [InterferenceMode; 3] {
    [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
    ]
}

#[test]
fn oracle_matches_resolve_round_field_for_field() {
    let params = SinrParams::default_plane();
    let mut oracle = ReceptionOracle::new();
    let mut out = RoundOutcome::empty();
    for seed in [1u64, 2, 3] {
        for (family, pts) in families(seed) {
            let grid = GridIndex::build(&pts, 1.0);
            let tx = draw_tx(pts.len(), 0.05, seed * 1000 + 7);
            for mode in compat_modes() {
                let free = resolve_round(&pts, &params, &tx, mode, Some(&grid));
                // The reused oracle (warm scratch from previous families
                // and modes) must agree field-for-field.
                oracle.resolve_into(&pts, &params, &tx, mode, Some(&grid), &mut out);
                assert_eq!(
                    free, out,
                    "{family} seed {seed} {mode:?}: oracle != resolve_round"
                );
                assert_eq!(free.num_transmitters, tx.len());
            }
            // Grid-native resolves through the same reused scratch.
            oracle.resolve_into(
                &pts,
                &params,
                &tx,
                InterferenceMode::grid_native(),
                Some(&grid),
                &mut out,
            );
            let fresh = ReceptionOracle::new().resolve(
                &pts,
                &params,
                &tx,
                InterferenceMode::grid_native(),
                Some(&grid),
            );
            assert_eq!(
                fresh, out,
                "{family} seed {seed}: warm != fresh grid-native"
            );
        }
    }
}

#[test]
fn oracle_is_bit_for_bit_backward_compatible_on_order_stable_modes() {
    // `Exact` and `Truncated` accumulate in the historical order, so the
    // frozen pre-PR implementation must agree exactly — including every
    // floating-point sum, hence every decode decision, on every family.
    let params = SinrParams::default_plane();
    for seed in [1u64, 2, 3] {
        for (family, pts) in families(seed) {
            let grid = GridIndex::build(&pts, 1.0);
            let tx = draw_tx(pts.len(), 0.08, seed * 1000 + 13);
            for mode in [
                InterferenceMode::Exact,
                InterferenceMode::Truncated { radius: 4.0 },
            ] {
                let old = legacy::resolve_round(&pts, &params, &tx, mode, Some(&grid));
                let new = resolve_round(&pts, &params, &tx, mode, Some(&grid));
                assert_eq!(old, new, "{family} seed {seed} {mode:?}");
            }
            // Cell-aggregate: the legacy hash-map cell order is
            // nondeterministic, so only decode decisions are comparable.
            let mode = InterferenceMode::CellAggregate { near_radius: 4.0 };
            let old = legacy::resolve_round(&pts, &params, &tx, mode, Some(&grid));
            let new = resolve_round(&pts, &params, &tx, mode, Some(&grid));
            assert_eq!(
                old.decoded_from, new.decoded_from,
                "{family} seed {seed} cell-aggregate decisions"
            );
        }
    }
}

#[test]
fn grid_native_agrees_with_exact_decisions_on_spread_families() {
    let params = SinrParams::default_plane();
    let mut worst = 0usize;
    for seed in [1u64, 2, 3] {
        for (family, pts) in families(seed) {
            let grid = GridIndex::build(&pts, 1.0);
            let tx = draw_tx(pts.len(), 0.05, seed * 1000 + 29);
            let exact = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
            let native = resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::grid_native(),
                Some(&grid),
            );
            let disagreements = exact
                .decoded_from
                .iter()
                .zip(&native.decoded_from)
                .filter(|(a, b)| a != b)
                .count();
            worst = worst.max(disagreements);
            assert!(
                disagreements * 100 <= pts.len(),
                "{family} seed {seed}: {disagreements}/{} decisions flipped",
                pts.len()
            );
        }
    }
    // Across all 12 family/seed combinations the kernel should be
    // essentially exact at these densities.
    assert!(worst <= 3, "worst-case disagreement {worst} too high");
}
