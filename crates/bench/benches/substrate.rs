//! Benchmarks of the substrates: communication-graph construction, BFS
//! diameter, grid-index queries and topology generation.
//!
//! ```text
//! cargo bench -p sinr-bench --bench substrate
//! ```

use sinr_bench::microbench::{bench, black_box};
use sinr_geometry::{GridIndex, Point2};
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::{CommGraph, SinrParams};

fn main() {
    let params = SinrParams::default_plane();
    for &n in &[1024usize, 4096] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::square(n, side, 5);
        bench(&format!("comm_graph/build/{n}"), || {
            black_box(CommGraph::build(&pts, params.comm_radius()));
        });
        let g = CommGraph::build(&pts, params.comm_radius());
        bench(&format!("comm_graph/bfs/{n}"), || {
            black_box(g.bfs(0));
        });
        bench(&format!("comm_graph/double_sweep/{n}"), || {
            black_box(g.diameter_double_sweep(0));
        });
    }

    let n = 4096;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::square(n, side, 9);
    let grid = GridIndex::build(&pts, 1.0);
    let center = Point2::new(side / 2.0, side / 2.0);
    bench("grid_ball_r1_4096", || {
        black_box(grid.ball_vec(&pts, center, 1.0));
    });
    bench("grid_build_4096", || {
        black_box(GridIndex::build(&pts, 1.0));
    });

    let side_1024 = uniform::side_for_density(1024, 30.0);
    bench("netgen/uniform_1024", || {
        black_box(uniform::square(1024, side_1024, 3));
    });
    bench("netgen/chain_d16", || {
        black_box(cluster::chain_for_diameter(16, 12, &params, 3));
    });
    bench("netgen/granularity_line_256", || {
        black_box(line::granularity_line(256, params.comm_radius(), 1e6, 2e-9));
    });
}
