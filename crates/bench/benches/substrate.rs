//! Benchmarks of the substrates: communication-graph construction, BFS
//! diameter, grid-index queries and topology generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_geometry::{GridIndex, Point2};
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::{CommGraph, SinrParams};

fn bench_commgraph(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let mut group = c.benchmark_group("comm_graph");
    for &n in &[1024usize, 4096] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::square(n, side, 5);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| CommGraph::build(&pts, params.comm_radius()))
        });
        let g = CommGraph::build(&pts, params.comm_radius());
        group.bench_with_input(BenchmarkId::new("bfs", n), &n, |b, _| {
            b.iter(|| g.bfs(0))
        });
        group.bench_with_input(BenchmarkId::new("double_sweep", n), &n, |b, _| {
            b.iter(|| g.diameter_double_sweep(0))
        });
    }
    group.finish();
}

fn bench_grid_queries(c: &mut Criterion) {
    let n = 4096;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::square(n, side, 9);
    let grid = GridIndex::build(&pts, 1.0);
    c.bench_function("grid_ball_r1_4096", |b| {
        let center = Point2::new(side / 2.0, side / 2.0);
        b.iter(|| grid.ball_vec(&pts, center, 1.0))
    });
    c.bench_function("grid_build_4096", |b| {
        b.iter(|| GridIndex::build(&pts, 1.0))
    });
}

fn bench_generators(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let mut group = c.benchmark_group("netgen");
    group.bench_function("uniform_1024", |b| {
        let side = uniform::side_for_density(1024, 30.0);
        b.iter(|| uniform::square(1024, side, 3))
    });
    group.bench_function("chain_d16", |b| {
        b.iter(|| cluster::chain_for_diameter(16, 12, &params, 3))
    });
    group.bench_function("granularity_line_256", |b| {
        b.iter(|| line::granularity_line(256, params.comm_radius(), 1e6, 2e-9))
    });
    group.finish();
}

criterion_group!(benches, bench_commgraph, bench_grid_queries, bench_generators);
criterion_main!(benches);
