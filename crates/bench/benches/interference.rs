//! Micro-benchmarks of the SINR reception oracle: exact vs truncated
//! interference evaluation across network sizes and transmitter densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_geometry::GridIndex;
use sinr_netgen::uniform;
use sinr_phy::{resolve_round, InterferenceMode, SinrParams};

fn bench_resolve_round(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let mut group = c.benchmark_group("resolve_round");
    for &n in &[256usize, 1024, 4096] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::square(n, side, 7);
        let grid = GridIndex::build(&pts, 1.0);
        // ~2% of stations transmit (typical dissemination load).
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None))
        });
        group.bench_with_input(BenchmarkId::new("truncated_r4", n), &n, |b, _| {
            b.iter(|| {
                resolve_round(
                    &pts,
                    &params,
                    &tx,
                    InterferenceMode::Truncated { radius: 4.0 },
                    Some(&grid),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("cell_aggregate_r4", n), &n, |b, _| {
            b.iter(|| {
                resolve_round(
                    &pts,
                    &params,
                    &tx,
                    InterferenceMode::CellAggregate { near_radius: 4.0 },
                    Some(&grid),
                )
            })
        });
    }
    group.finish();
}

fn bench_dense_transmitters(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let mut group = c.benchmark_group("resolve_round_dense");
    let n = 1024;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::square(n, side, 11);
    for &fraction in &[2usize, 10, 25] {
        let tx: Vec<usize> = (0..n).step_by(100 / fraction).collect();
        group.bench_with_input(
            BenchmarkId::new("exact_pct", fraction),
            &fraction,
            |b, _| b.iter(|| resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolve_round, bench_dense_transmitters);
criterion_main!(benches);
