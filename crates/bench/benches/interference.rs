//! Micro-benchmarks of the SINR reception oracle: exact vs truncated
//! interference evaluation across network sizes and transmitter densities.
//!
//! ```text
//! cargo bench -p sinr-bench --bench interference
//! ```

use sinr_bench::microbench::{bench, black_box};
use sinr_geometry::GridIndex;
use sinr_netgen::uniform;
use sinr_phy::{resolve_round, InterferenceMode, SinrParams};

fn main() {
    let params = SinrParams::default_plane();
    for &n in &[256usize, 1024, 4096] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::square(n, side, 7);
        let grid = GridIndex::build(&pts, 1.0);
        // ~2% of stations transmit (typical dissemination load).
        let tx: Vec<usize> = (0..n).step_by(50).collect();
        bench(&format!("resolve_round/exact/{n}"), || {
            black_box(resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::Exact,
                None,
            ));
        });
        bench(&format!("resolve_round/truncated_r4/{n}"), || {
            black_box(resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::Truncated { radius: 4.0 },
                Some(&grid),
            ));
        });
        bench(&format!("resolve_round/cell_aggregate_r4/{n}"), || {
            black_box(resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::CellAggregate { near_radius: 4.0 },
                Some(&grid),
            ));
        });
    }

    let n = 1024;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::square(n, side, 11);
    for &fraction in &[2usize, 10, 25] {
        let tx: Vec<usize> = (0..n).step_by(100 / fraction).collect();
        bench(&format!("resolve_round_dense/exact_pct/{fraction}"), || {
            black_box(resolve_round(
                &pts,
                &params,
                &tx,
                InterferenceMode::Exact,
                None,
            ));
        });
    }
}
