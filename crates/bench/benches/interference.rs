//! Micro-benchmarks of the SINR reception oracle: the frozen pre-oracle
//! baseline (`legacy/...`) vs the reusable zero-allocation
//! `ReceptionOracle` (`oracle/...`), across interference modes, network
//! sizes and transmitter densities.
//!
//! ```text
//! cargo bench -p sinr-bench --bench interference [-- --json out.json] [-- --quick]
//! ```
//!
//! The same suite backs the `microbench` binary that CI runs to produce
//! the tracked `BENCH_phy.json`.

use sinr_bench::microbench::Session;
use sinr_bench::phy_suite;

fn main() {
    let mut session = Session::from_args();
    phy_suite::run(&mut session);
    session.finish().expect("write benchmark report");
}
