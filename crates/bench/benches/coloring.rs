//! Benchmarks of the full `StabilizeProbability` execution and of the
//! invariant verifiers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_netgen::uniform;
use sinr_phy::SinrParams;

fn bench_stabilize(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let mut group = c.benchmark_group("stabilize_probability");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_stabilize(pts.clone(), &params, consts, 5).expect("valid"))
        });
    }
    group.finish();
}

fn bench_verifiers(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let n = 512;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
    let run = run_stabilize(pts.clone(), &params, consts, 5).expect("valid");
    c.bench_function("invariant_report_512", |b| {
        b.iter(|| invariant_report(&pts, &run.coloring, params.eps()))
    });
}

criterion_group!(benches, bench_stabilize, bench_verifiers);
criterion_main!(benches);
