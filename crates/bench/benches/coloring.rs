//! Benchmarks of the full `StabilizeProbability` execution and of the
//! invariant verifiers.
//!
//! ```text
//! cargo bench -p sinr-bench --bench coloring [-- --json out.json] [-- --quick]
//! ```
//!
//! The same suite backs the `microbench` binary that CI runs to produce
//! the tracked `BENCH.json`.

use sinr_bench::coloring_suite;
use sinr_bench::microbench::Session;

fn main() {
    let mut session = Session::from_args();
    coloring_suite::run(&mut session);
    session.finish().expect("write benchmark report");
}
