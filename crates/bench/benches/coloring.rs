//! Benchmarks of the full `StabilizeProbability` execution and of the
//! invariant verifiers.
//!
//! ```text
//! cargo bench -p sinr-bench --bench coloring
//! ```

use sinr_bench::microbench::{bench, black_box};
use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_netgen::uniform;
use sinr_phy::SinrParams;

fn main() {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    for &n in &[128usize, 256, 512] {
        let side = uniform::side_for_density(n, 30.0);
        let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
        bench(&format!("stabilize_probability/{n}"), || {
            black_box(run_stabilize(pts.clone(), &params, consts, 5).expect("valid"));
        });
    }

    let n = 512;
    let side = uniform::side_for_density(n, 30.0);
    let pts = uniform::connected_square(n, side, &params, 3).expect("connected");
    let run = run_stabilize(pts.clone(), &params, consts, 5).expect("valid");
    bench("invariant_report_512", || {
        black_box(invariant_report(&pts, &run.coloring, params.eps()));
    });
}
