//! Benchmarks of end-to-end broadcast runs (one per theorem) and of the
//! baselines, on a fixed cluster chain, through the `Scenario` API.
//!
//! ```text
//! cargo bench -p sinr-bench --bench broadcast [-- --json out.json] [-- --quick]
//! ```
//!
//! The same suite backs the `microbench` binary that CI runs to produce
//! the tracked `BENCH.json`.

use sinr_bench::broadcast_suite;
use sinr_bench::microbench::Session;

fn main() {
    let mut session = Session::from_args();
    broadcast_suite::run(&mut session);
    session.finish().expect("write benchmark report");
}
