//! Benchmarks of end-to-end broadcast runs (one per theorem) and of the
//! baselines, on a fixed cluster chain, through the `Scenario` API.
//!
//! ```text
//! cargo bench -p sinr-bench --bench broadcast
//! ```

use sinr_bench::microbench::{bench, black_box};
use sinr_core::Constants;
use sinr_sim::{ProtocolSpec, Scenario, TopologySpec};

fn main() {
    let consts = Constants::tuned();
    let d = 4u32;
    let per_cluster = 10;
    let n = (d as usize + 1) * per_cluster;
    let topology = TopologySpec::ClusterChain {
        diameter: d,
        per_cluster,
    };
    let seed = 3;

    let cases: Vec<(&str, ProtocolSpec, u64)> = vec![
        (
            "s_broadcast",
            ProtocolSpec::SBroadcast { source: 0 },
            2_000_000,
        ),
        (
            "nos_broadcast",
            ProtocolSpec::NoSBroadcast { source: 0 },
            consts.phase_rounds(n) * (u64::from(d) + 4) * 2,
        ),
        (
            "daum",
            ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: None,
            },
            2_000_000,
        ),
        (
            "flood_p02",
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.2 },
            2_000_000,
        ),
    ];
    for (name, spec, budget) in cases {
        let sim = Scenario::new(topology.clone())
            .constants(consts)
            .protocol(spec)
            .budget(budget)
            .build()
            .expect("valid scenario");
        bench(&format!("broadcast_chain_d4/{name}"), || {
            black_box(sim.run(seed).expect("valid"));
        });
    }

    // The sweep path itself: 8 seeds in parallel vs serially.
    let sim = Scenario::new(topology)
        .constants(consts)
        .protocol(ProtocolSpec::SBroadcast { source: 0 })
        .budget(2_000_000)
        .build()
        .expect("valid scenario");
    let seeds: Vec<u64> = (0..8).collect();
    bench("broadcast_chain_d4/sweep8_serial", || {
        black_box(sim.sweep_with_threads(&seeds, 1).expect("valid"));
    });
    bench("broadcast_chain_d4/sweep8_parallel", || {
        black_box(sim.sweep(&seeds).expect("valid"));
    });
}
