//! Benchmarks of end-to-end broadcast runs (one per theorem) and of the
//! baselines, on a fixed cluster chain.

use criterion::{criterion_group, criterion_main, Criterion};
use sinr_core::{
    run::{run_daum_broadcast, run_flood_broadcast, run_nos_broadcast, run_s_broadcast},
    Constants,
};
use sinr_netgen::cluster;
use sinr_phy::SinrParams;

fn bench_broadcasts(c: &mut Criterion) {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let d = 4;
    let pts = cluster::chain_for_diameter(d, 10, &params, 1);
    let n = pts.len();
    let mut group = c.benchmark_group("broadcast_chain_d4");
    group.sample_size(10);
    group.bench_function("s_broadcast", |b| {
        b.iter(|| {
            run_s_broadcast(pts.clone(), &params, consts, 0, 3, 2_000_000).expect("valid")
        })
    });
    group.bench_function("nos_broadcast", |b| {
        b.iter(|| {
            let budget = consts.phase_rounds(n) * (d as u64 + 4) * 2;
            run_nos_broadcast(pts.clone(), &params, consts, 0, 3, budget).expect("valid")
        })
    });
    group.bench_function("daum", |b| {
        b.iter(|| run_daum_broadcast(pts.clone(), &params, 0, None, 3, 2_000_000).expect("valid"))
    });
    group.bench_function("flood_p02", |b| {
        b.iter(|| run_flood_broadcast(pts.clone(), &params, 0, 0.2, 3, 2_000_000).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_broadcasts);
criterion_main!(benches);
