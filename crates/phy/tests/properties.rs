//! Property-based tests of the SINR reception oracle.

use proptest::prelude::*;
use sinr_geometry::{MetricPoint, Point2};
use sinr_phy::{
    interference_at, resolve_round, total_signal_at, InterferenceMode, SinrParams,
};

/// Nudges duplicate points apart (netgen has the full version; phy cannot
/// dev-depend on it without a cycle).
fn separate(pts: &mut Vec<Point2>) {
    let mut k = 0u32;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if pts[i].distance(&pts[j]) < 1e-6 {
                k += 1;
                pts[j] = pts[j].translate(1e-5 * k as f64, 1e-5);
            }
        }
    }
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0f64..6.0, 0.0f64..6.0), 2..max).prop_map(|cs| {
        let mut pts: Vec<Point2> = cs.into_iter().map(Point2::from).collect();
        separate(&mut pts);
        pts
    })
}

proptest! {
    /// Adding a transmitter never *improves* any other station's SINR: a
    /// station that decoded transmitter v keeps decoding v or loses the
    /// reception (possibly to the new transmitter) — it can never start
    /// decoding a previously-jammed third party.
    #[test]
    fn adding_a_transmitter_is_monotone(pts in arb_points(24), extra_idx in 0usize..24) {
        let params = SinrParams::default_plane();
        let n = pts.len();
        let extra = extra_idx % n;
        // Base transmitter set: every third station, excluding `extra`.
        let base: Vec<usize> = (0..n).step_by(3).filter(|&i| i != extra).collect();
        prop_assume!(!base.is_empty());
        let before = resolve_round(&pts, &params, &base, InterferenceMode::Exact, None);
        let mut extended = base.clone();
        extended.push(extra);
        let after = resolve_round(&pts, &params, &extended, InterferenceMode::Exact, None);
        for u in 0..n {
            if u == extra {
                continue; // became a transmitter, loses reception by design
            }
            if let Some(v_after) = after.decoded_from[u] {
                // Any reception surviving the extra interference must be
                // from the old decoded transmitter or from the newcomer.
                prop_assert!(
                    before.decoded_from[u] == Some(v_after) || v_after == extra,
                    "station {u} decoded {v_after:?} only after interference grew"
                );
            }
        }
    }

    /// With β ≥ 1, at most one station transmits successfully *to* any
    /// receiver, and every decoded transmitter is the nearest one among
    /// those the receiver could possibly decode.
    #[test]
    fn decoded_transmitter_is_strongest(pts in arb_points(20)) {
        let params = SinrParams::default_plane();
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(2).collect();
        let out = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        for u in 0..n {
            if let Some(v) = out.decoded_from[u] {
                let dv = pts[u].distance(&pts[v]);
                for &w in &tx {
                    if w != u {
                        prop_assert!(
                            pts[u].distance(&pts[w]) >= dv - 1e-12,
                            "decoded transmitter was not the closest"
                        );
                    }
                }
            }
        }
    }

    /// Total signal decomposes: total = interference + strongest-excluded
    /// part, and both are non-negative and finite.
    #[test]
    fn interference_below_total_signal(pts in arb_points(20)) {
        let params = SinrParams::default_plane();
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(2).collect();
        for u in 0..n {
            let total = total_signal_at(&pts, &params, &tx, u);
            let interference = interference_at(&pts, &params, &tx, u);
            prop_assert!(total.is_finite() && interference.is_finite());
            prop_assert!(interference >= 0.0);
            prop_assert!(interference <= total + 1e-12);
        }
    }

    /// Exact and truncated modes agree whenever the truncation radius
    /// covers the whole deployment.
    #[test]
    fn truncation_with_full_radius_is_exact(pts in arb_points(20)) {
        let params = SinrParams::default_plane();
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(4).collect();
        let grid = sinr_geometry::GridIndex::build(&pts, 1.0);
        let exact = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &params,
            &tx,
            InterferenceMode::Truncated { radius: 100.0 },
            Some(&grid),
        );
        prop_assert_eq!(exact, trunc);
    }

    /// Reception requires being within the unit communication range: no
    /// station ever decodes a transmitter farther than 1.
    #[test]
    fn no_reception_beyond_range(pts in arb_points(24)) {
        let params = SinrParams::default_plane();
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(3).collect();
        let out = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        for u in 0..n {
            if let Some(v) = out.decoded_from[u] {
                prop_assert!(pts[u].distance(&pts[v]) <= params.range() + 1e-12);
            }
        }
    }
}
