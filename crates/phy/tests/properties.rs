//! Property-based tests of the SINR reception oracle, driven by seeded
//! random deployments (plain loops over a seeded RNG — the offline build
//! has no proptest; every case is replayable from its printed case id).

use rand::{Rng, SeedableRng, SmallRng};
use sinr_geometry::{MetricPoint, Point2};
use sinr_phy::{interference_at, resolve_round, total_signal_at, InterferenceMode, SinrParams};

const CASES: u64 = 32;

/// Nudges duplicate points apart (netgen has the full version; phy cannot
/// dev-depend on it without a cycle).
fn separate(pts: &mut [Point2]) {
    let mut k = 0u32;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if pts[i].distance(&pts[j]) < 1e-6 {
                k += 1;
                pts[j] = pts[j].translate(1e-5 * k as f64, 1e-5);
            }
        }
    }
}

/// Random deployment of 2..max points in a 6×6 square.
fn random_points(rng: &mut SmallRng, max: usize) -> Vec<Point2> {
    let n = rng.gen_range(2usize..max);
    let mut pts: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)))
        .collect();
    separate(&mut pts);
    pts
}

/// Adding a transmitter never *improves* any other station's SINR: a
/// station that decoded transmitter v keeps decoding v or loses the
/// reception (possibly to the new transmitter) — it can never start
/// decoding a previously-jammed third party.
#[test]
fn adding_a_transmitter_is_monotone() {
    let params = SinrParams::default_plane();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA0_0001 + case);
        let pts = random_points(&mut rng, 24);
        let n = pts.len();
        let extra = rng.gen_range(0usize..24) % n;
        // Base transmitter set: every third station, excluding `extra`.
        let base: Vec<usize> = (0..n).step_by(3).filter(|&i| i != extra).collect();
        if base.is_empty() {
            continue;
        }
        let before = resolve_round(&pts, &params, &base, InterferenceMode::Exact, None);
        let mut extended = base.clone();
        extended.push(extra);
        let after = resolve_round(&pts, &params, &extended, InterferenceMode::Exact, None);
        for u in 0..n {
            if u == extra {
                continue; // became a transmitter, loses reception by design
            }
            if let Some(v_after) = after.decoded_from[u] {
                // Any reception surviving the extra interference must be
                // from the old decoded transmitter or from the newcomer.
                assert!(
                    before.decoded_from[u] == Some(v_after) || v_after == extra,
                    "case {case}: station {u} decoded {v_after:?} only after interference grew"
                );
            }
        }
    }
}

/// With β ≥ 1, at most one station transmits successfully *to* any
/// receiver, and every decoded transmitter is the nearest one among those
/// the receiver could possibly decode.
#[test]
fn decoded_transmitter_is_strongest() {
    let params = SinrParams::default_plane();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA0_1001 + case);
        let pts = random_points(&mut rng, 20);
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(2).collect();
        let out = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        for u in 0..n {
            if let Some(v) = out.decoded_from[u] {
                let dv = pts[u].distance(&pts[v]);
                for &w in &tx {
                    if w != u {
                        assert!(
                            pts[u].distance(&pts[w]) >= dv - 1e-12,
                            "case {case}: decoded transmitter was not the closest"
                        );
                    }
                }
            }
        }
    }
}

/// Total signal decomposes: total = interference + strongest-excluded
/// part, and both are non-negative and finite.
#[test]
fn interference_below_total_signal() {
    let params = SinrParams::default_plane();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA0_2001 + case);
        let pts = random_points(&mut rng, 20);
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(2).collect();
        for u in 0..n {
            let total = total_signal_at(&pts, &params, &tx, u);
            let interference = interference_at(&pts, &params, &tx, u);
            assert!(total.is_finite() && interference.is_finite(), "case {case}");
            assert!(interference >= 0.0, "case {case}");
            assert!(interference <= total + 1e-12, "case {case}");
        }
    }
}

/// Exact and truncated modes agree whenever the truncation radius covers
/// the whole deployment.
#[test]
fn truncation_with_full_radius_is_exact() {
    let params = SinrParams::default_plane();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA0_3001 + case);
        let pts = random_points(&mut rng, 20);
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(4).collect();
        let grid = sinr_geometry::GridIndex::build(&pts, 1.0);
        let exact = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &params,
            &tx,
            InterferenceMode::Truncated { radius: 100.0 },
            Some(&grid),
        );
        assert_eq!(exact, trunc, "case {case}");
    }
}

/// Reception requires being within the unit communication range: no
/// station ever decodes a transmitter farther than 1.
#[test]
fn no_reception_beyond_range() {
    let params = SinrParams::default_plane();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA0_4001 + case);
        let pts = random_points(&mut rng, 24);
        let n = pts.len();
        let tx: Vec<usize> = (0..n).step_by(3).collect();
        let out = resolve_round(&pts, &params, &tx, InterferenceMode::Exact, None);
        for u in 0..n {
            if let Some(v) = out.decoded_from[u] {
                assert!(
                    pts[u].distance(&pts[v]) <= params.range() + 1e-12,
                    "case {case}"
                );
            }
        }
    }
}
