//! Differential battery for the Tarjan articulation-point sweep:
//! [`CommGraph::cut_vertices_into`] must agree, vertex for vertex, with
//! the old remove-one-and-recount probe on seeded uniform, cluster and
//! line graphs — with and without liveness masks — and the probe is
//! re-implemented here over the public API so the comparison stays
//! independent of the production code path.

use sinr_geometry::Point2;
use sinr_phy::{CommGraph, GraphScratch, UNREACHABLE};

/// Minimal deterministic LCG (Numerical Recipes constants) so the
/// battery depends on nothing but the seed literals below.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn unit_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The pre-Tarjan implementation: count live components, then re-count
/// with each live degree-positive vertex excluded and report the ones
/// whose removal increases the count. `O(n·(n+m))` — fine at test sizes.
fn probe_cut_vertices(g: &CommGraph) -> Vec<usize> {
    fn component_count(g: &CommGraph, excluded: Option<usize>) -> usize {
        let mut dist = vec![UNREACHABLE; g.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut count = 0;
        for src in 0..g.len() {
            if !g.is_present(src) || Some(src) == excluded || dist[src] != UNREACHABLE {
                continue;
            }
            count += 1;
            dist[src] = 0;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                for &u in g.neighbors(v) {
                    if Some(u) != excluded && dist[u] == UNREACHABLE {
                        dist[u] = dist[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        count
    }

    if g.num_present() < 3 {
        return Vec::new();
    }
    let base = component_count(g, None);
    (0..g.len())
        .filter(|&v| g.is_present(v) && g.degree(v) > 0)
        .filter(|&v| component_count(g, Some(v)) > base)
        .collect()
}

fn assert_matches_probe(g: &CommGraph, label: &str) {
    let mut scratch = GraphScratch::new();
    let mut tarjan = Vec::new();
    g.cut_vertices_into(&mut scratch, &mut tarjan);
    let expected = probe_cut_vertices(g);
    assert_eq!(tarjan, expected, "cut-vertex mismatch on {label}");
    assert!(
        tarjan.windows(2).all(|w| w[0] < w[1]),
        "output not strictly ascending on {label}"
    );
}

fn uniform_points(n: usize, side: f64, rng: &mut Lcg) -> Vec<Point2> {
    (0..n)
        .map(|_| Point2::new(rng.unit_f64() * side, rng.unit_f64() * side))
        .collect()
}

/// `k` tight blobs strung along a line — rich in bridges between blobs,
/// so the battery exercises deep non-trivial articulation structure.
fn cluster_points(k: usize, per_cluster: usize, rng: &mut Lcg) -> Vec<Point2> {
    let mut pts = Vec::with_capacity(k * per_cluster);
    for c in 0..k {
        let cx = c as f64 * 0.9;
        for _ in 0..per_cluster {
            pts.push(Point2::new(
                cx + (rng.unit_f64() - 0.5) * 0.4,
                (rng.unit_f64() - 0.5) * 0.4,
            ));
        }
    }
    pts
}

/// A line with seed-jittered gaps: gaps near the radius make and break
/// edges, producing long chains of articulation points.
fn line_points(n: usize, rng: &mut Lcg) -> Vec<Point2> {
    let mut x = 0.0;
    (0..n)
        .map(|_| {
            x += 0.3 + rng.unit_f64() * 0.5;
            Point2::new(x, 0.0)
        })
        .collect()
}

fn mask(n: usize, dead_fraction: f64, rng: &mut Lcg) -> Vec<bool> {
    (0..n).map(|_| rng.unit_f64() >= dead_fraction).collect()
}

#[test]
fn differential_uniform_graphs() {
    for seed in [1u64, 2014, 77, 0xDEAD] {
        let mut rng = Lcg(seed);
        // Sparse through dense: side 6 at n=120 gives many components
        // and bridges; side 2.5 is near-clique.
        for side in [6.0, 4.0, 2.5] {
            let pts = uniform_points(120, side, &mut rng);
            let g = CommGraph::build(&pts, 0.9);
            assert_matches_probe(&g, &format!("uniform seed={seed} side={side}"));
            let alive = mask(pts.len(), 0.3, &mut rng);
            let gm = CommGraph::build_masked(&pts, &alive, 0.9);
            assert_matches_probe(&gm, &format!("uniform-masked seed={seed} side={side}"));
        }
    }
}

#[test]
fn differential_cluster_graphs() {
    for seed in [3u64, 41, 9000] {
        let mut rng = Lcg(seed);
        let pts = cluster_points(6, 12, &mut rng);
        let g = CommGraph::build(&pts, 0.55);
        assert_matches_probe(&g, &format!("cluster seed={seed}"));
        let alive = mask(pts.len(), 0.25, &mut rng);
        let gm = CommGraph::build_masked(&pts, &alive, 0.55);
        assert_matches_probe(&gm, &format!("cluster-masked seed={seed}"));
    }
}

#[test]
fn differential_line_graphs() {
    for seed in [5u64, 123, 0xBEEF] {
        let mut rng = Lcg(seed);
        let pts = line_points(80, &mut rng);
        let g = CommGraph::build(&pts, 0.6);
        assert_matches_probe(&g, &format!("line seed={seed}"));
        let alive = mask(pts.len(), 0.2, &mut rng);
        let gm = CommGraph::build_masked(&pts, &alive, 0.6);
        assert_matches_probe(&gm, &format!("line-masked seed={seed}"));
    }
}

#[test]
fn scratch_reuse_across_shapes() {
    // One scratch driven across graphs of different sizes and shapes
    // must keep producing probe-identical answers (the per-epoch reuse
    // pattern of the adversary planner).
    let mut scratch = GraphScratch::new();
    let mut out = Vec::new();
    let mut rng = Lcg(42);
    for n in [5usize, 60, 200, 30] {
        let pts = uniform_points(n, (n as f64).sqrt() * 0.6, &mut rng);
        let g = CommGraph::build(&pts, 0.9);
        g.cut_vertices_into(&mut scratch, &mut out);
        assert_eq!(out, probe_cut_vertices(&g), "reuse mismatch at n={n}");
    }
}
