//! Proves the `ReceptionOracle` hot path performs **zero heap
//! allocations** in steady state, via a counting global allocator.
//!
//! This file holds exactly one test: the allocation counter is a process
//! global, so no other test may run in this binary (integration-test
//! binaries are separate processes, keeping the counter isolated from the
//! rest of the suite).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sinr_geometry::{GridIndex, Point2};
use sinr_phy::{
    CommGraph, GraphScratch, InterferenceMode, KernelPool, ReceptionOracle, RoundOutcome,
    SinrParams,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — every contract of
// `GlobalAlloc` (layout validity, pointer provenance, no unwinding) is
// upheld by `System`; the only addition is a relaxed atomic counter bump,
// which cannot allocate or panic.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (nonzero-size
    // `layout`); it is forwarded unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (`ptr` was
    // allocated here with `layout`, `new_size` nonzero); forwarded
    // unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract (`ptr` was
    // allocated here with `layout`); forwarded unchanged to
    // `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_round_resolution_allocates_nothing() {
    // A deployment dense enough to exercise every branch of every kernel:
    // near/far cells, multi-member buckets, interference-failed decodes.
    let n = 600;
    let mut pts: Vec<Point2> = (0..n)
        .map(|i| {
            let x = (i % 30) as f64 * 0.55 + ((i * 7) % 11) as f64 * 0.031;
            let y = (i / 30) as f64 * 0.55 + ((i * 13) % 9) as f64 * 0.047;
            Point2::new(x, y)
        })
        .collect();
    let mut grid = GridIndex::build(&pts, 1.0);
    let params = SinrParams::default_plane();
    // Two transmitter sets of different sizes: switching sets must not
    // reallocate either (capacity high-water mark).
    let tx_big: Vec<usize> = (0..n).step_by(4).collect();
    let tx_small: Vec<usize> = (0..n).step_by(17).collect();
    let modes = [
        InterferenceMode::Exact,
        InterferenceMode::Truncated { radius: 4.0 },
        InterferenceMode::CellAggregate { near_radius: 4.0 },
        InterferenceMode::grid_native(),
    ];

    let mut oracle = ReceptionOracle::new();
    let mut out = RoundOutcome::empty();
    // Warm-up: every mode sees the largest transmitter set once, growing
    // all scratch buffers to their high-water marks.
    for mode in modes {
        oracle.resolve_into(&pts, &params, &tx_big, mode, Some(&grid), &mut out);
        oracle.resolve_into(&pts, &params, &tx_small, mode, Some(&grid), &mut out);
    }

    // The explicitly pooled entry point with one worker shares the serial
    // code path and must be equally allocation-free in steady state.
    let mut pool = KernelPool::serial();
    for mode in modes {
        oracle.resolve_into_with(
            &pts,
            &params,
            &tx_big,
            mode,
            Some(&grid),
            &mut pool,
            &mut out,
        );
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _round in 0..25 {
        for mode in modes {
            oracle.resolve_into(&pts, &params, &tx_big, mode, Some(&grid), &mut out);
            oracle.resolve_into_with(
                &pts,
                &params,
                &tx_small,
                mode,
                Some(&grid),
                &mut pool,
                &mut out,
            );
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state resolve_into performed {} heap allocations over 200 rounds",
        after - before
    );

    // Sanity: the warm oracle still produces correct outcomes.
    assert_eq!(out.num_transmitters, tx_small.len());
    assert!(out.decoded_from.len() == n);

    // --- The epoch reindex path of dynamic topologies ---
    //
    // Stations oscillate between two configurations — each recomputed
    // from a frozen base, so revisits are bit-exact (an in-place `+d`
    // then `-d` drift would not be: fl((x+d)-d) ≠ x in general, and cell
    // occupancy could creep past the warmed high-water mark) — and the
    // grid rebuilds **in place** at every epoch boundary. One warm-up
    // cycle grows the rebuild scratch to its high-water mark; after
    // that, a full epoch — the boundary rebuild plus every round inside
    // the epoch, in every mode — performs zero heap allocations:
    // reindexing only ever *reuses* buffers.
    let base = pts.clone();
    let place = |pts: &mut [Point2], phase: f64| {
        for (i, p) in pts.iter_mut().enumerate() {
            p.x = base[i].x + phase * (0.35 + ((i % 7) as f64) * 0.11);
            p.y = base[i].y + phase * (0.20 + ((i % 5) as f64) * 0.09);
        }
    };
    // Warm-up cycle: out and back.
    for phase in [1.0, 0.0] {
        place(&mut pts, phase);
        grid.rebuild_from(&pts);
        for mode in modes {
            oracle.resolve_into(&pts, &params, &tx_big, mode, Some(&grid), &mut out);
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _cycle in 0..10 {
        for phase in [1.0, 0.0] {
            // Epoch boundary: move and reindex in place.
            place(&mut pts, phase);
            grid.rebuild_from(&pts);
            // Rounds within the epoch.
            for mode in modes {
                oracle.resolve_into(&pts, &params, &tx_big, mode, Some(&grid), &mut out);
                oracle.resolve_into_with(
                    &pts,
                    &params,
                    &tx_small,
                    mode,
                    Some(&grid),
                    &mut pool,
                    &mut out,
                );
            }
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "epoch reindexing performed {} heap allocations over 20 epochs",
        after - before
    );
    assert_eq!(out.num_transmitters, tx_small.len());

    // --- The per-epoch connectivity path of dynamic topologies ---
    //
    // The engine refreshes the communication graph at every epoch
    // boundary (CSR rebuilt in place through the graph's own spatial
    // index) and checks live connectivity through reused BFS scratch.
    // After one warm-up cycle over both configurations, a full epoch of
    // graph refresh + BFS + connectivity performs zero heap allocations.
    let mut graph = CommGraph::build(&pts, params.comm_radius());
    let mut scratch = GraphScratch::new();
    // Cut-vertex output buffer: grown to worst case up front, so the
    // Tarjan sweep's push loop cannot trigger a capacity doubling.
    let mut cuts = Vec::with_capacity(n);
    for phase in [1.0, 0.0] {
        place(&mut pts, phase);
        graph.rebuild_from(&pts, None);
        let _ = graph.is_connected_with(&mut scratch);
        let _ = graph.bfs_with(0, &mut scratch);
        let _ = graph.eccentricity_with(0, &mut scratch);
        graph.cut_vertices_into(&mut scratch, &mut cuts);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut connected_votes = 0usize;
    let mut cut_total = 0usize;
    for _cycle in 0..10 {
        for phase in [1.0, 0.0] {
            place(&mut pts, phase);
            graph.rebuild_from(&pts, None);
            if graph.is_connected_with(&mut scratch) {
                connected_votes += 1;
            }
            let _ = graph.bfs_with(0, &mut scratch);
            // The adversary planner's per-epoch pair: eccentricity and
            // the Tarjan cut-vertex sweep, both over the same scratch.
            let _ = graph.eccentricity_with(0, &mut scratch);
            graph.cut_vertices_into(&mut scratch, &mut cuts);
            cut_total += cuts.len();
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "comm-graph refresh + connectivity performed {} heap allocations over 20 epochs",
        after - before
    );
    // Sanity: the checks actually ran (the displaced phase may or may
    // not disconnect the graph; either answer is fine — what this test
    // pins is that computing it allocates nothing).
    assert!(connected_votes <= 20);
    assert!(cut_total <= 20 * n);
    assert_eq!(graph.len(), n);
}
