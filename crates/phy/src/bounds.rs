//! Parameter uncertainty: stations know only **bounds** on the SINR
//! parameters.
//!
//! The paper (Section 1.1, "Knowledge of stations") does not assume stations
//! know α, β, N exactly — only ranges `[α_min, α_max]`, `[β_min, β_max]`,
//! `[N_min, N_max]`; "it is sufficient to choose their maximal/minimal
//! values depending on the fact whether upper or lower estimates are
//! provided". [`ParamBounds`] captures the ranges and derives the
//! conservative values each algorithm-side quantity needs:
//!
//! * interference-margin constants (the `q` of Lemma 6) must assume the
//!   *worst* interference accumulation → `α_min` (slowest decay far-field),
//!   `β_max`, `N_max`;
//! * the Playoff jamming scale `c_ε = Θ(1/ε^α)` must assume the *weakest*
//!   signals at distance ε → `α_max`;
//! * any signal-strength lower bound at distance < 1 uses `α_max`, any
//!   upper bound uses `α_min`.
//!
//! The physical channel itself is simulated with the *true* parameters; the
//! uncertainty only affects what protocols assume (see the
//! `param_uncertainty` integration test).

use crate::params::{ParamError, SinrParams};

/// Known ranges for the SINR parameters.
///
/// # Example
///
/// ```
/// use sinr_phy::{ParamBounds, SinrParams};
/// let truth = SinrParams::default_plane();
/// let bounds = ParamBounds::around(&truth, 0.2)?;
/// assert!(bounds.contains(&truth));
/// // The conservative parameter set is valid and at least as pessimistic:
/// let safe = bounds.conservative(truth.eps(), truth.gamma())?;
/// assert!(safe.noise() >= truth.noise());
/// # Ok::<(), sinr_phy::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamBounds {
    alpha_min: f64,
    alpha_max: f64,
    beta_min: f64,
    beta_max: f64,
    noise_min: f64,
    noise_max: f64,
}

impl ParamBounds {
    /// Creates bounds from explicit ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when a range is inverted, non-finite, or
    /// violates the model constraints at its extremes (`β_min < 1`,
    /// `N_min ≤ 0`, `α_min ≤ 0`).
    pub fn new(alpha: (f64, f64), beta: (f64, f64), noise: (f64, f64)) -> Result<Self, ParamError> {
        for (name, (lo, hi)) in [("alpha", alpha), ("beta", beta), ("noise", noise)] {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(param_error(format!(
                    "{name} range [{lo}, {hi}] must be finite and ordered"
                )));
            }
        }
        if alpha.0 <= 0.0 {
            return Err(param_error(format!(
                "alpha_min must be positive, got {}",
                alpha.0
            )));
        }
        if beta.0 < 1.0 {
            return Err(param_error(format!(
                "beta_min must be >= 1, got {}",
                beta.0
            )));
        }
        if noise.0 <= 0.0 {
            return Err(param_error(format!(
                "noise_min must be positive, got {}",
                noise.0
            )));
        }
        Ok(ParamBounds {
            alpha_min: alpha.0,
            alpha_max: alpha.1,
            beta_min: beta.0,
            beta_max: beta.1,
            noise_min: noise.0,
            noise_max: noise.1,
        })
    }

    /// Symmetric relative bounds of width `rel` around the true parameters
    /// (e.g. `rel = 0.2` gives ±20%), floored so the extremes stay valid.
    ///
    /// # Errors
    ///
    /// As [`ParamBounds::new`]; also rejects `rel` outside `[0, 1)`.
    pub fn around(truth: &SinrParams, rel: f64) -> Result<Self, ParamError> {
        if !(0.0..1.0).contains(&rel) {
            return Err(param_error(format!("rel must be in [0, 1), got {rel}")));
        }
        let lo = 1.0 - rel;
        let hi = 1.0 + rel;
        ParamBounds::new(
            (truth.alpha() * lo, truth.alpha() * hi),
            ((truth.beta() * lo).max(1.0), truth.beta() * hi),
            (truth.noise() * lo, truth.noise() * hi),
        )
    }

    /// Whether the true parameters lie within the bounds.
    pub fn contains(&self, p: &SinrParams) -> bool {
        (self.alpha_min..=self.alpha_max).contains(&p.alpha())
            && (self.beta_min..=self.beta_max).contains(&p.beta())
            && (self.noise_min..=self.noise_max).contains(&p.noise())
    }

    /// Minimum path-loss exponent (worst-case far-field accumulation).
    pub fn alpha_min(&self) -> f64 {
        self.alpha_min
    }

    /// Maximum path-loss exponent (worst-case signal decay).
    pub fn alpha_max(&self) -> f64 {
        self.alpha_max
    }

    /// Maximum decoding threshold.
    pub fn beta_max(&self) -> f64 {
        self.beta_max
    }

    /// Maximum ambient noise.
    pub fn noise_max(&self) -> f64 {
        self.noise_max
    }

    /// The **conservative parameter set** an algorithm should plan with:
    /// the hardest decoding (`β_max`, `N_max`) and the weakest useful signal
    /// (`α_max`), validated against the deployment dimension `gamma`.
    ///
    /// Quantities that need the *opposite* extreme (interference sums, which
    /// accumulate worst under slow decay) should read
    /// [`ParamBounds::alpha_min`] directly — `sinr_core`'s paper-constant
    /// derivation does exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the conservative extremes violate the
    /// model (e.g. `α_max ≤ γ` — uncertainty too wide for the dimension).
    pub fn conservative(&self, eps: f64, gamma: f64) -> Result<SinrParams, ParamError> {
        SinrParams::builder()
            .alpha(self.alpha_max)
            .beta(self.beta_max)
            .noise(self.noise_max)
            .eps(eps)
            .build(gamma)
    }
}

fn param_error(what: String) -> ParamError {
    ParamError::new(what)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn around_contains_truth() {
        let truth = SinrParams::default_plane();
        let b = ParamBounds::around(&truth, 0.15).unwrap();
        assert!(b.contains(&truth));
        assert!(b.alpha_min() < truth.alpha());
        assert!(b.alpha_max() > truth.alpha());
    }

    #[test]
    fn conservative_is_pessimistic() {
        let truth = SinrParams::default_plane();
        let b = ParamBounds::around(&truth, 0.1).unwrap();
        let safe = b.conservative(truth.eps(), truth.gamma()).unwrap();
        assert!(safe.beta() >= truth.beta());
        assert!(safe.noise() >= truth.noise());
        assert!(safe.alpha() >= truth.alpha());
        // Weakest signal at distance < 1... conservative range is shorter
        // or equal: signal at 0.9 under alpha_max <= under truth... equal
        // at d >= 1 boundary; the decodable radius can only shrink.
        assert!(safe.power() >= truth.power());
    }

    #[test]
    fn zero_width_bounds_reproduce_truth() {
        let truth = SinrParams::default_plane();
        let b = ParamBounds::new(
            (truth.alpha(), truth.alpha()),
            (truth.beta(), truth.beta()),
            (truth.noise(), truth.noise()),
        )
        .unwrap();
        let safe = b.conservative(truth.eps(), truth.gamma()).unwrap();
        assert_eq!(safe, truth);
    }

    #[test]
    fn rejects_inverted_range() {
        assert!(ParamBounds::new((3.0, 2.0), (1.0, 1.5), (0.5, 2.0)).is_err());
    }

    #[test]
    fn rejects_beta_below_one() {
        assert!(ParamBounds::new((2.5, 3.5), (0.8, 1.5), (0.5, 2.0)).is_err());
    }

    #[test]
    fn too_wide_alpha_fails_at_conservative_when_below_gamma() {
        // alpha range dipping to 1.5 is fine for bounds, and conservative
        // uses alpha_max so it still validates against gamma = 2.
        let b = ParamBounds::new((1.5, 3.0), (1.0, 1.2), (1.0, 1.0)).unwrap();
        assert!(b.conservative(0.5, 2.0).is_ok());
        // But a conservative alpha_max <= gamma must fail.
        let b = ParamBounds::new((1.2, 1.8), (1.0, 1.2), (1.0, 1.0)).unwrap();
        assert!(b.conservative(0.5, 2.0).is_err());
    }

    #[test]
    fn around_rejects_bad_rel() {
        let truth = SinrParams::default_plane();
        assert!(ParamBounds::around(&truth, 1.0).is_err());
        assert!(ParamBounds::around(&truth, -0.1).is_err());
    }
}
