//! The stateful, zero-allocation reception oracle.
//!
//! [`resolve_round`](crate::reception::resolve_round) answers "who hears
//! whom" for a single round, but every call allocates its accumulation
//! buffers from scratch. Protocol runs resolve *thousands* of rounds over
//! the same deployment, so the hot path wants the dual shape: construct
//! once per trial, reuse across rounds. [`ReceptionOracle`] owns all the
//! per-round scratch — total-power/best-power/best-index accumulators, the
//! transmitter bitmap, flat sorted transmitter-cell buckets (replacing the
//! per-round hash map the aggregate mode used to build), and the
//! near-bucket scratch of the grid-native kernel — and resolves rounds with
//! **zero steady-state heap allocations** (pinned by the counting-allocator
//! test `oracle_alloc.rs`).
//!
//! The oracle reproduces the free function **field-for-field** in every
//! [`InterferenceMode`]; `Exact` and `Truncated` accumulate in the same
//! order as the historical implementation, so they are bit-for-bit
//! backward compatible. `CellAggregate` now iterates transmitter cells in
//! sorted key order (the historical hash-map order was
//! nondeterministic — see the regression test in `reception.rs`), and the
//! new [`InterferenceMode::GridNative`] kernel is only available here and
//! through the wrappers that delegate here.

use sinr_geometry::{CellKey, GridIndex, MetricPoint};

use crate::params::SinrParams;
use crate::reception::{InterferenceMode, RoundOutcome};

/// Reusable per-round state for resolving reception rounds without
/// allocating.
///
/// Build one per trial ([`crate::Network::new_oracle`] sizes it for the
/// network) and feed it every round; buffers grow to the high-water mark
/// on the first round and are reused afterwards.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{InterferenceMode, Network, ReceptionOracle, RoundOutcome, SinrParams};
///
/// let net = Network::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
///     SinrParams::default_plane(),
/// )?;
/// let mut oracle = net.new_oracle();
/// let mut out = RoundOutcome::empty();
/// for _round in 0..3 {
///     net.resolve_with(&mut oracle, &[0], &mut out); // no allocations after round 0
///     assert_eq!(out.decoded_from[1], Some(0));
/// }
/// # Ok::<(), sinr_phy::NetworkError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReceptionOracle {
    /// Total received power per station.
    total: Vec<f64>,
    /// Strongest received signal per station.
    best_pow: Vec<f64>,
    /// Transmitter of the strongest signal (`usize::MAX` = none yet).
    best_idx: Vec<usize>,
    /// Whether each station transmits this round (half-duplex).
    is_tx: Vec<bool>,
    /// `(cell key, transmitter)` pairs, sorted lexicographically per round.
    tx_cells: Vec<(CellKey, usize)>,
    /// Start offset of each distinct transmitter cell in `tx_cells`, plus a
    /// terminating sentinel.
    bucket_starts: Vec<usize>,
    /// Centroid of each transmitter cell (trailing axes stay 0).
    bucket_centroids: Vec<[f64; 3]>,
    /// Indices (into the bucket arrays) of the near cells of the receiver
    /// cell currently being resolved (grid-native kernel scratch).
    near_buckets: Vec<usize>,
}

impl ReceptionOracle {
    /// An oracle with empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An oracle pre-sized for `n` stations (avoids even the first-round
    /// growth for the per-station buffers).
    pub fn for_stations(n: usize) -> Self {
        let mut oracle = Self::new();
        oracle.reset(n);
        oracle
    }

    /// Resizes (if needed) and clears the per-station accumulators.
    fn reset(&mut self, n: usize) {
        self.total.resize(n, 0.0);
        self.best_pow.resize(n, 0.0);
        self.best_idx.resize(n, usize::MAX);
        self.is_tx.resize(n, false);
        self.total.fill(0.0);
        self.best_pow.fill(0.0);
        self.best_idx.fill(usize::MAX);
        self.is_tx.fill(false);
    }

    /// Total received power per station from the last resolved round
    /// (diagnostics; indexed by station).
    ///
    /// Exposes the raw accumulator so determinism tests can compare
    /// floating-point sums bit-for-bit, not only decode decisions.
    pub fn received_power(&self) -> &[f64] {
        &self.total
    }

    /// Resolves one round into `out`, reusing all internal scratch and the
    /// capacity of `out.decoded_from`.
    ///
    /// Semantics are identical to
    /// [`resolve_round`](crate::reception::resolve_round) (which now
    /// delegates to a one-shot oracle): `transmitters` is the set `T`
    /// (indices into `points`, duplicates not allowed), `grid` is required
    /// for every mode except `Exact` and must be built over `points`.
    ///
    /// # Panics
    ///
    /// Panics if a transmitter index is out of range, if a grid-backed mode
    /// is requested without a grid, or if a mode's radius parameter is
    /// below its documented minimum.
    pub fn resolve_into<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
        out: &mut RoundOutcome,
    ) {
        let n = points.len();
        self.reset(n);
        for &t in transmitters {
            assert!(t < n, "transmitter index {t} out of range (n = {n})");
            self.is_tx[t] = true;
        }

        // Accumulate, per station, the total received power and the
        // strongest transmitter (ties broken towards the first transmitter
        // encountered; transmitter iteration order is deterministic in
        // every mode).
        match mode {
            InterferenceMode::Exact => self.accumulate_exact(points, params, transmitters),
            InterferenceMode::Truncated { radius } => {
                assert!(
                    radius >= params.range(),
                    "truncation radius {radius} must be at least the communication range 1"
                );
                let grid = grid.expect("Truncated interference mode requires a grid index");
                self.accumulate_truncated(points, params, transmitters, radius, grid);
            }
            InterferenceMode::CellAggregate { near_radius } => {
                assert!(
                    near_radius >= 2.0,
                    "near_radius {near_radius} must be at least 2 (range 1 plus cell slack)"
                );
                let grid = grid.expect("CellAggregate interference mode requires a grid index");
                self.bucket_transmitters(points, transmitters, grid);
                self.accumulate_cell_aggregate(points, params, near_radius, grid);
            }
            InterferenceMode::GridNative { near_radius } => {
                assert!(
                    near_radius >= 2.0,
                    "grid-native near radius {near_radius} must be at least 2"
                );
                let grid = grid.expect("GridNative interference mode requires a grid index");
                debug_assert_eq!(grid.len(), n, "grid must index the same points");
                self.bucket_transmitters(points, transmitters, grid);
                self.accumulate_grid_native(points, params, near_radius, grid);
            }
        }

        out.decoded_from.clear();
        out.decoded_from.extend((0..n).map(|u| {
            if self.is_tx[u] || self.best_idx[u] == usize::MAX {
                return None;
            }
            let interference = self.total[u] - self.best_pow[u];
            if params.decodable(self.best_pow[u], interference) {
                Some(self.best_idx[u])
            } else {
                None
            }
        }));
        out.num_transmitters = transmitters.len();
    }

    /// As [`ReceptionOracle::resolve_into`], allocating a fresh outcome.
    pub fn resolve<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
    ) -> RoundOutcome {
        let mut out = RoundOutcome::empty();
        self.resolve_into(points, params, transmitters, mode, grid, &mut out);
        out
    }

    /// Exact Equation (1): every transmitter contributes to every receiver,
    /// in the historical transmitter-major order (bit-for-bit compatible).
    fn accumulate_exact<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
    ) {
        for &t in transmitters {
            let tp = points[t];
            for (u, pu) in points.iter().enumerate() {
                if u == t {
                    continue;
                }
                let s = params.signal_at(tp.distance(pu));
                self.total[u] += s;
                if s > self.best_pow[u] {
                    self.best_pow[u] = s;
                    self.best_idx[u] = t;
                }
            }
        }
    }

    /// Truncated interference through the allocation-free ball visitor.
    ///
    /// Receivers accumulate one term per transmitter in transmitter-major
    /// order, so the visitor's cell-major receiver order leaves every
    /// per-receiver sum bit-for-bit identical to the historical
    /// `grid.ball` iteration.
    fn accumulate_truncated<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        radius: f64,
        grid: &GridIndex,
    ) {
        let total = &mut self.total;
        let best_pow = &mut self.best_pow;
        let best_idx = &mut self.best_idx;
        for &t in transmitters {
            let tp = points[t];
            grid.for_each_in_ball(points, tp, radius, |u| {
                if u == t {
                    return;
                }
                let s = params.signal_at(tp.distance(&points[u]));
                total[u] += s;
                if s > best_pow[u] {
                    best_pow[u] = s;
                    best_idx[u] = t;
                }
            });
        }
    }

    /// Buckets `transmitters` into flat sorted cells of `grid`, computing
    /// per-cell centroids. Reuses `tx_cells` / `bucket_starts` /
    /// `bucket_centroids`; members end up ascending within each cell.
    fn bucket_transmitters<P: MetricPoint>(
        &mut self,
        points: &[P],
        transmitters: &[usize],
        grid: &GridIndex,
    ) {
        self.tx_cells.clear();
        self.tx_cells
            .extend(transmitters.iter().map(|&t| (grid.key_for(&points[t]), t)));
        self.tx_cells.sort_unstable();
        self.bucket_starts.clear();
        self.bucket_centroids.clear();
        let mut i = 0;
        while i < self.tx_cells.len() {
            let key = self.tx_cells[i].0;
            self.bucket_starts.push(i);
            let start = i;
            let mut centroid = [0.0f64; 3];
            while i < self.tx_cells.len() && self.tx_cells[i].0 == key {
                let tp = &points[self.tx_cells[i].1];
                for (axis, slot) in centroid.iter_mut().enumerate().take(P::AXES) {
                    *slot += tp.coord(axis);
                }
                i += 1;
            }
            let k = (i - start) as f64;
            for v in &mut centroid {
                *v /= k;
            }
            self.bucket_centroids.push(centroid);
        }
        self.bucket_starts.push(self.tx_cells.len());
    }

    /// One-level multipole: near cells exactly, far cells as one aggregate
    /// at the cell centroid, per receiver. Cells are visited in sorted key
    /// order, making the floating-point sums deterministic.
    fn accumulate_cell_aggregate<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        near_radius: f64,
        grid: &GridIndex,
    ) {
        let cell = grid.cell_side();
        // Every cell member lies within one cell diagonal of the
        // transmitter centroid.
        let diag = cell * (P::AXES as f64).sqrt();
        let buckets = self.bucket_starts.len() - 1;
        for (u, pu) in points.iter().enumerate() {
            for b in 0..buckets {
                let centroid = &self.bucket_centroids[b];
                let mut d2 = 0.0;
                for (axis, c) in centroid.iter().enumerate().take(P::AXES) {
                    let dd = pu.coord(axis) - c;
                    d2 += dd * dd;
                }
                let dc = d2.sqrt();
                let members = &self.tx_cells[self.bucket_starts[b]..self.bucket_starts[b + 1]];
                if dc > near_radius + diag {
                    // All members are farther than near_radius from u.
                    self.total[u] += members.len() as f64 * params.signal_at(dc);
                } else {
                    for &(_, t) in members {
                        if t == u {
                            continue;
                        }
                        let s = params.signal_at(points[t].distance(pu));
                        self.total[u] += s;
                        if s > self.best_pow[u] {
                            self.best_pow[u] = s;
                            self.best_idx[u] = t;
                        }
                    }
                }
            }
        }
    }

    /// The grid-native kernel: exact decode, approximate tail, shared per
    /// receiver cell.
    ///
    /// One pass over the transmitters builds the sorted cell buckets; then,
    /// per *receiver cell* (not per receiver), transmitter cells within
    /// Chebyshev key distance `⌈near_radius / cell⌉` are evaluated exactly
    /// per member while all farther cells collapse into a single tail term
    /// evaluated once between the two cells' member centroids and shared by
    /// every receiver in the cell. Any decodable transmitter is within
    /// range 1 < `near_radius`, so decode candidates are always exact —
    /// only the interference tail is approximated (at both endpoints, which
    /// is what [`InterferenceMode::GridNative`]'s error bound accounts
    /// for).
    fn accumulate_grid_native<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        near_radius: f64,
        grid: &GridIndex,
    ) {
        let cell = grid.cell_side();
        let near_cells = (near_radius / cell).ceil() as i64;
        let buckets = self.bucket_starts.len() - 1;
        for rc in 0..grid.num_cells() {
            let members = grid.cell_members(rc);
            let rkey = grid.cell_key(rc);
            // Receiver-cell member centroid: the tail evaluation point.
            let mut rcent = [0.0f64; 3];
            for &u in members {
                for (axis, slot) in rcent.iter_mut().enumerate().take(P::AXES) {
                    *slot += points[u].coord(axis);
                }
            }
            let inv = 1.0 / members.len() as f64;
            for v in &mut rcent {
                *v *= inv;
            }
            // Split transmitter cells into near (exact per member) and far
            // (one shared tail term per cell); the split depends only on
            // the receiver CELL, so every (receiver, transmitter) pair is
            // counted exactly once.
            self.near_buckets.clear();
            let mut tail = 0.0f64;
            for b in 0..buckets {
                let bkey = self.tx_cells[self.bucket_starts[b]].0;
                let cheb = (0..P::AXES)
                    .map(|a| (bkey[a] - rkey[a]).abs())
                    .max()
                    .unwrap_or(0);
                if cheb <= near_cells {
                    self.near_buckets.push(b);
                } else {
                    let centroid = &self.bucket_centroids[b];
                    let mut d2 = 0.0;
                    for (axis, c) in centroid.iter().enumerate().take(P::AXES) {
                        let dd = rcent[axis] - c;
                        d2 += dd * dd;
                    }
                    let count = (self.bucket_starts[b + 1] - self.bucket_starts[b]) as f64;
                    tail += count * params.signal_at_sq(d2);
                }
            }
            for &u in members {
                let pu = &points[u];
                self.total[u] += tail;
                for &b in &self.near_buckets {
                    let near = &self.tx_cells[self.bucket_starts[b]..self.bucket_starts[b + 1]];
                    for &(_, t) in near {
                        if t == u {
                            continue;
                        }
                        let s = params.signal_at_sq(points[t].distance_sq(pu));
                        self.total[u] += s;
                        if s > self.best_pow[u] {
                            self.best_pow[u] = s;
                            self.best_idx[u] = t;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reception::resolve_round;
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    fn spread(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64 * 0.9 + ((i * 7) % 5) as f64 * 0.11;
                let y = (i / 20) as f64 * 0.9 + ((i * 13) % 7) as f64 * 0.07;
                Point2::new(x, y)
            })
            .collect()
    }

    #[test]
    fn oracle_matches_free_function_in_every_compat_mode() {
        let pts = spread(200);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let mut oracle = ReceptionOracle::new();
        for mode in [
            InterferenceMode::Exact,
            InterferenceMode::Truncated { radius: 4.0 },
            InterferenceMode::CellAggregate { near_radius: 4.0 },
            InterferenceMode::GridNative { near_radius: 4.0 },
        ] {
            let free = resolve_round(&pts, &p, &tx, mode, Some(&grid));
            let from_oracle = oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
            assert_eq!(free, from_oracle, "{mode:?}");
        }
    }

    #[test]
    fn reused_oracle_matches_fresh_oracle() {
        // Interleave modes and transmitter sets; stale scratch must never
        // leak into a later round.
        let pts = spread(150);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let mut reused = ReceptionOracle::new();
        let rounds: Vec<(Vec<usize>, InterferenceMode)> = vec![
            ((0..150).step_by(7).collect(), InterferenceMode::Exact),
            (
                (0..150).step_by(3).collect(),
                InterferenceMode::GridNative { near_radius: 4.0 },
            ),
            (
                vec![0],
                InterferenceMode::CellAggregate { near_radius: 4.0 },
            ),
            (vec![], InterferenceMode::Truncated { radius: 2.0 }),
            (
                (0..150).step_by(7).collect(),
                InterferenceMode::GridNative { near_radius: 4.0 },
            ),
        ];
        for (tx, mode) in rounds {
            let fresh = ReceptionOracle::new().resolve(&pts, &p, &tx, mode, Some(&grid));
            let again = reused.resolve(&pts, &p, &tx, mode, Some(&grid));
            assert_eq!(fresh, again, "{mode:?} with {} transmitters", tx.len());
        }
    }

    #[test]
    fn grid_native_matches_exact_decisions_on_spread_network() {
        // Decode candidates are exact; only the tail is approximated, so on
        // a spread deployment the decisions must coincide with Exact.
        let pts = spread(200);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let native = ReceptionOracle::new().resolve(
            &pts,
            &p,
            &tx,
            InterferenceMode::GridNative { near_radius: 4.0 },
            Some(&grid),
        );
        let disagreements = exact
            .decoded_from
            .iter()
            .zip(&native.decoded_from)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(disagreements, 0, "grid-native flipped decode decisions");
    }

    #[test]
    fn grid_native_never_decodes_beyond_range_one() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.8, 0.0),
            Point2::new(9.0, 0.0), // isolated far receiver: far-aggregated only
        ];
        let grid = GridIndex::build(&pts, 1.0);
        let out = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 2.0 },
            Some(&grid),
        );
        assert_eq!(out.decoded_from[1], Some(0));
        assert_eq!(out.decoded_from[2], None);
        assert_eq!(out.decoded_from[0], None, "half-duplex");
    }

    #[test]
    fn received_power_exposes_last_round_totals() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let p = params();
        let mut oracle = ReceptionOracle::new();
        let _ = oracle.resolve(&pts, &p, &[0], InterferenceMode::Exact, None);
        assert_eq!(oracle.received_power().len(), 2);
        assert_eq!(oracle.received_power()[0], 0.0, "transmitter hears nothing");
        assert!(
            (oracle.received_power()[1] - p.signal_at(0.5)).abs() < 1e-15,
            "receiver total is the lone signal"
        );
    }

    #[test]
    #[should_panic]
    fn grid_native_requires_grid() {
        let pts = vec![Point2::origin()];
        let _ = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 4.0 },
            None,
        );
    }

    #[test]
    #[should_panic]
    fn grid_native_rejects_small_near_radius() {
        let pts = vec![Point2::origin()];
        let grid = GridIndex::build(&pts, 1.0);
        let _ = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 1.5 },
            Some(&grid),
        );
    }
}
