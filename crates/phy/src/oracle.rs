//! The stateful, zero-allocation reception oracle — a staged
//! **plan → accumulate → decide** pipeline.
//!
//! [`resolve_round`](crate::reception::resolve_round) answers "who hears
//! whom" for a single round, but every call allocates its accumulation
//! buffers from scratch. Protocol runs resolve *thousands* of rounds over
//! the same deployment, so the hot path wants the dual shape: construct
//! once per trial, reuse across rounds. [`ReceptionOracle`] owns all the
//! per-round scratch and resolves rounds with **zero steady-state heap
//! allocations** (pinned by the counting-allocator test `oracle_alloc.rs`).
//!
//! Every round goes through three explicit stages:
//!
//! 1. **plan** — clear the per-station accumulators, mark the transmitter
//!    set, and (for the cell-bucketed modes) sort the transmitters into
//!    flat cell buckets with SoA coordinates and per-cell centroids;
//! 2. **accumulate** — fill, per station, the total received power and
//!    the strongest transmitter. This is the stage that shards: given a
//!    [`KernelPool`] with more than one thread, the grid-native kernel
//!    splits the *receiver cells* into contiguous ranges (each owning a
//!    contiguous slot range of the grid's CSR layout, accumulated into
//!    slot-ordered buffers so shard writes are disjoint slices), and the
//!    exact / cell-aggregate kernels split the station range. Per-receiver
//!    floating-point sums accumulate in the same order as the serial
//!    kernels, so results are **bitwise identical at any thread count**;
//!    truncated mode keeps its historical transmitter-major order and
//!    always runs serially.
//! 3. **decide** — apply the SINR threshold test per station and emit
//!    [`RoundOutcome`].
//!
//! The oracle reproduces the free function **field-for-field** in every
//! [`InterferenceMode`]; `Exact` and `Truncated` accumulate per receiver
//! in the same order as the historical implementation, so they are
//! bit-for-bit backward compatible. `CellAggregate` iterates transmitter
//! cells in sorted key order (the historical hash-map order was
//! nondeterministic — see the regression test in `reception.rs`), and the
//! [`InterferenceMode::GridNative`] kernel — whose near loops run through
//! the batched SoA kernels ([`sinr_geometry::PositionStore`],
//! [`SinrParams::signal_at_sq_batch`]) — is only available here and
//! through the wrappers that delegate here.

use sinr_geometry::{CellKey, GridIndex, KernelDispatch, MetricPoint, PositionStore, SimdTier};

use crate::params::SinrParams;
use crate::pool::{KernelPool, ShardScratch};
use crate::reception::{InterferenceMode, RoundOutcome};

/// Floating-point width of the grid-native interference **tail** sum.
///
/// `F64` (the default) keeps the historical bit-exact accumulation.
/// `F32` accumulates the far-cell tail in single precision — decode
/// decisions and every near-field term stay f64, so only the shared
/// per-cell tail loses precision: relative error within ~2⁻²⁴·√k over k
/// far-cell terms (measured ≤ 4×10⁻⁷ at n = 10⁴; see EXPERIMENTS.md).
/// Because this **changes bits**, the `Scenario` builder refuses to
/// combine it with round recording or attached observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Accumulation {
    /// Double-precision tail accumulation (bit-exact, the default).
    #[default]
    F64,
    /// Single-precision tail accumulation (opt-in speed/accuracy trade).
    F32,
}

impl Accumulation {
    /// Stable wire/diagnostic label: `f64` or `f32`.
    pub fn label(self) -> &'static str {
        match self {
            Accumulation::F64 => "f64",
            Accumulation::F32 => "f32",
        }
    }
}

/// Batch width of the SoA distance/signal kernels: a cache-line-friendly
/// stack buffer, long enough to amortise the loop overhead and keep the
/// autovectorizer fed.
const CHUNK: usize = 64;

/// Reusable per-round state for resolving reception rounds without
/// allocating.
///
/// Build one per trial ([`crate::Network::new_oracle`] sizes it for the
/// network) and feed it every round; buffers grow to the high-water mark
/// on the first round and are reused afterwards. Rounds resolve serially
/// through [`ReceptionOracle::resolve_into`], or sharded across scoped
/// threads through [`ReceptionOracle::resolve_into_with`] and a
/// [`KernelPool`] — with bitwise identical results.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{InterferenceMode, Network, ReceptionOracle, RoundOutcome, SinrParams};
///
/// let net = Network::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
///     SinrParams::default_plane(),
/// )?;
/// let mut oracle = net.new_oracle();
/// let mut out = RoundOutcome::empty();
/// for _round in 0..3 {
///     net.resolve_with(&mut oracle, &[0], &mut out); // no allocations after round 0
///     assert_eq!(out.decoded_from[1], Some(0));
/// }
/// # Ok::<(), sinr_phy::NetworkError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReceptionOracle {
    /// Total received power per station.
    total: Vec<f64>,
    /// Strongest received signal per station.
    best_pow: Vec<f64>,
    /// Transmitter of the strongest signal (`usize::MAX` = none yet).
    best_idx: Vec<usize>,
    /// Whether each station transmits this round (half-duplex).
    is_tx: Vec<bool>,
    /// `(cell key, transmitter)` pairs, sorted lexicographically per round.
    tx_cells: Vec<(CellKey, usize)>,
    /// Start offset of each distinct transmitter cell in `tx_cells`, plus a
    /// terminating sentinel.
    bucket_starts: Vec<usize>,
    /// Centroid of each transmitter cell (trailing axes stay 0).
    bucket_centroids: Vec<[f64; 3]>,
    /// SoA coordinates of the transmitters, aligned with `tx_cells`.
    tx_pos: PositionStore,
    /// Grid-native accumulators in **slot order** (the grid's CSR layout):
    /// shard `s` owns a contiguous slice, scattered back to station order
    /// before the decide stage.
    slot_total: Vec<f64>,
    slot_best_pow: Vec<f64>,
    slot_best_idx: Vec<usize>,
    /// Single-shard pool backing the serial entry points.
    fallback: KernelPool,
    /// Kernel tier override for the batched accumulate kernels.
    dispatch: KernelDispatch,
    /// Precision of the grid-native tail sum.
    accumulation: Accumulation,
}

impl ReceptionOracle {
    /// An oracle with empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An oracle pre-sized for `n` stations (avoids even the first-round
    /// growth for the per-station buffers).
    pub fn for_stations(n: usize) -> Self {
        let mut oracle = Self::new();
        oracle.reset(n);
        oracle
    }

    /// Resizes (if needed) and clears the per-station accumulators.
    fn reset(&mut self, n: usize) {
        self.total.resize(n, 0.0);
        self.best_pow.resize(n, 0.0);
        self.best_idx.resize(n, usize::MAX);
        self.is_tx.resize(n, false);
        self.total.fill(0.0);
        self.best_pow.fill(0.0);
        self.best_idx.fill(usize::MAX);
        self.is_tx.fill(false);
    }

    /// Sets the kernel dispatch for the batched accumulate kernels.
    ///
    /// [`KernelDispatch::Auto`] (the default) resolves once to the best
    /// tier the CPU supports; [`KernelDispatch::ForceScalar`] pins the
    /// scalar reference path. Both produce **bit-identical** results —
    /// this is a speed knob and a differential-testing hook, not a
    /// semantics knob.
    pub fn set_dispatch(&mut self, dispatch: KernelDispatch) {
        self.dispatch = dispatch;
    }

    /// The configured kernel dispatch.
    pub fn dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Sets the precision of the grid-native interference tail sum (see
    /// [`Accumulation`]; `F32` changes low bits of the interference
    /// totals and is rejected by bit-exact reporting configurations).
    pub fn set_accumulation(&mut self, accumulation: Accumulation) {
        self.accumulation = accumulation;
    }

    /// The configured tail accumulation precision.
    pub fn accumulation(&self) -> Accumulation {
        self.accumulation
    }

    /// Total received power per station from the last resolved round
    /// (diagnostics; indexed by station).
    ///
    /// Exposes the raw accumulator so determinism tests can compare
    /// floating-point sums bit-for-bit, not only decode decisions.
    pub fn received_power(&self) -> &[f64] {
        &self.total
    }

    /// Resolves one round into `out` on the calling thread, reusing all
    /// internal scratch and the capacity of `out.decoded_from`.
    ///
    /// Semantics are identical to
    /// [`resolve_round`](crate::reception::resolve_round) (which now
    /// delegates to a one-shot oracle): `transmitters` is the set `T`
    /// (indices into `points`, duplicates not allowed), `grid` is required
    /// for every mode except `Exact` and must be built over `points`.
    ///
    /// # Panics
    ///
    /// Panics if a transmitter index is out of range, if a grid-backed mode
    /// is requested without a grid, or if a mode's radius parameter is
    /// below its documented minimum.
    pub fn resolve_into<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
        out: &mut RoundOutcome,
    ) {
        let mut pool = std::mem::replace(&mut self.fallback, KernelPool::placeholder());
        self.resolve_into_with(points, params, transmitters, mode, grid, &mut pool, out);
        self.fallback = pool;
    }

    /// As [`ReceptionOracle::resolve_into`], sharding the accumulate
    /// stage across `pool`'s worker threads.
    ///
    /// Results are **bitwise identical** to the serial path at any thread
    /// count (see the module docs for the sharding contract); a
    /// [`KernelPool::serial`] pool runs inline and spawns nothing.
    ///
    /// # Panics
    ///
    /// As [`ReceptionOracle::resolve_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_into_with<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
        pool: &mut KernelPool,
        out: &mut RoundOutcome,
    ) {
        self.plan(points, transmitters);
        self.accumulate(points, params, transmitters, mode, grid, pool);
        self.decide(params, transmitters.len(), out);
    }

    /// As [`ReceptionOracle::resolve_into`], allocating a fresh outcome.
    pub fn resolve<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
    ) -> RoundOutcome {
        let mut out = RoundOutcome::empty();
        self.resolve_into(points, params, transmitters, mode, grid, &mut out);
        out
    }

    /// Stage 1 — plan: clear the accumulators and mark the transmitter
    /// set (the cell-bucketed modes additionally bucket transmitters at
    /// the top of their accumulate arm).
    fn plan<P: MetricPoint>(&mut self, points: &[P], transmitters: &[usize]) {
        let n = points.len();
        self.reset(n);
        for &t in transmitters {
            assert!(t < n, "transmitter index {t} out of range (n = {n})");
            self.is_tx[t] = true;
        }
    }

    /// Stage 2 — accumulate, per station, the total received power and the
    /// strongest transmitter (ties broken towards the first transmitter
    /// encountered; transmitter iteration order is deterministic in
    /// every mode).
    fn accumulate<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        mode: InterferenceMode,
        grid: Option<&GridIndex>,
        pool: &mut KernelPool,
    ) {
        let n = points.len();
        match mode {
            InterferenceMode::Exact => self.accumulate_exact(points, params, transmitters, pool),
            InterferenceMode::Truncated { radius } => {
                assert!(
                    radius >= params.range(),
                    "truncation radius {radius} must be at least the communication range 1"
                );
                let grid = grid.expect("Truncated interference mode requires a grid index");
                self.accumulate_truncated(points, params, transmitters, radius, grid);
            }
            InterferenceMode::CellAggregate { near_radius } => {
                assert!(
                    near_radius >= 2.0,
                    "near_radius {near_radius} must be at least 2 (range 1 plus cell slack)"
                );
                let grid = grid.expect("CellAggregate interference mode requires a grid index");
                self.bucket_transmitters(points, transmitters, grid);
                self.accumulate_cell_aggregate(points, params, near_radius, grid, pool);
            }
            InterferenceMode::GridNative { near_radius } => {
                assert!(
                    near_radius >= 2.0,
                    "grid-native near radius {near_radius} must be at least 2"
                );
                let grid = grid.expect("GridNative interference mode requires a grid index");
                debug_assert_eq!(
                    grid.domain_len(),
                    n,
                    "grid must be built over the same point slice"
                );
                self.bucket_transmitters(points, transmitters, grid);
                self.accumulate_grid_native::<P>(params, near_radius, grid, pool);
                self.scatter_slots(grid);
            }
        }
    }

    /// Stage 3 — decide: the SINR threshold test per station.
    fn decide(&mut self, params: &SinrParams, num_transmitters: usize, out: &mut RoundOutcome) {
        let n = self.total.len();
        out.decoded_from.clear();
        out.decoded_from.extend((0..n).map(|u| {
            if self.is_tx[u] || self.best_idx[u] == usize::MAX {
                return None;
            }
            let interference = self.total[u] - self.best_pow[u];
            if params.decodable(self.best_pow[u], interference) {
                Some(self.best_idx[u])
            } else {
                None
            }
        }));
        out.num_transmitters = num_transmitters;
    }

    /// Exact Equation (1): every transmitter contributes to every
    /// receiver, accumulated per receiver in transmitter order (bit-for-bit
    /// compatible with the historical transmitter-major loop). Shards by
    /// contiguous station ranges.
    fn accumulate_exact<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        pool: &mut KernelPool,
    ) {
        let n = points.len();
        let shards = pool.plan_stations(n);
        let (bounds, scratches) = pool.parts();
        run_sharded(
            shards,
            &|s| bounds[s + 1] - bounds[s],
            &mut self.total,
            &mut self.best_pow,
            &mut self.best_idx,
            scratches,
            &|s, t0, p0, i0, _scr| exact_range(bounds[s], t0, p0, i0, points, params, transmitters),
        );
    }

    /// Truncated interference through the allocation-free ball visitor.
    ///
    /// Receivers accumulate one term per transmitter in transmitter-major
    /// order, so the visitor's cell-major receiver order leaves every
    /// per-receiver sum bit-for-bit identical to the historical
    /// `grid.ball` iteration. Always serial: sharding receivers would
    /// repeat every transmitter's ball walk per shard — use
    /// [`InterferenceMode::GridNative`] when the round needs to scale
    /// across threads.
    fn accumulate_truncated<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        transmitters: &[usize],
        radius: f64,
        grid: &GridIndex,
    ) {
        let total = &mut self.total;
        let best_pow = &mut self.best_pow;
        let best_idx = &mut self.best_idx;
        for &t in transmitters {
            let tp = points[t];
            grid.for_each_in_ball(points, tp, radius, |u| {
                if u == t {
                    return;
                }
                let s = params.signal_at(tp.distance(&points[u]));
                total[u] += s;
                if s > best_pow[u] {
                    best_pow[u] = s;
                    best_idx[u] = t;
                }
            });
        }
    }

    /// Buckets `transmitters` into flat sorted cells of `grid`, computing
    /// per-cell centroids and the SoA coordinate copy the batch kernels
    /// stream through. Reuses all bucket buffers; members end up ascending
    /// within each cell.
    fn bucket_transmitters<P: MetricPoint>(
        &mut self,
        points: &[P],
        transmitters: &[usize],
        grid: &GridIndex,
    ) {
        self.tx_cells.clear();
        self.tx_cells
            .extend(transmitters.iter().map(|&t| (grid.key_for(&points[t]), t)));
        self.tx_cells.sort_unstable();
        self.tx_pos.reset_axes(P::AXES);
        for &(_, t) in &self.tx_cells {
            self.tx_pos.push(&points[t]);
        }
        self.bucket_starts.clear();
        self.bucket_centroids.clear();
        let mut i = 0;
        while i < self.tx_cells.len() {
            let key = self.tx_cells[i].0;
            self.bucket_starts.push(i);
            let start = i;
            let mut centroid = [0.0f64; 3];
            while i < self.tx_cells.len() && self.tx_cells[i].0 == key {
                let tp = &points[self.tx_cells[i].1];
                for (axis, slot) in centroid.iter_mut().enumerate().take(P::AXES) {
                    *slot += tp.coord(axis);
                }
                i += 1;
            }
            let k = (i - start) as f64;
            for v in &mut centroid {
                *v /= k;
            }
            self.bucket_centroids.push(centroid);
        }
        self.bucket_starts.push(self.tx_cells.len());
    }

    /// One-level multipole: near cells exactly, far cells as one aggregate
    /// at the cell centroid, per receiver. Cells are visited in sorted key
    /// order, making the floating-point sums deterministic. Shards by
    /// contiguous station ranges.
    fn accumulate_cell_aggregate<P: MetricPoint>(
        &mut self,
        points: &[P],
        params: &SinrParams,
        near_radius: f64,
        grid: &GridIndex,
        pool: &mut KernelPool,
    ) {
        // Every cell member lies within one cell diagonal of the
        // transmitter centroid.
        let diag = grid.cell_side() * (P::AXES as f64).sqrt();
        let n = points.len();
        let shards = pool.plan_stations(n);
        let (bounds, scratches) = pool.parts();
        let tx_cells = &self.tx_cells;
        let bucket_starts = &self.bucket_starts;
        let bucket_centroids = &self.bucket_centroids;
        run_sharded(
            shards,
            &|s| bounds[s + 1] - bounds[s],
            &mut self.total,
            &mut self.best_pow,
            &mut self.best_idx,
            scratches,
            &|s, t0, p0, i0, _scr| {
                cell_aggregate_range(
                    bounds[s],
                    t0,
                    p0,
                    i0,
                    points,
                    params,
                    near_radius,
                    diag,
                    tx_cells,
                    bucket_starts,
                    bucket_centroids,
                )
            },
        );
    }

    /// The grid-native kernel: exact decode, approximate tail, shared per
    /// receiver cell — sharded by contiguous receiver-cell ranges.
    ///
    /// Per *receiver cell* (not per receiver), transmitter cells within
    /// Chebyshev key distance `⌈near_radius / cell⌉` are evaluated exactly
    /// per member — through the batched SoA distance/signal kernels, over
    /// a contiguous per-shard copy of the near members — while all farther
    /// cells collapse into a single tail term evaluated once between the
    /// two cells' member centroids and shared by every receiver in the
    /// cell. Any decodable transmitter is within range 1 < `near_radius`,
    /// so decode candidates are always exact — only the interference tail
    /// is approximated (at both endpoints, which is what
    /// [`InterferenceMode::GridNative`]'s error bound accounts for).
    ///
    /// Accumulates into the slot-ordered buffers (each shard owns the
    /// contiguous slot range of its cells); [`ReceptionOracle::scatter_slots`]
    /// maps them back to station order.
    fn accumulate_grid_native<P: MetricPoint>(
        &mut self,
        params: &SinrParams,
        near_radius: f64,
        grid: &GridIndex,
        pool: &mut KernelPool,
    ) {
        // Number of *slots* — under a liveness mask (churned populations)
        // this is the live count: dead stations occupy no slot, receive
        // nothing (their accumulators keep the reset state) and, never
        // transmitting, contribute nothing.
        let n = grid.len();
        // No fill needed: every slot is written exactly once per round.
        self.slot_total.resize(n, 0.0);
        self.slot_best_pow.resize(n, 0.0);
        self.slot_best_idx.resize(n, usize::MAX);
        let near_cells = (near_radius / grid.cell_side()).ceil() as i64;
        // Resolve the dispatch once per round; every shard runs the same
        // tier (results are tier-invariant anyway, this is for speed).
        let tier = self.dispatch.resolve();
        let accumulation = self.accumulation;
        let shards = pool.plan_cells(grid);
        let (bounds, scratches) = pool.parts();
        let tx_cells = &self.tx_cells;
        let bucket_starts = &self.bucket_starts;
        let bucket_centroids = &self.bucket_centroids;
        let tx_pos = &self.tx_pos;
        let axes = P::AXES;
        // First slot of cell boundary `c` (the sentinel `num_cells` maps
        // to `n`): shard `s` owns slots `slot_at(bounds[s])..slot_at(bounds[s+1])`.
        let slot_at = |c: usize| {
            if c == grid.num_cells() {
                n
            } else {
                grid.cell_range(c).start
            }
        };
        run_sharded(
            shards,
            &|s| slot_at(bounds[s + 1]) - slot_at(bounds[s]),
            &mut self.slot_total,
            &mut self.slot_best_pow,
            &mut self.slot_best_idx,
            scratches,
            &|s, t0, p0, i0, scr| {
                grid_native_cells(
                    bounds[s]..bounds[s + 1],
                    slot_at(bounds[s]),
                    t0,
                    p0,
                    i0,
                    scr,
                    grid,
                    params,
                    near_cells,
                    axes,
                    tx_cells,
                    bucket_starts,
                    bucket_centroids,
                    tx_pos,
                    tier,
                    accumulation,
                )
            },
        );
    }

    /// Maps the slot-ordered grid-native accumulators back to station
    /// order (cells partition the stations, so every station is written
    /// exactly once).
    fn scatter_slots(&mut self, grid: &GridIndex) {
        for (slot, &u) in grid.slot_ids().iter().enumerate() {
            self.total[u] = self.slot_total[slot];
            self.best_pow[u] = self.slot_best_pow[slot];
            self.best_idx[u] = self.slot_best_idx[slot];
        }
    }
}

/// The shared shard driver of the accumulate stage: splits the three
/// accumulator buffers into per-shard windows of `len_of(s)` elements
/// (contiguous, disjoint — the sharding determinism contract) plus one
/// [`ShardScratch`] each, and runs `kernel(s, ...)` per shard on scoped
/// threads. Shard 0 runs inline on the calling thread; a single shard
/// spawns nothing.
fn run_sharded<K>(
    shards: usize,
    len_of: &(dyn Fn(usize) -> usize + Sync),
    mut total: &mut [f64],
    mut best_pow: &mut [f64],
    mut best_idx: &mut [usize],
    mut scratches: &mut [ShardScratch],
    kernel: &K,
) where
    K: Fn(usize, &mut [f64], &mut [f64], &mut [usize], &mut ShardScratch) + Sync,
{
    if shards <= 1 {
        kernel(0, total, best_pow, best_idx, &mut scratches[0]);
        return;
    }
    std::thread::scope(|scope| {
        let mut first = None;
        for s in 0..shards {
            let len = len_of(s);
            let (t0, t1) = std::mem::take(&mut total).split_at_mut(len);
            let (p0, p1) = std::mem::take(&mut best_pow).split_at_mut(len);
            let (i0, i1) = std::mem::take(&mut best_idx).split_at_mut(len);
            let (scr, sr) = std::mem::take(&mut scratches)
                .split_first_mut()
                .expect("one scratch per shard");
            (total, best_pow, best_idx, scratches) = (t1, p1, i1, sr);
            if s == 0 {
                first = Some((t0, p0, i0, scr));
                continue;
            }
            scope.spawn(move || kernel(s, t0, p0, i0, scr));
        }
        let (t0, p0, i0, scr) = first.expect("at least one shard");
        kernel(0, t0, p0, i0, scr);
    });
}

/// Exact-mode kernel over the station range starting at `base` (slices
/// are the shard's pre-split windows): per receiver, one term per
/// transmitter in transmitter order — the historical accumulation order.
fn exact_range<P: MetricPoint>(
    base: usize,
    total: &mut [f64],
    best_pow: &mut [f64],
    best_idx: &mut [usize],
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
) {
    for (off, tot) in total.iter_mut().enumerate() {
        let u = base + off;
        let pu = points[u];
        let mut acc = 0.0f64;
        let mut bp = 0.0f64;
        let mut bi = usize::MAX;
        for &t in transmitters {
            if t == u {
                continue;
            }
            let s = params.signal_at(points[t].distance(&pu));
            acc += s;
            if s > bp {
                bp = s;
                bi = t;
            }
        }
        *tot = acc;
        best_pow[off] = bp;
        best_idx[off] = bi;
    }
}

/// Cell-aggregate kernel over the station range starting at `base`: per
/// receiver, transmitter cells in sorted key order — near cells exactly
/// per member, far cells as one aggregate at the centroid.
#[allow(clippy::too_many_arguments)]
fn cell_aggregate_range<P: MetricPoint>(
    base: usize,
    total: &mut [f64],
    best_pow: &mut [f64],
    best_idx: &mut [usize],
    points: &[P],
    params: &SinrParams,
    near_radius: f64,
    diag: f64,
    tx_cells: &[(CellKey, usize)],
    bucket_starts: &[usize],
    bucket_centroids: &[[f64; 3]],
) {
    let buckets = bucket_starts.len().saturating_sub(1);
    for (off, tot) in total.iter_mut().enumerate() {
        let u = base + off;
        let pu = points[u];
        let mut acc = 0.0f64;
        let mut bp = 0.0f64;
        let mut bi = usize::MAX;
        for b in 0..buckets {
            let centroid = &bucket_centroids[b];
            let mut d2 = 0.0;
            for (axis, c) in centroid.iter().enumerate().take(P::AXES) {
                let dd = pu.coord(axis) - c;
                d2 += dd * dd;
            }
            let dc = d2.sqrt();
            let members = &tx_cells[bucket_starts[b]..bucket_starts[b + 1]];
            if dc > near_radius + diag {
                // All members are farther than near_radius from u.
                acc += members.len() as f64 * params.signal_at(dc);
            } else {
                for &(_, t) in members {
                    if t == u {
                        continue;
                    }
                    let s = params.signal_at(points[t].distance(&pu));
                    acc += s;
                    if s > bp {
                        bp = s;
                        bi = t;
                    }
                }
            }
        }
        *tot = acc;
        best_pow[off] = bp;
        best_idx[off] = bi;
    }
}

/// Grid-native kernel over one contiguous receiver-cell range whose slots
/// start at `slot_base` (slices are the shard's pre-split slot windows).
#[allow(clippy::too_many_arguments)]
fn grid_native_cells(
    cells: std::ops::Range<usize>,
    slot_base: usize,
    total: &mut [f64],
    best_pow: &mut [f64],
    best_idx: &mut [usize],
    scratch: &mut ShardScratch,
    grid: &GridIndex,
    params: &SinrParams,
    near_cells: i64,
    axes: usize,
    tx_cells: &[(CellKey, usize)],
    bucket_starts: &[usize],
    bucket_centroids: &[[f64; 3]],
    tx_pos: &PositionStore,
    tier: SimdTier,
    accumulation: Accumulation,
) {
    let buckets = bucket_starts.len().saturating_sub(1);
    let store = grid.positions();
    for c in cells {
        let rkey = grid.cell_key(c);
        // Receiver-cell member centroid: the tail evaluation point
        // (precomputed at grid build).
        let rcent = grid.cell_centroid(c);
        // Split transmitter cells into near (exact per member, gathered
        // into the shard's contiguous SoA scratch) and far (one shared
        // tail term per cell); the split depends only on the receiver
        // CELL, so every (receiver, transmitter) pair is counted exactly
        // once.
        scratch.near_pos.reset_axes(axes);
        scratch.near_t.clear();
        // Tail accumulators: exactly one is live per `accumulation`
        // setting. F64 keeps the historical bit-exact sum; F32 folds each
        // far-cell term to single precision before adding (the opt-in
        // precision trade — near terms and decode never go through this).
        let mut tail = 0.0f64;
        let mut tail32 = 0.0f32;
        for b in 0..buckets {
            let bkey = tx_cells[bucket_starts[b]].0;
            let cheb = (0..axes)
                .map(|a| (bkey[a] - rkey[a]).abs())
                .max()
                .unwrap_or(0);
            if cheb <= near_cells {
                let members = bucket_starts[b]..bucket_starts[b + 1];
                scratch.near_pos.extend_from(tx_pos, members.clone());
                scratch
                    .near_t
                    .extend(tx_cells[members].iter().map(|&(_, t)| t));
            } else {
                let centroid = &bucket_centroids[b];
                let mut d2 = 0.0;
                for (axis, cc) in centroid.iter().enumerate().take(axes) {
                    let dd = rcent[axis] - cc;
                    d2 += dd * dd;
                }
                let count = (bucket_starts[b + 1] - bucket_starts[b]) as f64;
                let term = count * params.signal_at_sq(d2);
                match accumulation {
                    Accumulation::F64 => tail += term,
                    Accumulation::F32 => tail32 += term as f32,
                }
            }
        }
        if accumulation == Accumulation::F32 {
            tail = tail32 as f64;
        }
        let near_len = scratch.near_t.len();
        for slot in grid.cell_range(c) {
            let u = grid.slot_ids()[slot];
            let pu = store.coords_of(slot);
            let mut acc = tail;
            let mut bp = 0.0f64;
            let mut bi = usize::MAX;
            // Batched near evaluation: distances then signals, chunk by
            // chunk, with the same per-element arithmetic and per-receiver
            // accumulation order as the scalar loop.
            let mut sig = [0.0f64; CHUNK];
            let mut i = 0;
            while i < near_len {
                let len = CHUNK.min(near_len - i);
                scratch
                    .near_pos
                    .distance_sq_batch_with(i..i + len, &pu, &mut sig[..len], tier);
                params.signal_at_sq_batch_with(&mut sig[..len], tier);
                for (k, &s) in sig[..len].iter().enumerate() {
                    let t = scratch.near_t[i + k];
                    if t == u {
                        continue;
                    }
                    acc += s;
                    if s > bp {
                        bp = s;
                        bi = t;
                    }
                }
                i += len;
            }
            let local = slot - slot_base;
            total[local] = acc;
            best_pow[local] = bp;
            best_idx[local] = bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reception::resolve_round;
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    fn spread(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64 * 0.9 + ((i * 7) % 5) as f64 * 0.11;
                let y = (i / 20) as f64 * 0.9 + ((i * 13) % 7) as f64 * 0.07;
                Point2::new(x, y)
            })
            .collect()
    }

    fn all_modes() -> [InterferenceMode; 4] {
        [
            InterferenceMode::Exact,
            InterferenceMode::Truncated { radius: 4.0 },
            InterferenceMode::CellAggregate { near_radius: 4.0 },
            InterferenceMode::GridNative { near_radius: 4.0 },
        ]
    }

    #[test]
    fn oracle_matches_free_function_in_every_compat_mode() {
        let pts = spread(200);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let mut oracle = ReceptionOracle::new();
        for mode in all_modes() {
            let free = resolve_round(&pts, &p, &tx, mode, Some(&grid));
            let from_oracle = oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
            assert_eq!(free, from_oracle, "{mode:?}");
        }
    }

    #[test]
    fn sharded_pools_are_bitwise_identical_to_serial() {
        // The tentpole determinism contract at the oracle level: any
        // thread count, every mode, identical decode decisions AND
        // bit-identical power sums.
        let pts = spread(500);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..500).step_by(7).collect();
        for mode in all_modes() {
            let mut serial_oracle = ReceptionOracle::new();
            let serial = serial_oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
            for threads in [2, 3, 8, 64] {
                let mut pool = KernelPool::new(threads);
                let mut oracle = ReceptionOracle::new();
                let mut out = RoundOutcome::empty();
                oracle.resolve_into_with(&pts, &p, &tx, mode, Some(&grid), &mut pool, &mut out);
                assert_eq!(serial, out, "{mode:?} with {threads} threads");
                for (u, (a, b)) in serial_oracle
                    .received_power()
                    .iter()
                    .zip(oracle.received_power())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{mode:?}, {threads} threads: power differs at {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_scalar_dispatch_is_bitwise_identical_to_auto() {
        let pts = spread(400);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..400).step_by(11).collect();
        let mode = InterferenceMode::GridNative { near_radius: 4.0 };
        let mut auto_oracle = ReceptionOracle::new();
        assert_eq!(auto_oracle.dispatch(), KernelDispatch::Auto);
        let auto_out = auto_oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
        let mut scalar_oracle = ReceptionOracle::new();
        scalar_oracle.set_dispatch(KernelDispatch::ForceScalar);
        let scalar_out = scalar_oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
        assert_eq!(auto_out, scalar_out);
        for (u, (a, b)) in auto_oracle
            .received_power()
            .iter()
            .zip(scalar_oracle.received_power())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "power differs at {u}");
        }
    }

    #[test]
    fn f32_tail_stays_close_and_decodes_identically_here() {
        // Not a bit-exactness claim (F32 intentionally changes bits) —
        // pins that the tail error is tiny relative to the totals and
        // that near-field/decode state is untouched on this deployment.
        let pts = spread(400);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..400).step_by(11).collect();
        let mode = InterferenceMode::GridNative { near_radius: 4.0 };
        let mut exact = ReceptionOracle::new();
        let exact_out = exact.resolve(&pts, &p, &tx, mode, Some(&grid));
        let mut f32_oracle = ReceptionOracle::new();
        assert_eq!(f32_oracle.accumulation(), Accumulation::F64);
        f32_oracle.set_accumulation(Accumulation::F32);
        let f32_out = f32_oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
        assert_eq!(exact_out.decoded_from, f32_out.decoded_from);
        let mut worst = 0.0f64;
        for (a, b) in exact
            .received_power()
            .iter()
            .zip(f32_oracle.received_power())
        {
            if *a > 0.0 {
                worst = worst.max((a - b).abs() / a);
            }
        }
        assert!(worst <= 1e-5, "relative tail error {worst} too large");
    }

    #[test]
    fn oracle_recovers_after_panicking_resolve() {
        // A contract panic unwinds while the fallback pool is swapped out
        // for the scratch-less placeholder; later rounds must repair it
        // (KernelPool::ensure_scratch) instead of failing on unrelated
        // indexing.
        let pts = spread(50);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let mut oracle = ReceptionOracle::new();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = oracle.resolve(&pts, &p, &[999], InterferenceMode::Exact, None);
        }));
        assert!(panicked.is_err(), "out-of-range transmitter must panic");
        let tx: Vec<usize> = (0..50).step_by(5).collect();
        let mode = InterferenceMode::GridNative { near_radius: 4.0 };
        let recovered = oracle.resolve(&pts, &p, &tx, mode, Some(&grid));
        let fresh = ReceptionOracle::new().resolve(&pts, &p, &tx, mode, Some(&grid));
        assert_eq!(recovered, fresh);
    }

    #[test]
    fn reused_oracle_matches_fresh_oracle() {
        // Interleave modes and transmitter sets; stale scratch must never
        // leak into a later round.
        let pts = spread(150);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let mut reused = ReceptionOracle::new();
        let rounds: Vec<(Vec<usize>, InterferenceMode)> = vec![
            ((0..150).step_by(7).collect(), InterferenceMode::Exact),
            (
                (0..150).step_by(3).collect(),
                InterferenceMode::GridNative { near_radius: 4.0 },
            ),
            (
                vec![0],
                InterferenceMode::CellAggregate { near_radius: 4.0 },
            ),
            (vec![], InterferenceMode::Truncated { radius: 2.0 }),
            (
                (0..150).step_by(7).collect(),
                InterferenceMode::GridNative { near_radius: 4.0 },
            ),
        ];
        for (tx, mode) in rounds {
            let fresh = ReceptionOracle::new().resolve(&pts, &p, &tx, mode, Some(&grid));
            let again = reused.resolve(&pts, &p, &tx, mode, Some(&grid));
            assert_eq!(fresh, again, "{mode:?} with {} transmitters", tx.len());
        }
    }

    #[test]
    fn grid_native_matches_exact_decisions_on_spread_network() {
        // Decode candidates are exact; only the tail is approximated, so on
        // a spread deployment the decisions must coincide with Exact.
        let pts = spread(200);
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let native = ReceptionOracle::new().resolve(
            &pts,
            &p,
            &tx,
            InterferenceMode::GridNative { near_radius: 4.0 },
            Some(&grid),
        );
        let disagreements = exact
            .decoded_from
            .iter()
            .zip(&native.decoded_from)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(disagreements, 0, "grid-native flipped decode decisions");
    }

    #[test]
    fn grid_native_never_decodes_beyond_range_one() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.8, 0.0),
            Point2::new(9.0, 0.0), // isolated far receiver: far-aggregated only
        ];
        let grid = GridIndex::build(&pts, 1.0);
        let out = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 2.0 },
            Some(&grid),
        );
        assert_eq!(out.decoded_from[1], Some(0));
        assert_eq!(out.decoded_from[2], None);
        assert_eq!(out.decoded_from[0], None, "half-duplex");
    }

    #[test]
    fn received_power_exposes_last_round_totals() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let p = params();
        let mut oracle = ReceptionOracle::new();
        let _ = oracle.resolve(&pts, &p, &[0], InterferenceMode::Exact, None);
        assert_eq!(oracle.received_power().len(), 2);
        assert_eq!(oracle.received_power()[0], 0.0, "transmitter hears nothing");
        assert!(
            (oracle.received_power()[1] - p.signal_at(0.5)).abs() < 1e-15,
            "receiver total is the lone signal"
        );
    }

    #[test]
    #[should_panic]
    fn grid_native_requires_grid() {
        let pts = vec![Point2::origin()];
        let _ = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 4.0 },
            None,
        );
    }

    #[test]
    #[should_panic]
    fn grid_native_rejects_small_near_radius() {
        let pts = vec![Point2::origin()];
        let grid = GridIndex::build(&pts, 1.0);
        let _ = ReceptionOracle::new().resolve(
            &pts,
            &params(),
            &[0],
            InterferenceMode::GridNative { near_radius: 1.5 },
            Some(&grid),
        );
    }
}
