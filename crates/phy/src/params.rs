//! SINR model parameters.
//!
//! The model of the paper (Section 1.1) is governed by three physical
//! parameters — path loss α, threshold β, ambient noise N — plus the
//! connectivity-graph slack ε. Transmission power is uniform and normalised
//! so that the idealised communication range is `r = 1`, which forces
//! `P = N·β` (Equation 1 and the "Ranges and uniformity" paragraph).

use std::fmt;

/// Validated SINR model parameters.
///
/// Construct via [`SinrParams::builder`] or [`SinrParams::default_plane`].
/// Invariants enforced at construction:
///
/// * `alpha > gamma` (interference sums must converge; paper requires α > γ),
/// * `beta >= 1` (at most one station can be decoded per round),
/// * `noise > 0`,
/// * `0 < eps < 1`.
///
/// # Example
///
/// ```
/// use sinr_phy::SinrParams;
/// let p = SinrParams::builder().alpha(3.0).beta(1.5).noise(1.0).eps(0.4).build(2.0)?;
/// assert_eq!(p.power(), 1.5); // P = N·β
/// assert_eq!(p.comm_radius(), 0.6); // 1 − ε
/// # Ok::<(), sinr_phy::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrParams {
    alpha: f64,
    beta: f64,
    noise: f64,
    eps: f64,
    gamma: f64,
}

/// Error returned when SINR parameters violate the model constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    what: String,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SINR parameters: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

impl ParamError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

/// Builder for [`SinrParams`].
///
/// Defaults: α = 3, β = 1.2, N = 1, ε = 0.5 — a standard planar setting with
/// comfortable margins (α > 2 = γ).
#[derive(Debug, Clone, Copy)]
pub struct SinrParamsBuilder {
    alpha: f64,
    beta: f64,
    noise: f64,
    eps: f64,
}

impl Default for SinrParamsBuilder {
    fn default() -> Self {
        SinrParamsBuilder {
            alpha: 3.0,
            beta: 1.2,
            noise: 1.0,
            eps: 0.5,
        }
    }
}

impl SinrParamsBuilder {
    /// Sets the path-loss exponent α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the SINR decoding threshold β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the ambient-noise power N.
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the connectivity slack ε (communication-graph edges span
    /// distances up to 1 − ε).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Validates the configuration against growth dimension `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when any model constraint is violated
    /// (α ≤ γ, β < 1, N ≤ 0, ε ∉ (0,1), or non-finite values).
    pub fn build(self, gamma: f64) -> Result<SinrParams, ParamError> {
        let SinrParamsBuilder {
            alpha,
            beta,
            noise,
            eps,
        } = self;
        for (name, v) in [
            ("alpha", alpha),
            ("beta", beta),
            ("noise", noise),
            ("eps", eps),
            ("gamma", gamma),
        ] {
            if !v.is_finite() {
                return Err(ParamError::new(format!("{name} must be finite, got {v}")));
            }
        }
        if gamma <= 0.0 {
            return Err(ParamError::new(format!(
                "gamma must be positive, got {gamma}"
            )));
        }
        if alpha <= gamma {
            return Err(ParamError::new(format!(
                "path loss alpha ({alpha}) must exceed growth dimension gamma ({gamma})"
            )));
        }
        if beta < 1.0 {
            return Err(ParamError::new(format!("beta must be >= 1, got {beta}")));
        }
        if noise <= 0.0 {
            return Err(ParamError::new(format!(
                "noise must be positive, got {noise}"
            )));
        }
        if !(eps > 0.0 && eps < 1.0) {
            return Err(ParamError::new(format!(
                "eps must lie in (0, 1), got {eps}"
            )));
        }
        Ok(SinrParams {
            alpha,
            beta,
            noise,
            eps,
            gamma,
        })
    }
}

impl SinrParams {
    /// Starts building a parameter set.
    pub fn builder() -> SinrParamsBuilder {
        SinrParamsBuilder::default()
    }

    /// Standard planar defaults (α = 3, β = 1.2, N = 1, ε = 0.5, γ = 2).
    pub fn default_plane() -> Self {
        SinrParamsBuilder::default()
            .build(2.0)
            .expect("default parameters are valid")
    }

    /// Defaults for line networks (γ = 1); α = 2 suffices since α > γ = 1.
    pub fn default_line() -> Self {
        SinrParamsBuilder::default()
            .alpha(2.5)
            .build(1.0)
            .expect("default line parameters are valid")
    }

    /// Path-loss exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// SINR decoding threshold β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Ambient noise N.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Connectivity slack ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Growth dimension γ of the deployment space.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Uniform transmission power `P = N·β`, the normalisation that makes
    /// the noise-limited communication range `r = (P/(Nβ))^{1/α}` equal 1.
    pub fn power(&self) -> f64 {
        self.noise * self.beta
    }

    /// The idealised communication range, always 1 under the normalisation.
    pub fn range(&self) -> f64 {
        1.0
    }

    /// Radius of communication-graph edges: `1 − ε`.
    pub fn comm_radius(&self) -> f64 {
        1.0 - self.eps
    }

    /// Received signal power at distance `d`: `P · d^{−α}`.
    ///
    /// Distances are clamped below at [`SinrParams::MIN_DISTANCE`] so that
    /// co-located points yield a large-but-finite signal instead of ∞.
    pub fn signal_at(&self, d: f64) -> f64 {
        let d = d.max(Self::MIN_DISTANCE);
        self.power() * d.powf(-self.alpha)
    }

    /// Received signal power from a **squared** distance: `P · d^{−α}` with
    /// `d = √d2`, clamped below exactly like [`SinrParams::signal_at`].
    ///
    /// This is the hot-path variant used by the grid-native reception
    /// kernel: for the common integer exponents (α = 2, 3, 4) it needs at
    /// most one square root and no `powf`, and it never materialises the
    /// distance itself (callers pass `distance_sq`). The value may differ
    /// from `signal_at(d2.sqrt())` in the last few ulps — the two paths are
    /// each internally deterministic, but are not bit-interchangeable.
    pub fn signal_at_sq(&self, d2: f64) -> f64 {
        const MIN2: f64 = SinrParams::MIN_DISTANCE * SinrParams::MIN_DISTANCE;
        let d2 = d2.max(MIN2);
        if self.alpha == 2.0 {
            self.power() / d2
        } else if self.alpha == 3.0 {
            self.power() / (d2 * d2.sqrt())
        } else if self.alpha == 4.0 {
            self.power() / (d2 * d2)
        } else {
            self.power() * d2.powf(-self.alpha * 0.5)
        }
    }

    /// Batched [`SinrParams::signal_at_sq`]: rewrites each squared
    /// distance in `d2` to the received signal power at that distance,
    /// in place.
    ///
    /// Each element goes through exactly the same arithmetic as the
    /// scalar call (bitwise identical results); the specialised integer
    /// exponents become branch-free loops over the slice that
    /// autovectorize (`sqrt`/`div` have SIMD forms, unlike `powf`). This
    /// is the second half of the SoA hot path: a
    /// [`sinr_geometry::PositionStore::distance_sq_batch`] fills the
    /// buffer, this converts it to signals, and the caller accumulates.
    pub fn signal_at_sq_batch(&self, d2: &mut [f64]) {
        self.signal_at_sq_batch_with(d2, sinr_geometry::auto_tier());
    }

    /// [`SinrParams::signal_at_sq_batch`] pinned to an explicit kernel
    /// tier — the seam the reception oracle uses to honor a run's
    /// [`sinr_geometry::KernelDispatch`]. Every tier produces
    /// bit-identical output (see [`crate::simd`]); generic non-integer
    /// α always runs the scalar `powf` loop regardless of tier.
    pub fn signal_at_sq_batch_with(&self, d2: &mut [f64], tier: sinr_geometry::SimdTier) {
        const MIN2: f64 = SinrParams::MIN_DISTANCE * SinrParams::MIN_DISTANCE;
        let p = self.power();
        if self.alpha == 2.0 {
            crate::simd::signal_alpha2(d2, p, MIN2, tier);
        } else if self.alpha == 3.0 {
            crate::simd::signal_alpha3(d2, p, MIN2, tier);
        } else if self.alpha == 4.0 {
            crate::simd::signal_alpha4(d2, p, MIN2, tier);
        } else {
            let e = -self.alpha * 0.5;
            for v in d2 {
                *v = p * (*v).max(MIN2).powf(e);
            }
        }
    }

    /// Minimum distance used in signal computations; generators must keep
    /// stations at least this far apart.
    pub const MIN_DISTANCE: f64 = 1e-9;

    /// The SINR ratio of Equation (1): signal of strength `signal` against
    /// `interference` (sum of other signals) plus noise.
    pub fn sinr(&self, signal: f64, interference: f64) -> f64 {
        signal / (self.noise + interference)
    }

    /// Whether a signal of strength `signal` is decodable against
    /// `interference`: `SINR ≥ β`.
    pub fn decodable(&self, signal: f64, interference: f64) -> bool {
        self.sinr(signal, interference) >= self.beta
    }
}

impl fmt::Display for SinrParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SINR(α={}, β={}, N={}, ε={}, γ={})",
            self.alpha, self.beta, self.noise, self.eps, self.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_valid() {
        let p = SinrParams::default_plane();
        assert_eq!(p.alpha(), 3.0);
        assert_eq!(p.gamma(), 2.0);
        assert_eq!(p.power(), 1.2);
        assert_eq!(p.comm_radius(), 0.5);
    }

    #[test]
    fn rejects_alpha_not_exceeding_gamma() {
        let err = SinrParams::builder().alpha(2.0).build(2.0).unwrap_err();
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn rejects_beta_below_one() {
        assert!(SinrParams::builder().beta(0.99).build(2.0).is_err());
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(SinrParams::builder().eps(0.0).build(2.0).is_err());
        assert!(SinrParams::builder().eps(1.0).build(2.0).is_err());
        assert!(SinrParams::builder().eps(-0.1).build(2.0).is_err());
    }

    #[test]
    fn rejects_nonpositive_noise_and_nan() {
        assert!(SinrParams::builder().noise(0.0).build(2.0).is_err());
        assert!(SinrParams::builder().alpha(f64::NAN).build(2.0).is_err());
    }

    #[test]
    fn range_normalisation() {
        // r = (P/(Nβ))^{1/α} = 1 exactly because P = Nβ.
        let p = SinrParams::default_plane();
        let r = (p.power() / (p.noise() * p.beta())).powf(1.0 / p.alpha());
        assert_eq!(r, 1.0);
        assert_eq!(p.range(), 1.0);
    }

    #[test]
    fn signal_decays_with_distance() {
        let p = SinrParams::default_plane();
        assert!(p.signal_at(0.5) > p.signal_at(1.0));
        assert!(p.signal_at(1.0) > p.signal_at(2.0));
        // At exactly range 1 with zero interference, SINR == β: boundary decodable.
        assert!(p.decodable(p.signal_at(1.0), 0.0));
        assert!(!p.decodable(p.signal_at(1.001), 0.0));
    }

    #[test]
    fn colocated_signal_is_finite() {
        let p = SinrParams::default_plane();
        assert!(p.signal_at(0.0).is_finite());
        assert!(p.signal_at_sq(0.0).is_finite());
    }

    #[test]
    fn squared_distance_signal_matches_signal_at() {
        // All specialised exponents plus the powf fallback.
        for alpha in [2.0, 2.5, 3.0, 4.0] {
            let p = SinrParams::builder().alpha(alpha).build(1.5).unwrap();
            for d in [0.01, 0.3, 1.0, 2.7, 40.0] {
                let a = p.signal_at(d);
                let b = p.signal_at_sq(d * d);
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs(),
                    "alpha {alpha}, d {d}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batched_signal_matches_scalar_bitwise() {
        for alpha in [2.0, 2.5, 3.0, 4.0] {
            let p = SinrParams::builder().alpha(alpha).build(1.5).unwrap();
            let d2s: Vec<f64> = vec![0.0, 1e-20, 0.01, 0.25, 1.0, 7.29, 1600.0];
            let mut batch = d2s.clone();
            p.signal_at_sq_batch(&mut batch);
            for (d2, got) in d2s.iter().zip(&batch) {
                assert_eq!(
                    got.to_bits(),
                    p.signal_at_sq(*d2).to_bits(),
                    "alpha {alpha}, d2 {d2}"
                );
            }
        }
    }

    #[test]
    fn display_contains_all_parameters() {
        let s = SinrParams::default_plane().to_string();
        for needle in ["α=3", "β=1.2", "N=1", "ε=0.5", "γ=2"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
