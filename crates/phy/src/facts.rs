//! Facts 1–3 of the paper as checkable predicates.
//!
//! These are the elementary reception guarantees the paper's analysis builds
//! on; implementing them as functions lets the test suite verify that the
//! reception oracle ([`crate::resolve_round`]) satisfies them on arbitrary
//! inputs, and gives the algorithm crates a shared vocabulary for thresholds.

use crate::params::SinrParams;

/// Fact 2 interference threshold: if the interference at a receiver is at
/// most `N / (2 x^α)` (and `x ≤ (1/2)^{1/α}`), the receiver can decode a
/// transmitter at distance `x`.
///
/// # Panics
///
/// Panics if `x` is not in `(0, (1/2)^{1/α}]`.
pub fn fact2_interference_bound(params: &SinrParams, x: f64) -> f64 {
    let xmax = fact2_max_distance(params);
    assert!(
        x > 0.0 && x <= xmax + 1e-12,
        "Fact 2 requires 0 < x <= (1/2)^(1/alpha) = {xmax}, got {x}"
    );
    params.noise() / (2.0 * x.powf(params.alpha()))
}

/// The largest distance `x = (1/2)^{1/α}` to which Fact 2 applies.
pub fn fact2_max_distance(params: &SinrParams) -> f64 {
    0.5f64.powf(1.0 / params.alpha())
}

/// Fact 3 interference threshold: if the interference at a receiver is at
/// most `N·α·x`, the receiver can decode a transmitter at distance `1 − x`.
///
/// # Panics
///
/// Panics if `x` is not in `(0, 1)`.
pub fn fact3_interference_bound(params: &SinrParams, x: f64) -> f64 {
    assert!(x > 0.0 && x < 1.0, "Fact 3 requires 0 < x < 1, got {x}");
    params.noise() * params.alpha() * x
}

/// Fact 1 as geometry: if a transmission from `v` is received everywhere
/// within distance `1 − ε/2` of `v`, then it is received by all
/// communication-graph neighbours of every station in `B(v, ε/2)` — because
/// `(ε/2) + (1 − ε) = 1 − ε/2`. This helper returns that reach radius.
pub fn fact1_reach_radius(params: &SinrParams) -> f64 {
    1.0 - params.eps() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reception::{resolve_round, InterferenceMode};
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    #[test]
    fn fact2_reception_guaranteed() {
        // Receiver at distance x from transmitter; an interferer placed so
        // the interference is just below the Fact 2 bound must not break
        // the reception.
        let p = params();
        let x = fact2_max_distance(&p) * 0.9;
        let bound = fact2_interference_bound(&p, x);
        // Place a single interferer at distance d so that signal(d) <= bound.
        let d = (p.power() / bound).powf(1.0 / p.alpha()) + 1e-6;
        let pts = vec![
            Point2::new(0.0, 0.0),   // transmitter v
            Point2::new(x, 0.0),     // receiver u
            Point2::new(x + d, 0.0), // interferer w at distance d from u
        ];
        let out = resolve_round(&pts, &p, &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0), "Fact 2 violated by oracle");
    }

    #[test]
    fn fact3_reception_guaranteed() {
        let p = params();
        let x = 0.2;
        let bound = fact3_interference_bound(&p, x);
        let d = (p.power() / bound).powf(1.0 / p.alpha()) + 1e-6;
        let rx = 1.0 - x;
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(rx, 0.0),
            Point2::new(rx + d, 0.0),
        ];
        let out = resolve_round(&pts, &p, &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0), "Fact 3 violated by oracle");
    }

    #[test]
    fn fact1_radius_value() {
        let p = params(); // eps = 0.5
        assert!((fact1_reach_radius(&p) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn fact2_rejects_large_x() {
        let p = params();
        let _ = fact2_interference_bound(&p, 1.0);
    }

    #[test]
    #[should_panic]
    fn fact3_rejects_x_out_of_range() {
        let _ = fact3_interference_bound(&params(), 1.5);
    }

    #[test]
    fn fact2_bound_decreases_with_distance() {
        let p = params();
        let xm = fact2_max_distance(&p);
        assert!(fact2_interference_bound(&p, 0.3) > fact2_interference_bound(&p, xm));
    }
}
