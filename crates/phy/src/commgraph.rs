//! The communication graph `G(V, E)`: edges between stations at distance
//! ≤ 1 − ε (paper Section 1.1, "Communication graph and graph notation").
//!
//! All complexity bounds of the paper are expressed in terms of this graph's
//! parameters: the number of stations `n`, the diameter `D`, and (for
//! baselines) the maximum degree Δ and the granularity `R_s`.

use std::collections::VecDeque;

use sinr_geometry::{GridIndex, MetricPoint};

/// Distance value meaning "unreachable" in BFS results.
pub const UNREACHABLE: u32 = u32::MAX;

/// An undirected communication graph over station indices.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::CommGraph;
/// // Three stations on a line, comm radius 0.5: a path graph.
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.4, 0.0), Point2::new(0.8, 0.0)];
/// let g = CommGraph::build(&pts, 0.5);
/// assert!(g.is_connected());
/// assert_eq!(g.diameter_exact(), Some(2));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CommGraph {
    adj: Vec<Vec<usize>>,
    radius: f64,
    num_edges: usize,
}

impl CommGraph {
    /// Builds the communication graph with edges between stations at
    /// distance `<= radius` (use `params.comm_radius()` for the paper's
    /// `1 − ε` graph).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn build<P: MetricPoint>(points: &[P], radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "communication radius must be positive, got {radius}"
        );
        let grid = GridIndex::build(points, radius.max(1e-6));
        let mut adj = vec![Vec::new(); points.len()];
        let mut num_edges = 0;
        for (v, p) in points.iter().enumerate() {
            // Allocation-free visitor (cell-major order), then one in-place
            // sort to restore the ascending neighbour order BFS tie-breaks
            // and protocols rely on.
            let row = &mut adj[v];
            grid.for_each_in_ball(points, *p, radius, |u| {
                if u != v {
                    row.push(u);
                    if u > v {
                        num_edges += 1;
                    }
                }
            });
            row.sort_unstable();
        }
        CommGraph {
            adj,
            radius,
            num_edges,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The edge radius used at construction.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// BFS distances (in hops) from `src`; [`UNREACHABLE`] marks vertices in
    /// other components.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        assert!(src < self.len(), "source {src} out of range");
        let mut dist = vec![UNREACHABLE; self.len()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &u in &self.adj[v] {
                if dist[u] == UNREACHABLE {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Whether all vertices are mutually reachable. The empty graph counts
    /// as connected.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != UNREACHABLE)
    }

    /// Eccentricity of `src` (max BFS distance), or `None` if the graph is
    /// disconnected from `src`.
    pub fn eccentricity(&self, src: usize) -> Option<u32> {
        let dist = self.bfs(src);
        let max = *dist.iter().max().expect("non-empty");
        if max == UNREACHABLE {
            None
        } else {
            Some(max)
        }
    }

    /// Exact diameter via all-sources BFS (`O(n·m)`), or `None` if
    /// disconnected. Quadratic — fine for experiment sizes; use
    /// [`CommGraph::diameter_double_sweep`] for a fast lower bound.
    pub fn diameter_exact(&self) -> Option<u32> {
        if self.is_empty() {
            return Some(0);
        }
        let mut diam = 0;
        for v in 0..self.len() {
            diam = diam.max(self.eccentricity(v)?);
        }
        Some(diam)
    }

    /// Double-sweep diameter lower bound: BFS from `start`, then BFS from
    /// the farthest vertex found. Exact on trees; a good estimate on
    /// geometric graphs. Returns `None` if disconnected.
    pub fn diameter_double_sweep(&self, start: usize) -> Option<u32> {
        if self.is_empty() {
            return Some(0);
        }
        let d1 = self.bfs(start);
        if d1.contains(&UNREACHABLE) {
            return None;
        }
        let far = d1
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .map(|(i, _)| i)
            .expect("non-empty");
        self.eccentricity(far)
    }

    /// A shortest path from `src` to `dst` (inclusive), or `None` if
    /// unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        assert!(src < self.len() && dst < self.len(), "vertex out of range");
        let mut parent = vec![usize::MAX; self.len()];
        let mut dist = vec![UNREACHABLE; self.len()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            if v == dst {
                break;
            }
            for &u in &self.adj[v] {
                if dist[u] == UNREACHABLE {
                    dist[u] = dist[v] + 1;
                    parent[u] = v;
                    queue.push_back(u);
                }
            }
        }
        if dist[dst] == UNREACHABLE {
            return None;
        }
        let mut path = vec![dst];
        let mut v = dst;
        while v != src {
            v = parent[v];
            path.push(v);
        }
        path.reverse();
        Some(path)
    }

    /// Granularity `R_s`: the maximum ratio between distances of stations
    /// connected by an edge (paper Section 1.3). Returns `None` when the
    /// graph has no edges.
    pub fn granularity<P: MetricPoint>(&self, points: &[P]) -> Option<f64> {
        assert_eq!(points.len(), self.len(), "points/graph size mismatch");
        let mut min_d = f64::INFINITY;
        let mut max_d: f64 = 0.0;
        for (v, nbrs) in self.adj.iter().enumerate() {
            for &u in nbrs {
                if u > v {
                    let d = points[v].distance(&points[u]).max(1e-300);
                    min_d = min_d.min(d);
                    max_d = max_d.max(d);
                }
            }
        }
        if max_d == 0.0 {
            None
        } else {
            Some(max_d / min_d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn line(n: usize, gap: f64) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * gap, 0.0)).collect()
    }

    #[test]
    fn path_graph_structure() {
        let pts = line(5, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(4));
        assert_eq!(g.diameter_double_sweep(2), Some(4));
    }

    #[test]
    fn disconnected_components_detected() {
        let mut pts = line(3, 0.4);
        pts.push(Point2::new(100.0, 0.0));
        let g = CommGraph::build(&pts, 0.5);
        assert!(!g.is_connected());
        assert_eq!(g.diameter_exact(), None);
        assert_eq!(g.diameter_double_sweep(0), None);
        assert_eq!(g.eccentricity(0), None);
        let d = g.bfs(0);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_distances() {
        let pts = line(4, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs(2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn edge_at_exact_radius_included() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let pts = line(6, 0.45);
        let g = CommGraph::build(&pts, 0.5);
        let path = g.shortest_path(0, 5).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&5));
        assert_eq!(path.len(), 6);
        // consecutive path vertices are adjacent
        for w in path.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]));
        }
        assert_eq!(g.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut pts = line(2, 0.4);
        pts.push(Point2::new(50.0, 0.0));
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.shortest_path(0, 2), None);
    }

    #[test]
    fn granularity_of_uniform_line_is_one() {
        let pts = line(5, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        let rs = g.granularity(&pts).unwrap();
        assert!((rs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn granularity_of_geometric_line() {
        // Gaps 0.4, 0.2, 0.1: Rs = 4.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
            Point2::new(0.6, 0.0),
            Point2::new(0.7, 0.0),
        ];
        let g = CommGraph::build(&pts, 0.5);
        // Edges include (0,1)=0.4 ... and also longer chords <= 0.5 like (1,3)=0.3, (0,2)... 0.6>0.5 no.
        let rs = g.granularity(&pts).unwrap();
        assert!(rs >= 4.0, "Rs = {rs}");
    }

    #[test]
    fn granularity_none_without_edges() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.granularity(&pts), None);
    }

    #[test]
    fn empty_and_singleton() {
        let pts: Vec<Point2> = vec![];
        let g = CommGraph::build(&pts, 0.5);
        assert!(g.is_empty());
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(0));

        let pts = vec![Point2::origin()];
        let g = CommGraph::build(&pts, 0.5);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(0));
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn grid_graph_diameter() {
        // 4x4 grid with spacing 0.45, radius 0.5: only axis-aligned edges.
        let pts: Vec<Point2> = (0..16)
            .map(|i| Point2::new((i % 4) as f64 * 0.45, (i / 4) as f64 * 0.45))
            .collect();
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.diameter_exact(), Some(6)); // Manhattan distance corner-to-corner
        assert_eq!(g.max_degree(), 4);
    }
}
