//! The communication graph `G(V, E)`: edges between stations at distance
//! ≤ 1 − ε (paper Section 1.1, "Communication graph and graph notation").
//!
//! All complexity bounds of the paper are expressed in terms of this graph's
//! parameters: the number of stations `n`, the diameter `D`, and (for
//! baselines) the maximum degree Δ and the granularity `R_s`.
//!
//! # Layout and lifecycle
//!
//! Adjacency is stored **flat** (CSR: one `starts` offset array into one
//! neighbour array), so the graph can be rebuilt in place after stations
//! move or churn — [`CommGraph::rebuild_from`] reuses every allocation
//! (including the owned spatial index it queries) and produces exactly
//! the structure a fresh [`CommGraph::build`] would. Dynamic populations
//! pass a liveness mask: dead stations keep their vertex ids (rows stay
//! index-stable) but carry no edges and are ignored by the connectivity
//! queries. Connectivity-style queries also come in scratch-reusing
//! variants ([`CommGraph::bfs_with`], [`CommGraph::is_connected_with`])
//! so per-epoch refreshes stay allocation-free in steady state
//! (`crates/phy/tests/oracle_alloc.rs` pins this).

use std::collections::VecDeque;

use sinr_geometry::{GridIndex, MetricPoint, RepairPolicy};

/// Distance value meaning "unreachable" in BFS results.
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable scratch for the allocation-free graph traversals
/// ([`CommGraph::bfs_with`], [`CommGraph::is_connected_with`],
/// [`CommGraph::cut_vertices_into`]): the BFS distance array and queue
/// plus the DFS state of the Tarjan articulation-point sweep (`low`
/// values, the cut-vertex marks, and the explicit frame stack), all
/// grown once to their high-water marks.
#[derive(Debug, Clone, Default)]
pub struct GraphScratch {
    dist: Vec<u32>,
    queue: VecDeque<usize>,
    /// Tarjan low-link values (`dist` doubles as the discovery order).
    low: Vec<u32>,
    /// Cut-vertex marks, swept in ascending order into the output.
    mark: Vec<bool>,
    /// Explicit DFS stack of the iterative Tarjan sweep.
    frames: Vec<DfsFrame>,
}

impl GraphScratch {
    /// Empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One frame of the iterative Tarjan DFS: the vertex, the tree parent it
/// was discovered from (`usize::MAX` at roots), and the cursor into the
/// flat neighbour array marking the next edge to examine.
#[derive(Debug, Clone, Copy, Default)]
struct DfsFrame {
    v: usize,
    parent: usize,
    cursor: usize,
}

/// Reusable buffers of the incremental row-repair path
/// ([`CommGraph::repair`]): the dirty-station and affected-row lists plus
/// the double-buffered CSR arrays the splice writes into. Acts as the row
/// freelist — edge storage is swapped between the live arrays and these
/// buffers every repair, reused rather than reallocated.
#[derive(Debug, Clone, Default)]
struct GraphRepairScratch {
    /// Deduplicated stations whose position or liveness actually changed.
    dirty: Vec<usize>,
    /// Rows whose neighborhood could have changed: the dirty stations
    /// plus everything in their old and new spatial neighborhoods.
    affected: Vec<usize>,
    /// Row-edit ops `(v, d)`: dirty station `d` may have entered or left
    /// row `v`. Sorted by `(v, d)`; rows affected only through ops (no
    /// dirty station of their own) are patched entry-by-entry instead of
    /// re-queried.
    ops: Vec<(usize, usize)>,
    /// Double buffers for the CSR offset and neighbour arrays.
    starts_alt: Vec<usize>,
    nbrs_alt: Vec<usize>,
}

/// An undirected communication graph over station indices.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::CommGraph;
/// // Three stations on a line, comm radius 0.5: a path graph.
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.4, 0.0), Point2::new(0.8, 0.0)];
/// let g = CommGraph::build(&pts, 0.5);
/// assert!(g.is_connected());
/// assert_eq!(g.diameter_exact(), Some(2));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CommGraph {
    /// CSR offsets: vertex `v` owns `nbrs[starts[v]..starts[v + 1]]`.
    starts: Vec<usize>,
    /// Flat neighbour array, ascending within each row.
    nbrs: Vec<usize>,
    /// Vertex liveness: dead vertices keep their row (empty) but are
    /// ignored by connectivity queries. All `true` for static builds.
    present: Vec<bool>,
    /// Number of present vertices.
    num_present: usize,
    radius: f64,
    num_edges: usize,
    /// Owned spatial index (cell side = `radius`), rebuilt in place by
    /// [`CommGraph::rebuild_from`] so refreshes reuse its allocations.
    grid: GridIndex,
    /// Buffers of the incremental repair path ([`CommGraph::repair`]).
    repair: GraphRepairScratch,
}

/// Two graphs are equal when they connect the same vertices with the same
/// edges under the same radius (the owned spatial index, a rebuild
/// implementation detail, does not participate) — what the churn
/// differential tests compare.
impl PartialEq for CommGraph {
    fn eq(&self, other: &Self) -> bool {
        self.starts == other.starts
            && self.nbrs == other.nbrs
            && self.present == other.present
            && self.num_present == other.num_present
            && self.radius == other.radius
            && self.num_edges == other.num_edges
    }
}

impl CommGraph {
    /// Builds the communication graph with edges between stations at
    /// distance `<= radius` (use `params.comm_radius()` for the paper's
    /// `1 − ε` graph).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn build<P: MetricPoint>(points: &[P], radius: f64) -> Self {
        Self::build_inner(points, None, radius)
    }

    /// Builds the graph over the **live** subset of `points`: vertex `i`
    /// participates iff `alive[i]`. Dead vertices keep their ids but have
    /// no edges and are invisible to the connectivity queries.
    ///
    /// # Panics
    ///
    /// As [`CommGraph::build`]; additionally panics when `alive` and
    /// `points` differ in length.
    pub fn build_masked<P: MetricPoint>(points: &[P], alive: &[bool], radius: f64) -> Self {
        Self::build_inner(points, Some(alive), radius)
    }

    fn build_inner<P: MetricPoint>(points: &[P], alive: Option<&[bool]>, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "communication radius must be positive, got {radius}"
        );
        let empty: &[P] = &[];
        let mut graph = CommGraph {
            starts: Vec::new(),
            nbrs: Vec::new(),
            present: Vec::new(),
            num_present: 0,
            radius,
            num_edges: 0,
            grid: GridIndex::build(empty, radius.max(1e-6)),
            repair: GraphRepairScratch::default(),
        };
        graph.fill(points, alive);
        // Fresh builds are usually static and never rebuild: drop the
        // owned spatial index's buffers (CSR keys/ids, SoA store,
        // centroids, sort scratch — tens of bytes per station that the
        // pre-CSR CommGraph never retained). The first
        // [`CommGraph::rebuild_from`] regrows them, once — the same
        // policy [`GridIndex::build`] applies to its sort scratch.
        graph.grid = GridIndex::build(empty, radius.max(1e-6));
        graph
    }

    /// Rebuilds the graph in place over the (moved and/or churned)
    /// deployment — the **epoch refresh path** of dynamic topologies.
    ///
    /// Produces exactly the structure [`CommGraph::build`] /
    /// [`CommGraph::build_masked`] would (one shared fill routine), but
    /// reuses every allocation — the CSR offset and neighbour arrays, the
    /// liveness row and the owned spatial index — so once the buffers
    /// have grown to their high-water marks a refresh performs no heap
    /// allocations. Pass `None` for a fully live population.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensionality differs from the build's, or a
    /// mask is present with the wrong length.
    pub fn rebuild_from<P: MetricPoint>(&mut self, points: &[P], alive: Option<&[bool]>) {
        self.fill(points, alive);
    }

    /// The one fill routine behind build and rebuild, so refreshed graphs
    /// are indistinguishable from fresh ones.
    fn fill<P: MetricPoint>(&mut self, points: &[P], alive: Option<&[bool]>) {
        let n = points.len();
        match alive {
            Some(a) => {
                assert_eq!(a.len(), n, "liveness mask must cover every station");
                self.grid.rebuild_from_masked(points, a);
            }
            None => self.grid.rebuild_from(points),
        }
        self.present.clear();
        match alive {
            Some(a) => self.present.extend_from_slice(a),
            None => self.present.resize(n, true),
        }
        self.num_present = self.grid.len();
        let radius = self.radius;
        let grid = &self.grid;
        let present = &self.present;
        let starts = &mut self.starts;
        let nbrs = &mut self.nbrs;
        starts.clear();
        nbrs.clear();
        let mut num_edges = 0usize;
        for (v, p) in points.iter().enumerate() {
            starts.push(nbrs.len());
            if !present[v] {
                continue;
            }
            let row_start = nbrs.len();
            // Allocation-free visitor (cell-major order) over the masked
            // grid — dead stations are not indexed, so they never appear
            // as neighbours — then one in-place sort to restore the
            // ascending neighbour order BFS tie-breaks and protocols
            // rely on.
            grid.for_each_in_ball(points, *p, radius, |u| {
                if u != v {
                    nbrs.push(u);
                    if u > v {
                        num_edges += 1;
                    }
                }
            });
            nbrs[row_start..].sort_unstable();
        }
        starts.push(nbrs.len());
        self.num_edges = num_edges;
    }

    /// Patches the graph after a population delta, in time proportional to
    /// the delta and the affected neighborhoods: only stations named in
    /// `moved` may have changed position or liveness since the last
    /// refresh or repair (spawned stations — indices at or beyond the
    /// previous [`CommGraph::len`] — are picked up whether listed or not).
    /// Touches exactly the CSR rows whose neighborhood could have
    /// changed: the dirty stations' own rows are rebuilt by re-query,
    /// rows within `radius` of a dirty station's old or new position are
    /// patched entry-by-entry (one distance test per dirty station that
    /// could have entered or left them), and every other row is
    /// bulk-copied. The owned spatial index is repaired through
    /// [`GridIndex::repair_with_policy`] in the same call.
    ///
    /// The result is **bit-identical** to [`CommGraph::build_masked`] over
    /// the same population (same row order, same ascending neighbours,
    /// same edge count) — `tests/repair_equivalence.rs` and the
    /// mobility/churn differential batteries pin this. Row storage is
    /// double-buffered and swapped, never reallocated in steady state.
    ///
    /// Falls back to the full [`CommGraph::rebuild_from`] under
    /// [`RepairPolicy::AlwaysFull`], past the [`RepairPolicy::Auto`]
    /// threshold, and on the first refresh after a fresh static build
    /// (whose spatial index is dropped to save memory).
    ///
    /// # Panics
    ///
    /// Panics if an index in `moved` is out of range, the point slice
    /// shrank, or a mask is present with the wrong length. Stations
    /// absent from `moved` (and below the previous length) must be
    /// bit-identical in position and unchanged in liveness.
    pub fn repair<P: MetricPoint>(
        &mut self,
        moved: &[usize],
        points: &[P],
        alive: Option<&[bool]>,
        policy: RepairPolicy,
    ) {
        let old_v = self.starts.len().saturating_sub(1);
        // The incremental path needs the owned index current over the old
        // population; after a fresh static build it was dropped (domain
        // 0), so take the full path once to regrow it.
        if matches!(policy, RepairPolicy::AlwaysFull) || self.grid.domain_len() != old_v {
            self.fill(points, alive);
            return;
        }
        assert!(
            points.len() >= old_v,
            "repair cannot shrink the station slice ({} -> {} stations)",
            old_v,
            points.len()
        );
        if let Some(a) = alive {
            assert_eq!(
                a.len(),
                points.len(),
                "liveness mask must cover every station"
            );
        }
        let live = |i: usize| alive.map_or(true, |a| a[i]);

        let mut dirty = std::mem::take(&mut self.repair.dirty);
        dirty.clear();
        dirty.extend_from_slice(moved);
        dirty.extend(old_v..points.len());
        dirty.sort_unstable();
        dirty.dedup();
        if let Some(&max) = dirty.last() {
            assert!(
                max < points.len(),
                "moved index {max} out of range ({} stations)",
                points.len()
            );
        }
        // Keep only stations that genuinely changed: liveness flipped, or
        // coordinates differ bitwise from the indexed copy. (Spawns are
        // new by definition.)
        {
            let grid = &self.grid;
            dirty.retain(|&i| {
                if i >= old_v {
                    return true;
                }
                match grid.slot_of(i) {
                    Some(s) => {
                        !live(i)
                            || (0..P::AXES).any(|a| {
                                grid.positions().coord(s, a).to_bits()
                                    != points[i].coord(a).to_bits()
                            })
                    }
                    None => live(i),
                }
            });
        }
        if let RepairPolicy::Auto { threshold } = policy {
            if dirty.len() as f64 > threshold * self.num_present.max(1) as f64 {
                self.repair.dirty = dirty;
                self.fill(points, alive);
                return;
            }
        }
        if dirty.is_empty() {
            // Nothing changed (and therefore nothing spawned).
            self.repair.dirty = dirty;
            return;
        }

        // Row-edit ops: for each dirty station, every row in its old
        // neighborhood (queried against the pre-repair index, by stored
        // coordinates — the points slice already holds new positions)
        // may lose it ...
        let mut ops = std::mem::take(&mut self.repair.ops);
        ops.clear();
        for &i in &dirty {
            if let Some(s) = self.grid.slot_of(i) {
                let at = self.grid.positions().coords_of(s);
                self.grid
                    .for_each_in_ball_at(at, self.radius, |u| ops.push((u, i)));
            }
        }
        // ... then repair the index (the density decision was already
        // taken at graph level) and collect the rows that may gain it.
        self.grid
            .repair_with_policy(&dirty, points, alive, RepairPolicy::AlwaysIncremental);
        for &i in &dirty {
            if let Some(s) = self.grid.slot_of(i) {
                let at = self.grid.positions().coords_of(s);
                self.grid
                    .for_each_in_ball_at(at, self.radius, |u| ops.push((u, i)));
            }
        }
        ops.sort_unstable();
        ops.dedup();
        // Affected rows: the dirty stations (rebuilt by re-query) plus
        // every op target (patched entry-by-entry in the splice).
        let mut affected = std::mem::take(&mut self.repair.affected);
        affected.clear();
        affected.extend_from_slice(&dirty);
        affected.extend(ops.iter().map(|&(v, _)| v));
        affected.sort_unstable();
        affected.dedup();

        self.present.clear();
        match alive {
            Some(a) => self.present.extend_from_slice(a),
            None => self.present.resize(points.len(), true),
        }
        self.num_present = self.grid.len();
        self.repair.dirty = dirty;
        self.repair.affected = affected;
        self.repair.ops = ops;
        self.splice_rows(points, old_v);
    }

    /// The row-edit sweep of the repair path: rebuilds dirty rows by
    /// re-querying the repaired index, patches bystander rows (affected
    /// only because a dirty station may have entered or left them)
    /// entry-by-entry from the op list, bulk-copies the unaffected runs,
    /// and swaps the double-buffered CSR arrays in.
    fn splice_rows<P: MetricPoint>(&mut self, points: &[P], old_v: usize) {
        let mut starts2 = std::mem::take(&mut self.repair.starts_alt);
        let mut nbrs2 = std::mem::take(&mut self.repair.nbrs_alt);
        starts2.clear();
        nbrs2.clear();
        starts2.reserve(points.len() + 1);
        nbrs2.reserve(self.nbrs.len());
        let mut num_edges = self.num_edges;
        let affected = std::mem::take(&mut self.repair.affected);
        let dirty = std::mem::take(&mut self.repair.dirty);
        let ops = std::mem::take(&mut self.repair.ops);
        let mut op_i = 0usize;
        let mut next = 0usize;
        for &v in &affected {
            debug_assert!(v >= next, "affected rows must be ascending");
            if v > next {
                // Bulk-copy the unaffected run [next, v): neighbour bytes
                // verbatim, offsets rebased.
                let base = nbrs2.len();
                let off = self.starts[next];
                for w in next..v {
                    starts2.push(self.starts[w] - off + base);
                }
                nbrs2.extend_from_slice(&self.nbrs[off..self.starts[v]]);
            }
            starts2.push(nbrs2.len());
            if v < old_v {
                // Retire the old row's contribution to the edge count
                // (each edge is counted at its lower-id endpoint's row).
                num_edges -= self.nbrs[self.starts[v]..self.starts[v + 1]]
                    .iter()
                    .filter(|&&u| u > v)
                    .count();
            }
            // This row's slice of the op list (sorted by row, so the
            // cursor only moves forward).
            while op_i < ops.len() && ops[op_i].0 < v {
                op_i += 1;
            }
            let mut op_j = op_i;
            while op_j < ops.len() && ops[op_j].0 == v {
                op_j += 1;
            }
            if self.present[v] {
                let row_start = nbrs2.len();
                if dirty.binary_search(&v).is_ok() {
                    // Dirty row: everything about it may have changed —
                    // rebuild by re-query, exactly as `fill` does.
                    self.grid
                        .for_each_in_ball(points, points[v], self.radius, |u| {
                            if u != v {
                                nbrs2.push(u);
                            }
                        });
                    nbrs2[row_start..].sort_unstable();
                } else {
                    // Bystander row: only the dirty stations named in its
                    // ops can have entered or left; every other entry is
                    // untouched. Merge the (sorted) old row with the
                    // (sorted) ops, deciding each op's membership with the
                    // same single-slot distance test the ball re-query
                    // would run — `(v, d)` adjacency is bitwise symmetric,
                    // so the decision matches `d`'s own rebuilt row.
                    let cv = points[v].coords();
                    let old_row = &self.nbrs[self.starts[v]..self.starts[v + 1]];
                    let mut oi = 0usize;
                    for &(_, d) in &ops[op_i..op_j] {
                        while oi < old_row.len() && old_row[oi] < d {
                            nbrs2.push(old_row[oi]);
                            oi += 1;
                        }
                        if oi < old_row.len() && old_row[oi] == d {
                            oi += 1;
                        }
                        if let Some(s) = self.grid.slot_of(d) {
                            self.grid.positions().for_each_within(
                                s..s + 1,
                                &cv,
                                self.radius,
                                |_| {
                                    nbrs2.push(d);
                                },
                            );
                        }
                    }
                    nbrs2.extend_from_slice(&old_row[oi..]);
                }
                num_edges += nbrs2[row_start..].iter().filter(|&&u| u > v).count();
            }
            op_i = op_j;
            next = v + 1;
        }
        if next < old_v {
            let base = nbrs2.len();
            let off = self.starts[next];
            for w in next..old_v {
                starts2.push(self.starts[w] - off + base);
            }
            nbrs2.extend_from_slice(&self.nbrs[off..self.starts[old_v]]);
        }
        starts2.push(nbrs2.len());
        debug_assert_eq!(starts2.len(), points.len() + 1, "row count mismatch");

        std::mem::swap(&mut self.starts, &mut starts2);
        std::mem::swap(&mut self.nbrs, &mut nbrs2);
        self.repair.starts_alt = starts2;
        self.repair.nbrs_alt = nbrs2;
        self.repair.affected = affected;
        self.repair.dirty = dirty;
        self.repair.ops = ops;
        self.num_edges = num_edges;
    }

    /// Number of vertices (including tombstoned ones — rows are
    /// index-stable; see [`CommGraph::num_present`]).
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Number of live (present) vertices.
    pub fn num_present(&self) -> usize {
        self.num_present
    }

    /// Whether vertex `v` is live.
    pub fn is_present(&self, v: usize) -> bool {
        self.present[v]
    }

    /// The smallest live vertex id, or `None` when every vertex is dead.
    fn first_present(&self) -> Option<usize> {
        self.present.iter().position(|&a| a)
    }

    /// The edge radius used at construction.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbours of vertex `v` (ascending; empty for dead vertices).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.nbrs[self.starts[v]..self.starts[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.starts[v + 1] - self.starts[v]
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// BFS distances (in hops) from `src`; [`UNREACHABLE`] marks vertices
    /// in other components (and every dead vertex).
    ///
    /// Allocates the result per call — per-epoch refresh loops should use
    /// [`CommGraph::bfs_with`].
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        let mut scratch = GraphScratch::new();
        self.bfs_with(src, &mut scratch);
        scratch.dist
    }

    /// As [`CommGraph::bfs`], reusing `scratch`'s buffers: zero heap
    /// allocations once the scratch has grown to the graph size. Returns
    /// the distance slice borrowed from the scratch.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_with<'s>(&self, src: usize, scratch: &'s mut GraphScratch) -> &'s [u32] {
        assert!(src < self.len(), "source {src} out of range");
        scratch.dist.clear();
        scratch.dist.resize(self.len(), UNREACHABLE);
        scratch.queue.clear();
        scratch.dist[src] = 0;
        scratch.queue.push_back(src);
        while let Some(v) = scratch.queue.pop_front() {
            for &u in self.neighbors(v) {
                if scratch.dist[u] == UNREACHABLE {
                    scratch.dist[u] = scratch.dist[v] + 1;
                    scratch.queue.push_back(u);
                }
            }
        }
        &scratch.dist
    }

    /// Whether all **live** vertices are mutually reachable. The empty
    /// graph — and a graph whose whole population is dead — counts as
    /// connected. Allocates BFS state per call; refresh loops should use
    /// [`CommGraph::is_connected_with`].
    pub fn is_connected(&self) -> bool {
        let mut scratch = GraphScratch::new();
        self.is_connected_with(&mut scratch)
    }

    /// As [`CommGraph::is_connected`], reusing `scratch` (zero heap
    /// allocations in steady state — the per-epoch connectivity check of
    /// dynamic topologies).
    pub fn is_connected_with(&self, scratch: &mut GraphScratch) -> bool {
        let Some(src) = self.first_present() else {
            return true;
        };
        self.bfs_with(src, scratch);
        scratch
            .dist
            .iter()
            .zip(&self.present)
            .all(|(&d, &p)| !p || d != UNREACHABLE)
    }

    /// Number of connected components of the live graph, optionally
    /// pretending `excluded` is dead. One scratch-reusing BFS sweep.
    fn component_count_excluding(
        &self,
        excluded: Option<usize>,
        scratch: &mut GraphScratch,
    ) -> usize {
        scratch.dist.clear();
        scratch.dist.resize(self.len(), UNREACHABLE);
        scratch.queue.clear();
        let mut count = 0;
        for src in 0..self.len() {
            if !self.present[src] || Some(src) == excluded || scratch.dist[src] != UNREACHABLE {
                continue;
            }
            count += 1;
            scratch.dist[src] = 0;
            scratch.queue.push_back(src);
            while let Some(v) = scratch.queue.pop_front() {
                for &u in self.neighbors(v) {
                    if Some(u) != excluded && scratch.dist[u] == UNREACHABLE {
                        scratch.dist[u] = scratch.dist[v] + 1;
                        scratch.queue.push_back(u);
                    }
                }
            }
        }
        count
    }

    /// Whether the live vertices **other than** `excluded` are mutually
    /// reachable when `excluded` is treated as dead. Vacuously `true`
    /// when at most one live vertex remains. Scratch-reusing (zero heap
    /// allocations in steady state) — the "what if this station crashed"
    /// probe adversarial fault plans are built on.
    pub fn is_connected_without(&self, excluded: usize, scratch: &mut GraphScratch) -> bool {
        self.component_count_excluding(Some(excluded), scratch) <= 1
    }

    /// Collects the cut vertices (articulation points) of the live graph
    /// into `out`, ascending: live vertices whose removal increases the
    /// number of live connected components. Graphs with fewer than three
    /// live vertices have none.
    ///
    /// Implemented as a single iterative Tarjan DFS sweep — `O(n + m)`
    /// total, replacing the old remove-one-and-recount probe whose
    /// `O(n·(n+m))` cost came to dominate adversary epoch boundaries at
    /// scale. The sweep runs entirely over `scratch` (explicit frame
    /// stack, no recursion) so it still allocates nothing in steady
    /// state; `crates/phy/tests/cut_vertices.rs` pins it differentially
    /// against the probe on seeded uniform/cluster/line graphs with
    /// liveness masks.
    pub fn cut_vertices_into(&self, scratch: &mut GraphScratch, out: &mut Vec<usize>) {
        out.clear();
        if self.num_present < 3 {
            return;
        }
        let n = self.len();
        // `dist` doubles as Tarjan's discovery order; UNREACHABLE marks
        // unvisited vertices.
        scratch.dist.clear();
        scratch.dist.resize(n, UNREACHABLE);
        scratch.low.clear();
        scratch.low.resize(n, UNREACHABLE);
        scratch.mark.clear();
        scratch.mark.resize(n, false);
        scratch.frames.clear();
        let mut timer: u32 = 0;
        for root in 0..n {
            if !self.present[root] || scratch.dist[root] != UNREACHABLE {
                continue;
            }
            // The root of a DFS tree is a cut vertex iff it has >= 2
            // tree children; every other vertex v is one iff some tree
            // child c satisfies low[c] >= disc[v].
            let mut root_children = 0usize;
            scratch.dist[root] = timer;
            scratch.low[root] = timer;
            timer += 1;
            scratch.frames.push(DfsFrame {
                v: root,
                parent: usize::MAX,
                cursor: self.starts[root],
            });
            while let Some(frame) = scratch.frames.last_mut() {
                let v = frame.v;
                if frame.cursor < self.starts[v + 1] {
                    let u = self.nbrs[frame.cursor];
                    frame.cursor += 1;
                    // Skip the tree edge back to the parent; geometric
                    // CSR rows carry no parallel edges, so this single
                    // skip cannot hide a genuine back edge.
                    if u == frame.parent {
                        continue;
                    }
                    if scratch.dist[u] == UNREACHABLE {
                        // Tree edge: descend.
                        scratch.dist[u] = timer;
                        scratch.low[u] = timer;
                        timer += 1;
                        if v == root {
                            root_children += 1;
                        }
                        scratch.frames.push(DfsFrame {
                            v: u,
                            parent: v,
                            cursor: self.starts[u],
                        });
                    } else {
                        // Back edge: pull low[v] down to u's discovery.
                        let du = scratch.dist[u];
                        if du < scratch.low[v] {
                            scratch.low[v] = du;
                        }
                    }
                } else {
                    // v's row is exhausted: pop and propagate its low
                    // value into the parent, marking the parent when the
                    // subtree under v cannot reach above it.
                    let low_v = scratch.low[v];
                    scratch.frames.pop();
                    if let Some(pf) = scratch.frames.last() {
                        let p = pf.v;
                        if low_v < scratch.low[p] {
                            scratch.low[p] = low_v;
                        }
                        if p != root && low_v >= scratch.dist[p] {
                            scratch.mark[p] = true;
                        }
                    }
                }
            }
            if root_children >= 2 {
                scratch.mark[root] = true;
            }
        }
        for (v, &m) in scratch.mark.iter().enumerate() {
            if m {
                out.push(v);
            }
        }
    }

    /// Eccentricity of `src` (max BFS distance over live vertices), or
    /// `None` if some live vertex is unreachable from `src`.
    ///
    /// Allocates BFS state per call — loops should use
    /// [`CommGraph::eccentricity_with`].
    pub fn eccentricity(&self, src: usize) -> Option<u32> {
        let mut scratch = GraphScratch::new();
        self.eccentricity_with(src, &mut scratch)
    }

    /// As [`CommGraph::eccentricity`], reusing `scratch`'s buffers: zero
    /// heap allocations once the scratch has grown to the graph size
    /// (pinned by `crates/phy/tests/oracle_alloc.rs`).
    pub fn eccentricity_with(&self, src: usize, scratch: &mut GraphScratch) -> Option<u32> {
        self.bfs_with(src, scratch);
        let max = scratch
            .dist
            .iter()
            .zip(&self.present)
            .filter(|&(_, &p)| p)
            .map(|(&d, _)| d)
            .max()
            .unwrap_or(0);
        if max == UNREACHABLE {
            None
        } else {
            Some(max)
        }
    }

    /// Exact diameter via all-sources BFS (`O(n·m)`) over the live
    /// vertices, or `None` if disconnected. Quadratic — fine for
    /// experiment sizes; use [`CommGraph::diameter_double_sweep`] for a
    /// fast lower bound.
    pub fn diameter_exact(&self) -> Option<u32> {
        if self.num_present == 0 {
            return Some(0);
        }
        let mut scratch = GraphScratch::new();
        let mut diam = 0;
        for v in 0..self.len() {
            if !self.present[v] {
                continue;
            }
            diam = diam.max(self.eccentricity_with(v, &mut scratch)?);
        }
        Some(diam)
    }

    /// Double-sweep diameter lower bound: BFS from `start`, then BFS from
    /// the farthest vertex found. Exact on trees; a good estimate on
    /// geometric graphs. Returns `None` if disconnected (or `start` is
    /// dead).
    pub fn diameter_double_sweep(&self, start: usize) -> Option<u32> {
        if self.num_present == 0 {
            return Some(0);
        }
        if !self.present[start] {
            return None;
        }
        let mut scratch = GraphScratch::new();
        let d1 = self.bfs_with(start, &mut scratch);
        let mut far = start;
        for (v, (&d, &p)) in d1.iter().zip(&self.present).enumerate() {
            if !p {
                continue;
            }
            if d == UNREACHABLE {
                return None;
            }
            if d > d1[far] {
                far = v;
            }
        }
        self.eccentricity_with(far, &mut scratch)
    }

    /// A shortest path from `src` to `dst` (inclusive), or `None` if
    /// unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        assert!(src < self.len() && dst < self.len(), "vertex out of range");
        let mut parent = vec![usize::MAX; self.len()];
        let mut dist = vec![UNREACHABLE; self.len()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            if v == dst {
                break;
            }
            for &u in self.neighbors(v) {
                if dist[u] == UNREACHABLE {
                    dist[u] = dist[v] + 1;
                    parent[u] = v;
                    queue.push_back(u);
                }
            }
        }
        if dist[dst] == UNREACHABLE {
            return None;
        }
        let mut path = vec![dst];
        let mut v = dst;
        while v != src {
            v = parent[v];
            path.push(v);
        }
        path.reverse();
        Some(path)
    }

    /// Granularity `R_s`: the maximum ratio between distances of stations
    /// connected by an edge (paper Section 1.3). Returns `None` when the
    /// graph has no edges.
    pub fn granularity<P: MetricPoint>(&self, points: &[P]) -> Option<f64> {
        assert_eq!(points.len(), self.len(), "points/graph size mismatch");
        let mut min_d = f64::INFINITY;
        let mut max_d: f64 = 0.0;
        for v in 0..self.len() {
            for &u in self.neighbors(v) {
                if u > v {
                    let d = points[v].distance(&points[u]).max(1e-300);
                    min_d = min_d.min(d);
                    max_d = max_d.max(d);
                }
            }
        }
        if max_d == 0.0 {
            None
        } else {
            Some(max_d / min_d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn line(n: usize, gap: f64) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * gap, 0.0)).collect()
    }

    #[test]
    fn path_graph_structure() {
        let pts = line(5, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_present(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(4));
        assert_eq!(g.diameter_double_sweep(2), Some(4));
    }

    #[test]
    fn disconnected_components_detected() {
        let mut pts = line(3, 0.4);
        pts.push(Point2::new(100.0, 0.0));
        let g = CommGraph::build(&pts, 0.5);
        assert!(!g.is_connected());
        assert_eq!(g.diameter_exact(), None);
        assert_eq!(g.diameter_double_sweep(0), None);
        assert_eq!(g.eccentricity(0), None);
        let d = g.bfs(0);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_distances() {
        let pts = line(4, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs(2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn scratch_bfs_matches_allocating_bfs() {
        let mut pts = line(9, 0.45);
        pts.push(Point2::new(50.0, 0.0));
        let g = CommGraph::build(&pts, 0.5);
        let mut scratch = GraphScratch::new();
        for src in 0..g.len() {
            assert_eq!(g.bfs_with(src, &mut scratch), &g.bfs(src)[..], "src {src}");
        }
        assert!(!g.is_connected_with(&mut scratch));
        assert_eq!(g.is_connected(), g.is_connected_with(&mut scratch));
    }

    #[test]
    fn edge_at_exact_radius_included() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let pts = line(6, 0.45);
        let g = CommGraph::build(&pts, 0.5);
        let path = g.shortest_path(0, 5).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&5));
        assert_eq!(path.len(), 6);
        // consecutive path vertices are adjacent
        for w in path.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]));
        }
        assert_eq!(g.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut pts = line(2, 0.4);
        pts.push(Point2::new(50.0, 0.0));
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.shortest_path(0, 2), None);
    }

    #[test]
    fn granularity_of_uniform_line_is_one() {
        let pts = line(5, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        let rs = g.granularity(&pts).unwrap();
        assert!((rs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn granularity_of_geometric_line() {
        // Gaps 0.4, 0.2, 0.1: Rs = 4.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
            Point2::new(0.6, 0.0),
            Point2::new(0.7, 0.0),
        ];
        let g = CommGraph::build(&pts, 0.5);
        // Edges include (0,1)=0.4 ... and also longer chords <= 0.5 like (1,3)=0.3, (0,2)... 0.6>0.5 no.
        let rs = g.granularity(&pts).unwrap();
        assert!(rs >= 4.0, "Rs = {rs}");
    }

    #[test]
    fn granularity_none_without_edges() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.granularity(&pts), None);
    }

    #[test]
    fn empty_and_singleton() {
        let pts: Vec<Point2> = vec![];
        let g = CommGraph::build(&pts, 0.5);
        assert!(g.is_empty());
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(0));

        let pts = vec![Point2::origin()];
        let g = CommGraph::build(&pts, 0.5);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(0));
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn grid_graph_diameter() {
        // 4x4 grid with spacing 0.45, radius 0.5: only axis-aligned edges.
        let pts: Vec<Point2> = (0..16)
            .map(|i| Point2::new((i % 4) as f64 * 0.45, (i / 4) as f64 * 0.45))
            .collect();
        let g = CommGraph::build(&pts, 0.5);
        assert_eq!(g.diameter_exact(), Some(6)); // Manhattan distance corner-to-corner
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn masked_build_isolates_dead_vertices() {
        // A 5-path with the middle vertex dead: two live components.
        let pts = line(5, 0.4);
        let alive = [true, true, false, true, true];
        let g = CommGraph::build_masked(&pts, &alive, 0.5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_present(), 4);
        assert!(!g.is_present(2));
        assert_eq!(g.neighbors(2), &[] as &[usize]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(1), &[0], "dead neighbour filtered out");
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_connected(), "the dead vertex cuts the path");
        // Reviving the cut vertex reconnects.
        let g2 = CommGraph::build_masked(&pts, &[true; 5], 0.5);
        assert!(g2.is_connected());
        // A dead vertex never blocks connectivity when the rest touch.
        let alive_end = [true, true, true, true, false];
        let g3 = CommGraph::build_masked(&pts, &alive_end, 0.5);
        assert!(g3.is_connected(), "dead vertices are ignored");
        assert_eq!(g3.diameter_exact(), Some(3));
    }

    #[test]
    fn rebuild_matches_fresh_build_static_and_masked() {
        let mut pts = line(30, 0.4);
        let mut alive = vec![true; 30];
        let mut g = CommGraph::build(&pts, 0.5);
        for step in 0..4usize {
            for (i, p) in pts.iter_mut().enumerate() {
                p.x += ((i + step) % 3) as f64 * 0.17 - 0.15;
                p.y = ((i * step) % 5) as f64 * 0.08;
            }
            for (i, a) in alive.iter_mut().enumerate() {
                *a = (i + step) % 5 != 0;
            }
            g.rebuild_from(&pts, Some(&alive));
            assert_eq!(g, CommGraph::build_masked(&pts, &alive, 0.5), "step {step}");
            g.rebuild_from(&pts, None);
            assert_eq!(g, CommGraph::build(&pts, 0.5), "unmasked step {step}");
        }
    }

    #[test]
    fn repair_after_static_build_falls_back_to_full_refresh() {
        // Fresh static builds drop their spatial index; the first repair
        // must notice and take the full path, bit-identical to a rebuild.
        let mut pts = line(20, 0.4);
        let mut g = CommGraph::build(&pts, 0.5);
        pts[7].x += 0.9;
        g.repair(&[7], &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(g, CommGraph::build(&pts, 0.5));
        // Now the index is live: a second repair takes the incremental path.
        pts[3].x -= 0.7;
        g.repair(&[3], &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(g, CommGraph::build(&pts, 0.5));
    }

    #[test]
    fn repair_moves_kills_rejoins_spawns_match_fresh_builds() {
        use rand::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0xc0_ffee);
        let mut pts: Vec<Point2> = (0..80)
            .map(|i| Point2::new((i as f64 * 0.37).sin() * 3.0, (i as f64 * 0.53).cos() * 3.0))
            .collect();
        let mut alive = vec![true; pts.len()];
        let mut g = CommGraph::build_masked(&pts, &alive, 0.5);
        // Prime the owned index (static builds drop it).
        g.rebuild_from(&pts, Some(&alive));
        for step in 0..30 {
            let mut moved = Vec::new();
            for _ in 0..rng.gen_range(0..6usize) {
                let i = rng.gen_range(0..pts.len());
                moved.push(i);
                match rng.gen_range(0..4u32) {
                    0 => {
                        pts[i].x += rng.gen_range(-0.1..0.1);
                        pts[i].y += rng.gen_range(-0.1..0.1);
                    }
                    1 => {
                        pts[i].x += rng.gen_range(-2.0..2.0);
                        pts[i].y += rng.gen_range(-2.0..2.0);
                    }
                    2 => alive[i] = false,
                    _ => alive[i] = true,
                }
            }
            if rng.gen_range(0..3u32) == 0 {
                pts.push(Point2::new(
                    rng.gen_range(-3.5..3.5),
                    rng.gen_range(-3.5..3.5),
                ));
                alive.push(true);
            }
            g.repair(&moved, &pts, Some(&alive), RepairPolicy::AlwaysIncremental);
            assert_eq!(g, CommGraph::build_masked(&pts, &alive, 0.5), "step {step}");
        }
    }

    #[test]
    fn repair_auto_policy_falls_back_on_dense_deltas() {
        let mut pts = line(40, 0.4);
        let mut g = CommGraph::build(&pts, 0.5);
        g.rebuild_from::<Point2>(&pts, None);
        // Move most of the population: Auto must take the full path and
        // still land bit-identical.
        let moved: Vec<usize> = (0..30).collect();
        for &i in &moved {
            pts[i].y += 0.3;
        }
        g.repair(&moved, &pts, None, RepairPolicy::default());
        assert_eq!(g, CommGraph::build(&pts, 0.5));
    }

    #[test]
    fn repair_with_no_changes_is_a_noop() {
        let pts = line(15, 0.4);
        let mut g = CommGraph::build(&pts, 0.5);
        g.rebuild_from::<Point2>(&pts, None);
        let all: Vec<usize> = (0..pts.len()).collect();
        g.repair(&all, &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(g, CommGraph::build(&pts, 0.5));
    }

    #[test]
    fn cut_vertices_of_a_path_are_the_interior() {
        let pts = line(5, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        let mut scratch = GraphScratch::new();
        let mut cv = Vec::new();
        g.cut_vertices_into(&mut scratch, &mut cv);
        assert_eq!(cv, vec![1, 2, 3]);
        for &v in &cv {
            assert!(!g.is_connected_without(v, &mut scratch), "v = {v}");
        }
        assert!(g.is_connected_without(0, &mut scratch));
        assert!(g.is_connected_without(4, &mut scratch));
    }

    #[test]
    fn clique_has_no_cut_vertices() {
        let pts: Vec<Point2> = (0..4).map(|i| Point2::new(i as f64 * 0.1, 0.0)).collect();
        let g = CommGraph::build(&pts, 0.5);
        let mut scratch = GraphScratch::new();
        let mut cv = Vec::new();
        g.cut_vertices_into(&mut scratch, &mut cv);
        assert!(cv.is_empty());
    }

    #[test]
    fn cut_vertices_respect_liveness_mask() {
        // 5-path with vertex 1 dead: live graph is {0} ∪ path(2,3,4), two
        // components; vertex 3 separates {2} from {4} within its
        // component, so it's the only live articulation point.
        let pts = line(5, 0.4);
        let alive = [true, false, true, true, true];
        let g = CommGraph::build_masked(&pts, &alive, 0.5);
        let mut scratch = GraphScratch::new();
        let mut cv = Vec::new();
        g.cut_vertices_into(&mut scratch, &mut cv);
        assert_eq!(cv, vec![3]);
    }

    #[test]
    fn tiny_and_dead_graphs_have_no_cut_vertices() {
        let mut scratch = GraphScratch::new();
        let mut cv = vec![99]; // must be cleared by the call
        let pts = line(2, 0.4);
        CommGraph::build(&pts, 0.5).cut_vertices_into(&mut scratch, &mut cv);
        assert!(cv.is_empty());
        let pts = line(3, 0.4);
        CommGraph::build_masked(&pts, &[false; 3], 0.5).cut_vertices_into(&mut scratch, &mut cv);
        assert!(cv.is_empty());
    }

    #[test]
    fn is_connected_without_vacuous_cases() {
        let mut scratch = GraphScratch::new();
        let pts = line(2, 0.4);
        let g = CommGraph::build(&pts, 0.5);
        // Removing either endpoint of an edge leaves one vertex: connected.
        assert!(g.is_connected_without(0, &mut scratch));
        assert!(g.is_connected_without(1, &mut scratch));
        // Excluding a dead vertex is a no-op on connectivity.
        let pts3 = line(3, 0.4);
        let g3 = CommGraph::build_masked(&pts3, &[true, false, true], 0.5);
        assert!(!g3.is_connected_with(&mut scratch));
        assert!(!g3.is_connected_without(1, &mut scratch));
    }

    #[test]
    fn all_dead_population_counts_as_connected() {
        let pts = line(3, 0.4);
        let g = CommGraph::build_masked(&pts, &[false; 3], 0.5);
        assert_eq!(g.num_present(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(0));
        assert_eq!(g.num_edges(), 0);
    }
}
