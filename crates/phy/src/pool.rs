//! The per-trial worker pool of the sharded accumulate stage.
//!
//! [`KernelPool`] holds everything the accumulate stage of the staged
//! reception pipeline needs to run on more than one thread: the requested
//! thread count, one reusable [`ShardScratch`] per worker, and the shard
//! boundary buffer. Build one per trial (the [`Engine`] owns one and
//! reuses it across rounds; `Scenario::physics_threads` sizes it) and
//! hand it to [`ReceptionOracle::resolve_into_with`] every round — the
//! only per-round threading cost is the scoped-thread spawn itself; all
//! scratch is steady-state allocation-free.
//!
//! Determinism contract: sharding **never** changes results. Shards own
//! contiguous receiver-cell (grid-native) or station (exact /
//! cell-aggregate) ranges, every per-receiver floating-point sum is
//! accumulated in the same order as the serial kernel, and no shard
//! writes outside its range — so resolved rounds are bitwise identical
//! at any thread count (pinned by `tests/mode_determinism.rs`). The
//! same holds across kernel tiers: the batched SoA kernels each shard
//! runs dispatch to explicit SIMD ([`crate::simd`]) resolved once per
//! round, with every tier bit-identical per element, so thread count
//! and dispatch compose freely without changing a single bit.
//!
//! [`Engine`]: ../../sinr_runtime/struct.Engine.html
//! [`ReceptionOracle::resolve_into_with`]: crate::ReceptionOracle::resolve_into_with

use sinr_geometry::{GridIndex, PositionStore};

/// Reusable scratch owned by one accumulate-stage shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardScratch {
    /// SoA coordinates of the near transmitters of the receiver cell the
    /// shard is currently resolving (contiguous, so the distance batch
    /// kernel streams through them).
    pub near_pos: PositionStore,
    /// Station ids of those transmitters, aligned with `near_pos` slots.
    pub near_t: Vec<usize>,
}

/// Worker-thread state for the sharded accumulate stage; one per trial.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{KernelPool, Network, RoundOutcome, SinrParams};
///
/// let net = Network::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
///     SinrParams::default_plane(),
/// )?;
/// let mut oracle = net.new_oracle();
/// let mut pool = KernelPool::new(4); // results identical to KernelPool::serial()
/// let mut out = RoundOutcome::empty();
/// net.resolve_with_pool(&mut oracle, &mut pool, &[0], &mut out);
/// assert_eq!(out.decoded_from[1], Some(0));
/// # Ok::<(), sinr_phy::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelPool {
    threads: usize,
    shards: Vec<ShardScratch>,
    /// Shard boundaries of the current round: cell indices (grid-native)
    /// or station indices (exact / cell-aggregate), `shard_count + 1`
    /// entries.
    bounds: Vec<usize>,
}

impl Default for KernelPool {
    fn default() -> Self {
        KernelPool::serial()
    }
}

impl KernelPool {
    /// A pool that shards the accumulate stage over up to `threads`
    /// scoped worker threads (`0` is clamped to `1`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        KernelPool {
            threads,
            shards: vec![ShardScratch::default(); threads],
            bounds: Vec::new(),
        }
    }

    /// A single-threaded pool: the accumulate stage runs inline on the
    /// calling thread (and spawns nothing).
    pub fn serial() -> Self {
        KernelPool::new(1)
    }

    /// A heap-free placeholder for moving a pool out of a struct field
    /// without allocating (its empty scratch means it must never resolve
    /// a round itself).
    pub(crate) fn placeholder() -> Self {
        KernelPool {
            threads: 1,
            shards: Vec::new(),
            bounds: Vec::new(),
        }
    }

    /// The maximum number of worker threads this pool shards across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Plans shard boundaries over the populated cells of `grid`,
    /// balanced by member count (contiguous cell ranges, so each shard
    /// owns a contiguous slot range of the CSR layout). Returns the shard
    /// count (`>= 1`; cells are never split).
    pub(crate) fn plan_cells(&mut self, grid: &GridIndex) -> usize {
        self.ensure_scratch();
        let cells = grid.num_cells();
        let n = grid.len();
        let want = self.threads.min(cells).max(1);
        self.bounds.clear();
        self.bounds.push(0);
        if cells > 0 {
            let mut prev = 0usize;
            for s in 1..want {
                let target = s * n / want;
                // First cell starting at or after the slot target,
                // strictly after the previous boundary.
                let mut lo = prev + 1;
                let mut hi = cells;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if grid.cell_range(mid).start < target {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo < cells {
                    self.bounds.push(lo);
                    prev = lo;
                }
            }
        }
        self.bounds.push(cells);
        self.bounds.len() - 1
    }

    /// Plans shard boundaries over station indices `0..n` (even
    /// contiguous ranges). Returns the shard count (`>= 1`).
    pub(crate) fn plan_stations(&mut self, n: usize) -> usize {
        self.ensure_scratch();
        let want = self.threads.min(n).max(1);
        self.bounds.clear();
        for s in 0..want {
            self.bounds.push(s * n / want);
        }
        self.bounds.push(n);
        want
    }

    /// The planned boundaries and the per-shard scratch, split-borrowed.
    pub(crate) fn parts(&mut self) -> (&[usize], &mut [ShardScratch]) {
        (&self.bounds, &mut self.shards)
    }

    /// Guarantees at least one scratch entry, repairing a pool whose
    /// scratch was lost — e.g. an oracle's fallback slot left holding
    /// [`KernelPool::placeholder`] after a panicking resolve. The one-off
    /// allocation happens only on that recovery path, never in steady
    /// state.
    fn ensure_scratch(&mut self) {
        if self.shards.is_empty() {
            self.shards.push(ShardScratch::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn grid(n: usize) -> GridIndex {
        let pts: Vec<Point2> = (0..n)
            .map(|i| Point2::new((i % 13) as f64 * 0.8, (i / 13) as f64 * 0.8))
            .collect();
        GridIndex::build(&pts, 1.0)
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(KernelPool::new(0).threads(), 1);
        assert_eq!(KernelPool::serial().threads(), 1);
        assert_eq!(KernelPool::default().threads(), 1);
    }

    #[test]
    fn cell_plan_partitions_all_cells_contiguously() {
        let g = grid(200);
        for threads in [1, 2, 3, 8, 64] {
            let mut pool = KernelPool::new(threads);
            let shards = pool.plan_cells(&g);
            let (bounds, scratch) = pool.parts();
            assert_eq!(bounds.len(), shards + 1);
            assert!(shards <= threads && shards >= 1);
            assert!(scratch.len() >= shards);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), g.num_cells());
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "nonempty shards");
        }
    }

    #[test]
    fn cell_plan_handles_empty_grid() {
        let g = GridIndex::build(&Vec::<Point2>::new(), 1.0);
        let mut pool = KernelPool::new(4);
        let shards = pool.plan_cells(&g);
        assert_eq!(shards, 1);
        assert_eq!(pool.parts().0, &[0, 0]);
    }

    #[test]
    fn station_plan_covers_range_evenly() {
        let mut pool = KernelPool::new(3);
        let shards = pool.plan_stations(10);
        assert_eq!(shards, 3);
        assert_eq!(pool.parts().0, &[0, 3, 6, 10]);
        let shards = pool.plan_stations(2);
        assert_eq!(shards, 2);
        assert_eq!(pool.parts().0, &[0, 1, 2]);
        let shards = pool.plan_stations(0);
        assert_eq!(shards, 1);
        assert_eq!(pool.parts().0, &[0, 0]);
    }
}
