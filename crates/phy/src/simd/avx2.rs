//! AVX2 f64 signal kernels (4 lanes), x86_64 only.
//!
//! No fused multiply-adds (the scalar reference rounds every mul and
//! add separately); `_mm256_max_pd(v, min2)` has `v` first so a NaN
//! lane yields `min2`, exactly like `f64::max`; `sqrt`/`div`/`mul` are
//! correctly rounded, so every lane matches the scalar loop bit for bit.

use core::arch::x86_64::{
    _mm256_div_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_sqrt_pd,
    _mm256_storeu_pd,
};

use super::scalar;

const LANES: usize = 4;

/// α = 2: `v = p / v.max(min2)`, 4 lanes at a time.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA (the dispatcher
/// checks the detected tier before selecting this path).
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn signal_alpha2(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`; unaligned intrinsics throughout.
    unsafe {
        let pv = _mm256_set1_pd(p);
        let mv = _mm256_set1_pd(min2);
        let mut i = 0;
        while i < chunks {
            let c = _mm256_max_pd(_mm256_loadu_pd(d2.as_ptr().add(i)), mv);
            _mm256_storeu_pd(d2.as_mut_ptr().add(i), _mm256_div_pd(pv, c));
            i += LANES;
        }
    }
    scalar::signal_alpha2(&mut d2[chunks..], p, min2);
}

/// α = 3: `c = v.max(min2); v = p / (c · √c)`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn signal_alpha3(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`; unaligned intrinsics throughout.
    unsafe {
        let pv = _mm256_set1_pd(p);
        let mv = _mm256_set1_pd(min2);
        let mut i = 0;
        while i < chunks {
            let c = _mm256_max_pd(_mm256_loadu_pd(d2.as_ptr().add(i)), mv);
            let den = _mm256_mul_pd(c, _mm256_sqrt_pd(c));
            _mm256_storeu_pd(d2.as_mut_ptr().add(i), _mm256_div_pd(pv, den));
            i += LANES;
        }
    }
    scalar::signal_alpha3(&mut d2[chunks..], p, min2);
}

/// α = 4: `c = v.max(min2); v = p / (c · c)`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn signal_alpha4(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`; unaligned intrinsics throughout.
    unsafe {
        let pv = _mm256_set1_pd(p);
        let mv = _mm256_set1_pd(min2);
        let mut i = 0;
        while i < chunks {
            let c = _mm256_max_pd(_mm256_loadu_pd(d2.as_ptr().add(i)), mv);
            let den = _mm256_mul_pd(c, c);
            _mm256_storeu_pd(d2.as_mut_ptr().add(i), _mm256_div_pd(pv, den));
            i += LANES;
        }
    }
    scalar::signal_alpha4(&mut d2[chunks..], p, min2);
}
