//! NEON f64 signal kernels (2 lanes), aarch64 only.
//!
//! `vmaxnmq_f64` is IEEE maxNum — a NaN lane yields the other operand,
//! matching `f64::max` with a non-NaN `min2`; `vsqrtq`/`vdivq`/`vmulq`
//! are correctly rounded and no fused multiply-add is issued, so every
//! lane matches the scalar loop bit for bit.

use core::arch::aarch64::{
    vdivq_f64, vdupq_n_f64, vld1q_f64, vmaxnmq_f64, vmulq_f64, vsqrtq_f64, vst1q_f64,
};

use super::scalar;

const LANES: usize = 2;

/// α = 2: `v = p / v.max(min2)`, 2 lanes at a time.
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn signal_alpha2(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`.
    unsafe {
        let pv = vdupq_n_f64(p);
        let mv = vdupq_n_f64(min2);
        let mut i = 0;
        while i < chunks {
            let c = vmaxnmq_f64(vld1q_f64(d2.as_ptr().add(i)), mv);
            vst1q_f64(d2.as_mut_ptr().add(i), vdivq_f64(pv, c));
            i += LANES;
        }
    }
    scalar::signal_alpha2(&mut d2[chunks..], p, min2);
}

/// α = 3: `c = v.max(min2); v = p / (c · √c)`.
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn signal_alpha3(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`.
    unsafe {
        let pv = vdupq_n_f64(p);
        let mv = vdupq_n_f64(min2);
        let mut i = 0;
        while i < chunks {
            let c = vmaxnmq_f64(vld1q_f64(d2.as_ptr().add(i)), mv);
            let den = vmulq_f64(c, vsqrtq_f64(c));
            vst1q_f64(d2.as_mut_ptr().add(i), vdivq_f64(pv, den));
            i += LANES;
        }
    }
    scalar::signal_alpha3(&mut d2[chunks..], p, min2);
}

/// α = 4: `c = v.max(min2); v = p / (c · c)`.
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn signal_alpha4(d2: &mut [f64], p: f64, min2: f64) {
    let n = d2.len();
    let chunks = n / LANES * LANES;
    // SAFETY: every load/store touches `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `d2`.
    unsafe {
        let pv = vdupq_n_f64(p);
        let mv = vdupq_n_f64(min2);
        let mut i = 0;
        while i < chunks {
            let c = vmaxnmq_f64(vld1q_f64(d2.as_ptr().add(i)), mv);
            let den = vmulq_f64(c, c);
            vst1q_f64(d2.as_mut_ptr().add(i), vdivq_f64(pv, den));
            i += LANES;
        }
    }
    scalar::signal_alpha4(&mut d2[chunks..], p, min2);
}
