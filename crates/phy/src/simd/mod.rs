//! Runtime-dispatched explicit SIMD for the batched signal kernels.
//!
//! Companion of [`sinr_geometry::simd`] (which owns tier detection and
//! the [`sinr_geometry::SimdTier`] / [`sinr_geometry::KernelDispatch`]
//! types): this module vectorizes the path-loss map of
//! [`crate::SinrParams::signal_at_sq_batch`] for the integer exponents
//! α ∈ {2, 3, 4}. Each is an element-wise composition of correctly
//! rounded lane ops —
//!
//! | α | per element |
//! |---|---|
//! | 2 | `max`, `div` |
//! | 3 | `max`, `sqrt`, `mul`, `div` |
//! | 4 | `max`, `mul`, `div` |
//!
//! — applied in the exact association order of the scalar loop, with
//! remainder elements running the shared scalar code, so every tier is
//! **bit-identical** per element. Generic α needs `powf`, which has no
//! correctly-rounded vector form; it always runs the scalar loop
//! regardless of tier.
//!
//! The `max(MIN2)` clamp matches `f64::max` semantics on every tier: a
//! NaN input yields `MIN2` (AVX2's `max_pd` returns its second operand
//! on an unordered compare; NEON uses `vmaxnmq_f64`, the IEEE maxNum).

use sinr_geometry::SimdTier;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2;
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

/// Scalar reference kernels — the `Scalar` tier and every vector tier's
/// remainder path. These are the exact loops
/// [`crate::SinrParams::signal_at_sq_batch`] historically ran.
pub(crate) mod scalar {
    /// α = 2: `v = p / v.max(min2)`.
    pub fn signal_alpha2(d2: &mut [f64], p: f64, min2: f64) {
        for v in d2 {
            *v = p / (*v).max(min2);
        }
    }

    /// α = 3: `c = v.max(min2); v = p / (c · √c)`.
    pub fn signal_alpha3(d2: &mut [f64], p: f64, min2: f64) {
        for v in d2 {
            let c = (*v).max(min2);
            *v = p / (c * c.sqrt());
        }
    }

    /// α = 4: `c = v.max(min2); v = p / (c · c)`.
    pub fn signal_alpha4(d2: &mut [f64], p: f64, min2: f64) {
        for v in d2 {
            let c = (*v).max(min2);
            *v = p / (c * c);
        }
    }
}

/// Dispatched α = 2 signal map, in place over `d2`.
#[allow(unsafe_code)]
pub(crate) fn signal_alpha2(d2: &mut [f64], p: f64, min2: f64, tier: SimdTier) {
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when feature detection confirmed
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::signal_alpha2(d2, p, min2) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::signal_alpha2(d2, p, min2) },
        _ => scalar::signal_alpha2(d2, p, min2),
    }
}

/// Dispatched α = 3 signal map, in place over `d2`.
#[allow(unsafe_code)]
pub(crate) fn signal_alpha3(d2: &mut [f64], p: f64, min2: f64, tier: SimdTier) {
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when feature detection confirmed
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::signal_alpha3(d2, p, min2) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::signal_alpha3(d2, p, min2) },
        _ => scalar::signal_alpha3(d2, p, min2),
    }
}

/// Dispatched α = 4 signal map, in place over `d2`.
#[allow(unsafe_code)]
pub(crate) fn signal_alpha4(d2: &mut [f64], p: f64, min2: f64, tier: SimdTier) {
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when feature detection confirmed
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::signal_alpha4(d2, p, min2) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::signal_alpha4(d2, p, min2) },
        _ => scalar::signal_alpha4(d2, p, min2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::auto_tier;

    #[test]
    fn vector_tiers_match_scalar_bitwise() {
        let tier = auto_tier();
        let n = 4 * tier.f64_lanes() + 3;
        let min2 = 1e-18;
        let p = 2.5;
        let base: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 0.43).sin().abs() * 10.0).powi(2))
            .collect();
        for len in [0, 1, tier.f64_lanes(), tier.f64_lanes() + 1, n] {
            for (dispatched, reference) in [
                (
                    signal_alpha2 as fn(&mut [f64], f64, f64, SimdTier),
                    scalar::signal_alpha2 as fn(&mut [f64], f64, f64),
                ),
                (signal_alpha3, scalar::signal_alpha3),
                (signal_alpha4, scalar::signal_alpha4),
            ] {
                let mut want = base[..len].to_vec();
                let mut got = base[..len].to_vec();
                // Include a sub-clamp value to pin the MIN2 boundary.
                if len > 0 {
                    want[0] = min2 / 4.0;
                    got[0] = min2 / 4.0;
                }
                reference(&mut want, p, min2);
                dispatched(&mut got, p, min2, tier);
                let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
                let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(wb, gb, "len {len}");
            }
        }
    }
}
