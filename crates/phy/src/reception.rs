//! The SINR reception oracle: who hears whom in one synchronous round.
//!
//! Given the set `T` of transmitting stations, station `u ∉ T` receives the
//! message of `v ∈ T` iff `SINR(v, u, T) ≥ β` (Equation 1 of the paper).
//! Since `β ≥ 1`, at most one transmitter can be decoded at any receiver —
//! necessarily the one with the strongest received signal — so the oracle
//! computes, per receiver, the total received power and the strongest
//! transmitter, then applies the threshold test.
//!
//! This module holds the mode enum, the round-outcome type and the one-shot
//! [`resolve_round`] entry point; the implementation (and the reusable,
//! zero-allocation round-resolution state) lives in
//! [`ReceptionOracle`](crate::oracle::ReceptionOracle).

use sinr_geometry::{GridIndex, MetricPoint};

use crate::oracle::ReceptionOracle;
use crate::params::SinrParams;

/// How interference sums are evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterferenceMode {
    /// Exact evaluation of Equation (1): every transmitter contributes to
    /// every receiver. Cost `O(|T|·n)` per round.
    Exact,
    /// Transmitters farther than `radius` from a receiver are ignored.
    ///
    /// For bounded-density inputs the neglected far-field interference is
    /// `O(density · radius^{γ−α})`, vanishing as `radius` grows because
    /// α > γ. Reception decisions are slightly *optimistic* compared to
    /// [`InterferenceMode::Exact`]; use only for large-scale sweeps after
    /// checking agreement (see the `truncation` tests and the criterion
    /// bench `interference`).
    Truncated {
        /// Interference cut-off radius (must exceed the communication range 1).
        radius: f64,
    },
    /// Far-field interference is aggregated per grid cell (a one-level
    /// multipole approximation): transmitters within `near_radius` of a
    /// receiver contribute exactly; farther transmitters contribute
    /// `P·d(u, cell centre)^{−α}` through their cell's aggregate.
    ///
    /// The strongest (decodable) transmitter is always within the
    /// communication range 1 < `near_radius`, so decode *candidates* are
    /// exact and only the interference tail is approximated. With cell side
    /// `g` and `d ≥ near_radius`, each far contribution carries a relative
    /// error ≤ `(1 − g·√2/(2d))^{−α} − 1 ≈ α·g·√2/(2·near_radius)` — a few
    /// percent at the defaults (`g = 1`, `near_radius = 4`). Unlike
    /// [`InterferenceMode::Truncated`] the tail is *estimated*, not
    /// dropped, so errors do not systematically favour reception.
    ///
    /// Cost: `O(|T| + n·#cells + near pairs)` instead of `O(|T|·n)`.
    CellAggregate {
        /// Exact-evaluation radius (must be at least 2: range 1 plus one
        /// cell diagonal of slack).
        near_radius: f64,
    },
    /// The grid-native kernel: exact decode, approximate tail, shared per
    /// receiver cell — the recommended mode for large sweeps.
    ///
    /// Decode candidates are evaluated exactly per transmitter within
    /// Chebyshev key distance `⌈near_radius / cell side⌉` of the receiver's
    /// grid cell (every decodable signal comes from range ≤ 1 <
    /// `near_radius`, Equation 1), while all farther transmitter cells
    /// collapse into a single interference-tail term per *receiver cell*,
    /// evaluated once between the two cells' member centroids and shared by
    /// every receiver in the cell.
    ///
    /// Compared to [`InterferenceMode::CellAggregate`] — which evaluates
    /// the far field per receiver — the tail here is approximated at both
    /// endpoints, carrying a relative error per far term of roughly
    /// `α·g·√2 / near_radius` (cell side `g`; both centroid offsets are at
    /// most `g·√2/2` and first-order errors partially cancel across a
    /// cell's members). Decode decisions are exact whenever the SINR margin
    /// exceeds that tail perturbation; like `CellAggregate`, and unlike
    /// [`InterferenceMode::Truncated`], errors do not systematically favour
    /// reception.
    ///
    /// Cost: `O(|T| log |T| + #cells·#tx-cells + near pairs)` per round,
    /// with no square-root/`powf` per far pair — measured ~15× faster than
    /// `Exact` and ~14× faster than `CellAggregate` at n = 10⁴, 2% load
    /// (see `BENCH_phy.json`).
    GridNative {
        /// Exact-evaluation radius (must be at least 2; default 4 balances
        /// the tail error against the near-pair count).
        near_radius: f64,
    },
}

impl InterferenceMode {
    /// The default grid-native fast mode (`near_radius = 4`): exact decode
    /// decisions, per-cell approximate interference tail.
    pub fn grid_native() -> Self {
        InterferenceMode::GridNative { near_radius: 4.0 }
    }
}

/// Outcome of resolving one round of transmissions.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// `decoded_from[u] = Some(v)` iff station `u` successfully received the
    /// message transmitted by station `v` this round. Transmitters never
    /// decode (half-duplex): `decoded_from[u] = None` for `u ∈ T`.
    pub decoded_from: Vec<Option<usize>>,
    /// Number of transmitters this round.
    pub num_transmitters: usize,
}

impl RoundOutcome {
    /// An outcome with no stations and no transmitters — the reusable
    /// buffer fed to [`ReceptionOracle::resolve_into`].
    pub fn empty() -> Self {
        RoundOutcome {
            decoded_from: Vec::new(),
            num_transmitters: 0,
        }
    }

    /// Number of stations that decoded a message this round.
    pub fn num_receivers(&self) -> usize {
        self.decoded_from.iter().filter(|d| d.is_some()).count()
    }
}

/// Resolves one round: which stations decode which transmitter.
///
/// `transmitters` is the set `T` (indices into `points`, duplicates not
/// allowed). `grid` is required for every mode except
/// [`InterferenceMode::Exact`] and ignored for exact evaluation.
///
/// This is the one-shot convenience wrapper: it builds a fresh
/// [`ReceptionOracle`] per call. Round loops should construct the oracle
/// once and call [`ReceptionOracle::resolve_into`] (or
/// [`crate::Network::resolve_with`]) to resolve rounds without allocating.
///
/// # Panics
///
/// Panics if a transmitter index is out of range, if a grid-backed mode is
/// requested without a grid, or if a truncation/near radius is below its
/// documented minimum (which would corrupt even interference-free
/// receptions).
pub fn resolve_round<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    mode: InterferenceMode,
    grid: Option<&GridIndex>,
) -> RoundOutcome {
    ReceptionOracle::new().resolve(points, params, transmitters, mode, grid)
}

/// Interference at station `u` from transmitter set `T`, excluding the
/// station nearest to `u` among `T` (the paper's definition of `I_u`,
/// Section 2). Exact evaluation.
pub fn interference_at<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    u: usize,
) -> f64 {
    let nearest = transmitters
        .iter()
        .copied()
        .filter(|&t| t != u)
        .min_by(|&a, &b| {
            points[a]
                .distance(&points[u])
                .total_cmp(&points[b].distance(&points[u]))
        });
    let Some(nearest) = nearest else { return 0.0 };
    transmitters
        .iter()
        .copied()
        .filter(|&t| t != u && t != nearest)
        .map(|t| params.signal_at(points[t].distance(&points[u])))
        .sum()
}

/// Total received signal power at station `u` from all of `transmitters`
/// (the quantity `S_v` of Section 3.4, used by Facts 9–10).
pub fn total_signal_at<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    u: usize,
) -> f64 {
    transmitters
        .iter()
        .copied()
        .filter(|&t| t != u)
        .map(|t| params.signal_at(points[t].distance(&points[u])))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    #[test]
    fn lone_transmitter_reaches_range_one() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),   // exactly at range
            Point2::new(1.001, 0.0), // just beyond
        ];
        let out = resolve_round(&pts, &params(), &[0], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0));
        assert_eq!(out.decoded_from[2], None);
        assert_eq!(out.decoded_from[0], None, "transmitter is half-duplex");
        assert_eq!(out.num_transmitters, 1);
        assert_eq!(out.num_receivers(), 1);
    }

    #[test]
    fn two_transmitters_jam_midpoint() {
        // Symmetric transmitters: the receiver in the middle sees SINR =
        // S/(N+S) < 1 <= beta, so it decodes nothing.
        let pts = vec![
            Point2::new(-0.5, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
        ];
        let out = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], None);
    }

    #[test]
    fn near_transmitter_beats_far_interference() {
        // One transmitter very close, another far: the close one decodes.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.1, 0.0),
            Point2::new(10.0, 0.0),
        ];
        let out = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0));
    }

    #[test]
    fn no_transmitters_no_receptions() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let out = resolve_round(&pts, &params(), &[], InterferenceMode::Exact, None);
        assert!(out.decoded_from.iter().all(Option::is_none));
        assert_eq!(out.num_transmitters, 0);
    }

    #[test]
    fn all_transmit_nobody_receives() {
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let tx: Vec<usize> = (0..5).collect();
        let out = resolve_round(&pts, &params(), &tx, InterferenceMode::Exact, None);
        assert!(out.decoded_from.iter().all(Option::is_none));
    }

    #[test]
    fn interference_at_excludes_nearest() {
        let pts = vec![
            Point2::new(0.0, 0.0), // u
            Point2::new(0.5, 0.0), // nearest transmitter
            Point2::new(2.0, 0.0), // other transmitter
        ];
        let p = params();
        let i = interference_at(&pts, &p, &[1, 2], 0);
        assert!((i - p.signal_at(2.0)).abs() < 1e-12);
        assert_eq!(interference_at(&pts, &p, &[], 0), 0.0);
        assert_eq!(interference_at(&pts, &p, &[0], 0), 0.0, "self excluded");
    }

    #[test]
    fn total_signal_sums_everything() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(2.0, 0.0),
        ];
        let p = params();
        let s = total_signal_at(&pts, &p, &[1, 2], 0);
        assert!((s - (p.signal_at(0.5) + p.signal_at(2.0))).abs() < 1e-12);
    }

    #[test]
    fn truncated_matches_exact_when_radius_covers_all() {
        let pts: Vec<Point2> = (0..30)
            .map(|i| Point2::new((i % 6) as f64 * 0.4, (i / 6) as f64 * 0.4))
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx = vec![0, 7, 13, 22];
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &p,
            &tx,
            InterferenceMode::Truncated { radius: 100.0 },
            Some(&grid),
        );
        assert_eq!(exact, trunc);
    }

    #[test]
    fn truncated_is_optimistic() {
        // A far jammer is ignored by the truncated model, so a marginal
        // reception succeeds there but fails exactly.
        let p = SinrParams::builder().beta(1.0).eps(0.5).build(2.0).unwrap();
        let pts = vec![
            Point2::new(0.0, 0.0),   // tx
            Point2::new(0.999, 0.0), // marginal receiver
            Point2::new(3.0, 0.0),   // jammer outside truncation radius 1.5
        ];
        let grid = GridIndex::build(&pts, 1.0);
        let exact = resolve_round(&pts, &p, &[0, 2], InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &p,
            &[0, 2],
            InterferenceMode::Truncated { radius: 1.5 },
            Some(&grid),
        );
        assert_eq!(exact.decoded_from[1], None);
        assert_eq!(trunc.decoded_from[1], Some(0));
    }

    #[test]
    fn cell_aggregate_matches_exact_decisions_on_spread_network() {
        // Random-ish spread-out network; decode decisions must match the
        // exact oracle (the far-field approximation only perturbs the
        // interference tail, a few percent at most).
        let pts: Vec<Point2> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 * 0.9 + ((i * 7) % 5) as f64 * 0.11;
                let y = (i / 20) as f64 * 0.9 + ((i * 13) % 7) as f64 * 0.07;
                Point2::new(x, y)
            })
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let agg = resolve_round(
            &pts,
            &p,
            &tx,
            InterferenceMode::CellAggregate { near_radius: 4.0 },
            Some(&grid),
        );
        let disagreements = exact
            .decoded_from
            .iter()
            .zip(&agg.decoded_from)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            disagreements, 0,
            "cell aggregation flipped {disagreements} decode decisions"
        );
    }

    // The reference replication of the oracle's cell partition uses a
    // HashMap on purpose: only *aggregate totals* are compared, so order
    // cannot matter here (clippy.toml bans the type workspace-wide).
    #[allow(clippy::disallowed_types)]
    #[test]
    fn cell_aggregate_interference_error_is_small() {
        // Compare total received power (signal sums) between exact and
        // aggregated far fields at a probe receiver.
        let pts: Vec<Point2> = (0..300)
            .map(|i| Point2::new((i % 30) as f64 * 0.7, (i / 30) as f64 * 0.7))
            .collect();
        let p = params();
        let tx: Vec<usize> = (0..300).step_by(4).collect();
        // Replicate the oracle's partition: near cells (centroid within
        // near_radius + diag) exact, far cells one aggregate at the
        // centroid — and compare the resulting TOTAL received power at a
        // probe receiver against the fully exact total.
        let u = 0usize;
        let near_radius = 4.0;
        let cell = 1.0f64;
        let diag = cell * 2.0f64.sqrt();
        let exact_total: f64 = tx
            .iter()
            .filter(|&&t| t != u)
            .map(|&t| p.signal_at(pts[t].distance(&pts[u])))
            .sum();
        let mut cells: std::collections::HashMap<(i64, i64), (f64, f64, Vec<usize>)> =
            Default::default();
        for &t in &tx {
            let key = (
                (pts[t].x / cell).floor() as i64,
                (pts[t].y / cell).floor() as i64,
            );
            let e = cells.entry(key).or_insert((0.0, 0.0, Vec::new()));
            e.0 += pts[t].x;
            e.1 += pts[t].y;
            e.2.push(t);
        }
        let approx_total: f64 = cells
            .values()
            .map(|(x, y, members)| {
                let k = members.len() as f64;
                let c = Point2::new(x / k, y / k);
                let dc = c.distance(&pts[u]);
                if dc > near_radius + diag {
                    k * p.signal_at(dc)
                } else {
                    members
                        .iter()
                        .filter(|&&t| t != u)
                        .map(|&t| p.signal_at(pts[t].distance(&pts[u])))
                        .sum()
                }
            })
            .sum();
        let rel = (approx_total - exact_total).abs() / exact_total.max(1e-12);
        assert!(rel < 0.05, "total received power relative error {rel}");
    }

    #[test]
    #[should_panic]
    fn cell_aggregate_rejects_small_near_radius() {
        let pts = vec![Point2::origin()];
        let grid = GridIndex::build(&pts, 1.0);
        let _ = resolve_round(
            &pts,
            &params(),
            &[0],
            InterferenceMode::CellAggregate { near_radius: 1.0 },
            Some(&grid),
        );
    }

    #[test]
    #[should_panic]
    fn truncated_requires_grid() {
        let pts = vec![Point2::origin()];
        let _ = resolve_round(
            &pts,
            &params(),
            &[0],
            InterferenceMode::Truncated { radius: 2.0 },
            None,
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_transmitter_panics() {
        let pts = vec![Point2::origin()];
        let _ = resolve_round(&pts, &params(), &[3], InterferenceMode::Exact, None);
    }

    #[test]
    fn cell_aggregate_is_deterministic_across_runs() {
        // Regression test: the historical implementation iterated a std
        // `HashMap` of transmitter cells, whose order differs between
        // instances (randomised hasher keys), so the floating-point
        // interference sums — and decode outcomes near the β threshold —
        // could differ between two runs of the same input *in the same
        // process*. Cells are now iterated in sorted-key order; both the
        // decode decisions and the raw power sums must be bit-identical.
        let pts: Vec<Point2> = (0..300)
            .map(|i| {
                let x = (i % 25) as f64 * 0.63 + ((i * 11) % 9) as f64 * 0.041;
                let y = (i / 25) as f64 * 0.63 + ((i * 17) % 13) as f64 * 0.029;
                Point2::new(x, y)
            })
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..300).step_by(4).collect();
        let mode = InterferenceMode::CellAggregate { near_radius: 4.0 };
        let mut a = ReceptionOracle::new();
        let mut b = ReceptionOracle::new();
        let out_a = a.resolve(&pts, &p, &tx, mode, Some(&grid));
        let out_b = b.resolve(&pts, &p, &tx, mode, Some(&grid));
        assert_eq!(out_a, out_b);
        for (u, (x, y)) in a
            .received_power()
            .iter()
            .zip(b.received_power())
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "total power differs at {u}");
        }
    }

    #[test]
    fn grid_native_mode_constructor() {
        assert_eq!(
            InterferenceMode::grid_native(),
            InterferenceMode::GridNative { near_radius: 4.0 }
        );
    }

    #[test]
    fn deterministic_tie_break_lowest_index() {
        // Two transmitters at identical distance from the receiver: the
        // receiver fails (beta >= 1 means equal signals jam each other), but
        // best_idx must still be deterministic; check via a beta=1 boundary
        // where one signal slightly dominates after perturbation.
        let pts = vec![
            Point2::new(-0.4, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
        ];
        let out1 = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        let out2 = resolve_round(&pts, &params(), &[2, 0], InterferenceMode::Exact, None);
        assert_eq!(out1, out2, "outcome independent of transmitter order");
    }
}
