//! The SINR reception oracle: who hears whom in one synchronous round.
//!
//! Given the set `T` of transmitting stations, station `u ∉ T` receives the
//! message of `v ∈ T` iff `SINR(v, u, T) ≥ β` (Equation 1 of the paper).
//! Since `β ≥ 1`, at most one transmitter can be decoded at any receiver —
//! necessarily the one with the strongest received signal — so the oracle
//! computes, per receiver, the total received power and the strongest
//! transmitter, then applies the threshold test.

use sinr_geometry::{GridIndex, MetricPoint};

use crate::params::SinrParams;

/// How interference sums are evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterferenceMode {
    /// Exact evaluation of Equation (1): every transmitter contributes to
    /// every receiver. Cost `O(|T|·n)` per round.
    Exact,
    /// Transmitters farther than `radius` from a receiver are ignored.
    ///
    /// For bounded-density inputs the neglected far-field interference is
    /// `O(density · radius^{γ−α})`, vanishing as `radius` grows because
    /// α > γ. Reception decisions are slightly *optimistic* compared to
    /// [`InterferenceMode::Exact`]; use only for large-scale sweeps after
    /// checking agreement (see the `truncation` tests and the criterion
    /// bench `interference`).
    Truncated {
        /// Interference cut-off radius (must exceed the communication range 1).
        radius: f64,
    },
    /// Far-field interference is aggregated per grid cell (a one-level
    /// multipole approximation): transmitters within `near_radius` of a
    /// receiver contribute exactly; farther transmitters contribute
    /// `P·d(u, cell centre)^{−α}` through their cell's aggregate.
    ///
    /// The strongest (decodable) transmitter is always within the
    /// communication range 1 < `near_radius`, so decode *candidates* are
    /// exact and only the interference tail is approximated. With cell side
    /// `g` and `d ≥ near_radius`, each far contribution carries a relative
    /// error ≤ `(1 − g·√2/(2d))^{−α} − 1 ≈ α·g·√2/(2·near_radius)` — a few
    /// percent at the defaults (`g = 1`, `near_radius = 4`). Unlike
    /// [`InterferenceMode::Truncated`] the tail is *estimated*, not
    /// dropped, so errors do not systematically favour reception.
    ///
    /// Cost: `O(|T| + n·#cells + near pairs)` instead of `O(|T|·n)`.
    CellAggregate {
        /// Exact-evaluation radius (must be at least 2: range 1 plus one
        /// cell diagonal of slack).
        near_radius: f64,
    },
}

/// Outcome of resolving one round of transmissions.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// `decoded_from[u] = Some(v)` iff station `u` successfully received the
    /// message transmitted by station `v` this round. Transmitters never
    /// decode (half-duplex): `decoded_from[u] = None` for `u ∈ T`.
    pub decoded_from: Vec<Option<usize>>,
    /// Number of transmitters this round.
    pub num_transmitters: usize,
}

impl RoundOutcome {
    /// Number of stations that decoded a message this round.
    pub fn num_receivers(&self) -> usize {
        self.decoded_from.iter().filter(|d| d.is_some()).count()
    }
}

/// Resolves one round: which stations decode which transmitter.
///
/// `transmitters` is the set `T` (indices into `points`, duplicates not
/// allowed). `grid` is required for [`InterferenceMode::Truncated`] and
/// ignored for exact evaluation.
///
/// # Panics
///
/// Panics if a transmitter index is out of range, if `Truncated` mode is
/// requested without a grid, or if the truncation radius is below the
/// communication range 1 (which would corrupt even interference-free
/// receptions).
pub fn resolve_round<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    mode: InterferenceMode,
    grid: Option<&GridIndex>,
) -> RoundOutcome {
    let n = points.len();
    let mut is_tx = vec![false; n];
    for &t in transmitters {
        assert!(t < n, "transmitter index {t} out of range (n = {n})");
        is_tx[t] = true;
    }

    // Accumulate, per station, the total received power and the strongest
    // transmitter (ties broken towards the lower index, deterministically).
    let mut total = vec![0.0f64; n];
    let mut best_pow = vec![0.0f64; n];
    let mut best_idx = vec![usize::MAX; n];

    match mode {
        InterferenceMode::Exact => {
            for &t in transmitters {
                let tp = points[t];
                for (u, pu) in points.iter().enumerate() {
                    if u == t {
                        continue;
                    }
                    let s = params.signal_at(tp.distance(pu));
                    total[u] += s;
                    if s > best_pow[u] {
                        best_pow[u] = s;
                        best_idx[u] = t;
                    }
                }
            }
        }
        InterferenceMode::Truncated { radius } => {
            assert!(
                radius >= params.range(),
                "truncation radius {radius} must be at least the communication range 1"
            );
            let grid = grid.expect("Truncated interference mode requires a grid index");
            for &t in transmitters {
                let tp = points[t];
                for u in grid.ball(points, tp, radius) {
                    if u == t {
                        continue;
                    }
                    let s = params.signal_at(tp.distance(&points[u]));
                    total[u] += s;
                    if s > best_pow[u] {
                        best_pow[u] = s;
                        best_idx[u] = t;
                    }
                }
            }
        }
        InterferenceMode::CellAggregate { near_radius } => {
            assert!(
                near_radius >= 2.0,
                "near_radius {near_radius} must be at least 2 (range 1 plus cell slack)"
            );
            let grid = grid.expect("CellAggregate interference mode requires a grid index");
            let cell = grid.cell_side();
            // Every cell member lies within one cell diagonal of the
            // transmitter centroid.
            let diag = cell * (P::AXES as f64).sqrt();

            // Bucket transmitters by cell; keep members and centroid.
            struct TxCell {
                centroid: [f64; 3],
                members: Vec<usize>,
            }
            let mut cells: std::collections::HashMap<[i64; 3], TxCell> =
                std::collections::HashMap::new();
            for &t in transmitters {
                let tp = &points[t];
                let mut key = [0i64; 3];
                for (axis, slot) in key.iter_mut().enumerate().take(P::AXES) {
                    *slot = (tp.coord(axis) / cell).floor() as i64;
                }
                let e = cells.entry(key).or_insert(TxCell {
                    centroid: [0.0; 3],
                    members: Vec::new(),
                });
                for axis in 0..P::AXES {
                    e.centroid[axis] += tp.coord(axis);
                }
                e.members.push(t);
            }
            let cells: Vec<TxCell> = cells
                .into_values()
                .map(|mut c| {
                    let k = c.members.len() as f64;
                    for v in &mut c.centroid {
                        *v /= k;
                    }
                    c
                })
                .collect();

            // Per receiver: near cells exactly (any decodable transmitter
            // sits at distance <= 1 < near_radius, so decode candidates are
            // always in the exact branch), far cells as one aggregate.
            for (u, pu) in points.iter().enumerate() {
                for c in &cells {
                    let mut d2 = 0.0;
                    for axis in 0..P::AXES {
                        let dd = pu.coord(axis) - c.centroid[axis];
                        d2 += dd * dd;
                    }
                    let dc = d2.sqrt();
                    if dc > near_radius + diag {
                        // All members are farther than near_radius from u.
                        total[u] += c.members.len() as f64 * params.signal_at(dc);
                    } else {
                        for &t in &c.members {
                            if t == u {
                                continue;
                            }
                            let s = params.signal_at(points[t].distance(pu));
                            total[u] += s;
                            if s > best_pow[u] {
                                best_pow[u] = s;
                                best_idx[u] = t;
                            }
                        }
                    }
                }
            }
        }
    }

    let decoded_from = (0..n)
        .map(|u| {
            if is_tx[u] || best_idx[u] == usize::MAX {
                return None;
            }
            let interference = total[u] - best_pow[u];
            if params.decodable(best_pow[u], interference) {
                Some(best_idx[u])
            } else {
                None
            }
        })
        .collect();

    RoundOutcome {
        decoded_from,
        num_transmitters: transmitters.len(),
    }
}

/// Interference at station `u` from transmitter set `T`, excluding the
/// station nearest to `u` among `T` (the paper's definition of `I_u`,
/// Section 2). Exact evaluation.
pub fn interference_at<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    u: usize,
) -> f64 {
    let nearest = transmitters
        .iter()
        .copied()
        .filter(|&t| t != u)
        .min_by(|&a, &b| {
            points[a]
                .distance(&points[u])
                .total_cmp(&points[b].distance(&points[u]))
        });
    let Some(nearest) = nearest else { return 0.0 };
    transmitters
        .iter()
        .copied()
        .filter(|&t| t != u && t != nearest)
        .map(|t| params.signal_at(points[t].distance(&points[u])))
        .sum()
}

/// Total received signal power at station `u` from all of `transmitters`
/// (the quantity `S_v` of Section 3.4, used by Facts 9–10).
pub fn total_signal_at<P: MetricPoint>(
    points: &[P],
    params: &SinrParams,
    transmitters: &[usize],
    u: usize,
) -> f64 {
    transmitters
        .iter()
        .copied()
        .filter(|&t| t != u)
        .map(|t| params.signal_at(points[t].distance(&points[u])))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    #[test]
    fn lone_transmitter_reaches_range_one() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),   // exactly at range
            Point2::new(1.001, 0.0), // just beyond
        ];
        let out = resolve_round(&pts, &params(), &[0], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0));
        assert_eq!(out.decoded_from[2], None);
        assert_eq!(out.decoded_from[0], None, "transmitter is half-duplex");
        assert_eq!(out.num_transmitters, 1);
        assert_eq!(out.num_receivers(), 1);
    }

    #[test]
    fn two_transmitters_jam_midpoint() {
        // Symmetric transmitters: the receiver in the middle sees SINR =
        // S/(N+S) < 1 <= beta, so it decodes nothing.
        let pts = vec![
            Point2::new(-0.5, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
        ];
        let out = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], None);
    }

    #[test]
    fn near_transmitter_beats_far_interference() {
        // One transmitter very close, another far: the close one decodes.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.1, 0.0),
            Point2::new(10.0, 0.0),
        ];
        let out = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        assert_eq!(out.decoded_from[1], Some(0));
    }

    #[test]
    fn no_transmitters_no_receptions() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let out = resolve_round(&pts, &params(), &[], InterferenceMode::Exact, None);
        assert!(out.decoded_from.iter().all(Option::is_none));
        assert_eq!(out.num_transmitters, 0);
    }

    #[test]
    fn all_transmit_nobody_receives() {
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let tx: Vec<usize> = (0..5).collect();
        let out = resolve_round(&pts, &params(), &tx, InterferenceMode::Exact, None);
        assert!(out.decoded_from.iter().all(Option::is_none));
    }

    #[test]
    fn interference_at_excludes_nearest() {
        let pts = vec![
            Point2::new(0.0, 0.0), // u
            Point2::new(0.5, 0.0), // nearest transmitter
            Point2::new(2.0, 0.0), // other transmitter
        ];
        let p = params();
        let i = interference_at(&pts, &p, &[1, 2], 0);
        assert!((i - p.signal_at(2.0)).abs() < 1e-12);
        assert_eq!(interference_at(&pts, &p, &[], 0), 0.0);
        assert_eq!(interference_at(&pts, &p, &[0], 0), 0.0, "self excluded");
    }

    #[test]
    fn total_signal_sums_everything() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(2.0, 0.0),
        ];
        let p = params();
        let s = total_signal_at(&pts, &p, &[1, 2], 0);
        assert!((s - (p.signal_at(0.5) + p.signal_at(2.0))).abs() < 1e-12);
    }

    #[test]
    fn truncated_matches_exact_when_radius_covers_all() {
        let pts: Vec<Point2> = (0..30)
            .map(|i| Point2::new((i % 6) as f64 * 0.4, (i / 6) as f64 * 0.4))
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx = vec![0, 7, 13, 22];
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &p,
            &tx,
            InterferenceMode::Truncated { radius: 100.0 },
            Some(&grid),
        );
        assert_eq!(exact, trunc);
    }

    #[test]
    fn truncated_is_optimistic() {
        // A far jammer is ignored by the truncated model, so a marginal
        // reception succeeds there but fails exactly.
        let p = SinrParams::builder().beta(1.0).eps(0.5).build(2.0).unwrap();
        let pts = vec![
            Point2::new(0.0, 0.0),   // tx
            Point2::new(0.999, 0.0), // marginal receiver
            Point2::new(3.0, 0.0),   // jammer outside truncation radius 1.5
        ];
        let grid = GridIndex::build(&pts, 1.0);
        let exact = resolve_round(&pts, &p, &[0, 2], InterferenceMode::Exact, None);
        let trunc = resolve_round(
            &pts,
            &p,
            &[0, 2],
            InterferenceMode::Truncated { radius: 1.5 },
            Some(&grid),
        );
        assert_eq!(exact.decoded_from[1], None);
        assert_eq!(trunc.decoded_from[1], Some(0));
    }

    #[test]
    fn cell_aggregate_matches_exact_decisions_on_spread_network() {
        // Random-ish spread-out network; decode decisions must match the
        // exact oracle (the far-field approximation only perturbs the
        // interference tail, a few percent at most).
        let pts: Vec<Point2> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 * 0.9 + ((i * 7) % 5) as f64 * 0.11;
                let y = (i / 20) as f64 * 0.9 + ((i * 13) % 7) as f64 * 0.07;
                Point2::new(x, y)
            })
            .collect();
        let grid = GridIndex::build(&pts, 1.0);
        let p = params();
        let tx: Vec<usize> = (0..200).step_by(9).collect();
        let exact = resolve_round(&pts, &p, &tx, InterferenceMode::Exact, None);
        let agg = resolve_round(
            &pts,
            &p,
            &tx,
            InterferenceMode::CellAggregate { near_radius: 4.0 },
            Some(&grid),
        );
        let disagreements = exact
            .decoded_from
            .iter()
            .zip(&agg.decoded_from)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            disagreements, 0,
            "cell aggregation flipped {disagreements} decode decisions"
        );
    }

    #[test]
    fn cell_aggregate_interference_error_is_small() {
        // Compare total received power (signal sums) between exact and
        // aggregated far fields at a probe receiver.
        let pts: Vec<Point2> = (0..300)
            .map(|i| Point2::new((i % 30) as f64 * 0.7, (i / 30) as f64 * 0.7))
            .collect();
        let p = params();
        let tx: Vec<usize> = (0..300).step_by(4).collect();
        // Replicate the oracle's partition: near cells (centroid within
        // near_radius + diag) exact, far cells one aggregate at the
        // centroid — and compare the resulting TOTAL received power at a
        // probe receiver against the fully exact total.
        let u = 0usize;
        let near_radius = 4.0;
        let cell = 1.0f64;
        let diag = cell * 2.0f64.sqrt();
        let exact_total: f64 = tx
            .iter()
            .filter(|&&t| t != u)
            .map(|&t| p.signal_at(pts[t].distance(&pts[u])))
            .sum();
        let mut cells: std::collections::HashMap<(i64, i64), (f64, f64, Vec<usize>)> =
            Default::default();
        for &t in &tx {
            let key = (
                (pts[t].x / cell).floor() as i64,
                (pts[t].y / cell).floor() as i64,
            );
            let e = cells.entry(key).or_insert((0.0, 0.0, Vec::new()));
            e.0 += pts[t].x;
            e.1 += pts[t].y;
            e.2.push(t);
        }
        let approx_total: f64 = cells
            .values()
            .map(|(x, y, members)| {
                let k = members.len() as f64;
                let c = Point2::new(x / k, y / k);
                let dc = c.distance(&pts[u]);
                if dc > near_radius + diag {
                    k * p.signal_at(dc)
                } else {
                    members
                        .iter()
                        .filter(|&&t| t != u)
                        .map(|&t| p.signal_at(pts[t].distance(&pts[u])))
                        .sum()
                }
            })
            .sum();
        let rel = (approx_total - exact_total).abs() / exact_total.max(1e-12);
        assert!(rel < 0.05, "total received power relative error {rel}");
    }

    #[test]
    #[should_panic]
    fn cell_aggregate_rejects_small_near_radius() {
        let pts = vec![Point2::origin()];
        let grid = GridIndex::build(&pts, 1.0);
        let _ = resolve_round(
            &pts,
            &params(),
            &[0],
            InterferenceMode::CellAggregate { near_radius: 1.0 },
            Some(&grid),
        );
    }

    #[test]
    #[should_panic]
    fn truncated_requires_grid() {
        let pts = vec![Point2::origin()];
        let _ = resolve_round(
            &pts,
            &params(),
            &[0],
            InterferenceMode::Truncated { radius: 2.0 },
            None,
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_transmitter_panics() {
        let pts = vec![Point2::origin()];
        let _ = resolve_round(&pts, &params(), &[3], InterferenceMode::Exact, None);
    }

    #[test]
    fn deterministic_tie_break_lowest_index() {
        // Two transmitters at identical distance from the receiver: the
        // receiver fails (beta >= 1 means equal signals jam each other), but
        // best_idx must still be deterministic; check via a beta=1 boundary
        // where one signal slightly dominates after perturbation.
        let pts = vec![
            Point2::new(-0.4, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
        ];
        let out1 = resolve_round(&pts, &params(), &[0, 2], InterferenceMode::Exact, None);
        let out2 = resolve_round(&pts, &params(), &[2, 0], InterferenceMode::Exact, None);
        assert_eq!(out1, out2, "outcome independent of transmitter order");
    }
}
