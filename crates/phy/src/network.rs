//! A deployed network: station positions bundled with SINR parameters and a
//! spatial index, plus cached derived structure (communication graph).

use sinr_geometry::{GridIndex, MetricPoint, RepairPolicy};

use crate::commgraph::CommGraph;
use crate::oracle::ReceptionOracle;
use crate::params::{ParamError, SinrParams};
use crate::pool::KernelPool;
use crate::reception::{resolve_round, InterferenceMode, RoundOutcome};

/// A wireless network instance: positions + model parameters.
///
/// This is the object every layer above the physical model works with. It
/// owns the spatial index and lazily exposes the communication graph.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{Network, SinrParams};
///
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.4, 0.0), Point2::new(0.8, 0.0)];
/// let net = Network::new(pts, SinrParams::default_plane())?;
/// assert_eq!(net.len(), 3);
/// assert!(net.comm_graph().is_connected());
/// let out = net.resolve(&[0]);
/// assert_eq!(out.decoded_from[1], Some(0));
/// # Ok::<(), sinr_phy::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network<P: MetricPoint> {
    points: Vec<P>,
    /// Station liveness: index-stable tombstones for dynamic populations
    /// (all `true` for static networks). Dead stations keep their index,
    /// position slot and report rows, but are invisible to the spatial
    /// index and the communication graph.
    alive: Vec<bool>,
    /// Number of live stations.
    live: usize,
    params: SinrParams,
    grid: GridIndex,
    comm_graph: CommGraph,
    mode: InterferenceMode,
    /// How epoch boundaries refresh the spatial index and the graph:
    /// incrementally repaired from the collected dirty set, or fully
    /// rebuilt ([`Network::set_repair_policy`]).
    repair_policy: RepairPolicy,
    /// Pre-move position snapshot, diffed bitwise after the mover runs to
    /// recover the dirty set [`Network::update_positions`] feeds the
    /// repair path. Reused every epoch.
    pos_snapshot: Vec<P>,
    /// Per-call dirty-station scratch (movers or churned indices).
    moved_scratch: Vec<usize>,
    /// Stations that changed position or liveness since the last
    /// communication-graph refresh — accumulated across the churn and
    /// mobility steps of an epoch, consumed by
    /// [`Network::refresh_comm_graph`].
    graph_dirty: Vec<usize>,
    /// Whether `graph_dirty` is complete since the last graph refresh
    /// (an always-full update path stops tracking, forcing the next
    /// refresh to rebuild).
    graph_dirty_tracked: bool,
}

/// One batch of population changes applied at an epoch boundary by
/// [`Network::apply_churn`]: stations leaving, dead stations rejoining at
/// a (new) position, and brand-new stations appended at fresh indices.
///
/// The buffers are plain `Vec`s so a churn process can fill one reused
/// delta per epoch without steady-state allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnDelta<P> {
    /// Live stations to tombstone.
    pub kills: Vec<usize>,
    /// Dead stations to revive, with the position they rejoin at.
    pub rejoins: Vec<(usize, P)>,
    /// New stations appended at the end of the index space (each grows
    /// the population by one).
    pub spawns: Vec<P>,
}

impl<P> ChurnDelta<P> {
    /// An empty delta.
    pub fn new() -> Self {
        ChurnDelta {
            kills: Vec::new(),
            rejoins: Vec::new(),
            spawns: Vec::new(),
        }
    }

    /// Empties all three lists, keeping their capacity (the per-epoch
    /// reuse entry point).
    pub fn clear(&mut self) {
        self.kills.clear();
        self.rejoins.clear();
        self.spawns.clear();
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.rejoins.is_empty() && self.spawns.is_empty()
    }

    /// Number of stations joining (rejoins plus spawns).
    pub fn num_joining(&self) -> usize {
        self.rejoins.len() + self.spawns.len()
    }
}

/// Error constructing a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The SINR parameters are invalid for the deployment dimension.
    Params(ParamError),
    /// Two stations are closer than [`SinrParams::MIN_DISTANCE`].
    StationsTooClose {
        /// First station index.
        a: usize,
        /// Second station index.
        b: usize,
    },
    /// The parameter dimension γ does not match the point type's growth
    /// dimension.
    DimensionMismatch {
        /// γ from the parameters.
        params_gamma: f64,
        /// γ of the point type.
        point_gamma: f64,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Params(e) => write!(f, "{e}"),
            NetworkError::StationsTooClose { a, b } => {
                write!(
                    f,
                    "stations {a} and {b} are closer than the minimum separation"
                )
            }
            NetworkError::DimensionMismatch {
                params_gamma,
                point_gamma,
            } => write!(
                f,
                "parameter gamma {params_gamma} does not match point growth dimension {point_gamma}"
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<ParamError> for NetworkError {
    fn from(e: ParamError) -> Self {
        NetworkError::Params(e)
    }
}

impl<P: MetricPoint> Network<P> {
    /// Creates a network, validating parameters and station separation.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::DimensionMismatch`] when `params.gamma()` differs
    ///   from `P::GROWTH_DIMENSION`;
    /// * [`NetworkError::StationsTooClose`] when two stations are within
    ///   [`SinrParams::MIN_DISTANCE`] (co-located stations make signal
    ///   strengths unbounded).
    pub fn new(points: Vec<P>, params: SinrParams) -> Result<Self, NetworkError> {
        if (params.gamma() - P::GROWTH_DIMENSION).abs() > 1e-9 {
            return Err(NetworkError::DimensionMismatch {
                params_gamma: params.gamma(),
                point_gamma: P::GROWTH_DIMENSION,
            });
        }
        let grid = GridIndex::build(&points, 1.0);
        // Separation check via the grid: only same/neighbouring cells matter.
        for (i, p) in points.iter().enumerate() {
            if let Some((j, d)) = grid.nearest(&points, *p, i) {
                if d < SinrParams::MIN_DISTANCE {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    return Err(NetworkError::StationsTooClose { a, b });
                }
            }
        }
        let comm_graph = CommGraph::build(&points, params.comm_radius());
        let live = points.len();
        Ok(Network {
            alive: vec![true; live],
            live,
            points,
            params,
            grid,
            comm_graph,
            mode: InterferenceMode::Exact,
            repair_policy: RepairPolicy::default(),
            pos_snapshot: Vec::new(),
            moved_scratch: Vec::new(),
            graph_dirty: Vec::new(),
            graph_dirty_tracked: true,
        })
    }

    /// Sets how epoch boundaries refresh the spatial index and the
    /// communication graph (default: [`RepairPolicy::Auto`] — incremental
    /// repair below 5% churn, full rebuild above). Whatever the policy,
    /// refreshed structures are bit-identical to fresh builds of the same
    /// deployment; the policy only selects how much work is spent.
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) {
        self.repair_policy = policy;
        // Conservatively rebuild the graph once at the next refresh: the
        // dirty set's completeness predates the policy change.
        self.graph_dirty_tracked = false;
    }

    /// The epoch-refresh policy in use.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.repair_policy
    }

    /// Switches the interference evaluation mode (default: exact).
    ///
    /// # Panics
    ///
    /// Panics if a truncated mode's radius is below the communication range.
    pub fn with_interference_mode(mut self, mode: InterferenceMode) -> Self {
        match mode {
            InterferenceMode::Truncated { radius } => assert!(
                radius >= self.params.range(),
                "truncation radius must cover the communication range"
            ),
            InterferenceMode::CellAggregate { near_radius } => assert!(
                near_radius >= 2.0,
                "cell-aggregate near radius must be at least 2"
            ),
            InterferenceMode::GridNative { near_radius } => assert!(
                near_radius >= 2.0,
                "grid-native near radius must be at least 2"
            ),
            InterferenceMode::Exact => {}
        }
        self.mode = mode;
        self
    }

    /// Number of stations, **including** tombstoned ones — the length of
    /// every index-stable per-station vector (positions, reports,
    /// protocol states). See [`Network::live_count`] for the live
    /// population.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the network has no stations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of live stations (equals [`Network::len`] until churn kills
    /// someone).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Station liveness flags, indexed by station.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether station `v` is live.
    pub fn is_alive(&self, v: usize) -> bool {
        self.alive[v]
    }

    /// Station positions.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Position of station `v`.
    pub fn position(&self, v: usize) -> P {
        self.points[v]
    }

    /// Model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// The spatial index over station positions (cell side 1).
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// The communication graph (edges at distance ≤ 1 − ε) over the
    /// **current** live deployment.
    ///
    /// Static networks build it once; dynamic ones keep it current:
    /// [`Network::apply_churn`] refreshes it as part of the churn
    /// transaction, and the engine calls [`Network::refresh_comm_graph`]
    /// after every mobility epoch, so connectivity-dependent predicates
    /// always see the epoch-refreshed graph (direct
    /// [`Network::update_positions`] callers refresh explicitly).
    pub fn comm_graph(&self) -> &CommGraph {
        &self.comm_graph
    }

    /// Rebuilds the communication graph **in place** over the current
    /// positions and liveness — the epoch refresh path. Reuses the
    /// graph's CSR and spatial-index allocations
    /// ([`CommGraph::rebuild_from`]), so steady-state refreshes perform
    /// no heap allocations, and produces exactly what a fresh
    /// [`CommGraph::build_masked`] over the same deployment would.
    pub fn refresh_comm_graph(&mut self) {
        if self.graph_dirty_tracked && !matches!(self.repair_policy, RepairPolicy::AlwaysFull) {
            // The dirty set is complete since the last refresh: patch only
            // the affected rows ([`CommGraph::repair`] — bit-identical to
            // the rebuild below, and O(dirty neighborhoods) instead of
            // O(n)).
            self.comm_graph.repair(
                &self.graph_dirty,
                &self.points,
                Some(&self.alive),
                self.repair_policy,
            );
        } else {
            self.comm_graph
                .rebuild_from(&self.points, Some(&self.alive));
            self.graph_dirty_tracked = true;
        }
        self.graph_dirty.clear();
    }

    /// Interference evaluation mode in use.
    pub fn interference_mode(&self) -> InterferenceMode {
        self.mode
    }

    /// Mutates the station positions in place and rebuilds the spatial
    /// index over them — the **epoch reindex path** of dynamic
    /// topologies.
    ///
    /// `update` receives the positions to move (the station count is
    /// fixed — protocol state machines are per-station). The grid is
    /// rebuilt through [`GridIndex::rebuild_from`], which reuses every
    /// allocation and reproduces a from-scratch build bit-for-bit (CSR
    /// slot order, SoA store, centroids), so reception oracles keep
    /// resolving rounds against the network with zero steady-state heap
    /// allocations between epochs and reuse-only behavior at boundaries.
    ///
    /// Two static-construction invariants deliberately do **not** re-run
    /// here: the minimum-separation check (mobile stations may drift
    /// arbitrarily close; the SINR kernels clamp distances at
    /// [`SinrParams::MIN_DISTANCE`]) and the communication graph — call
    /// [`Network::refresh_comm_graph`] after moving when the graph must
    /// track the new deployment (the engine does so at every epoch
    /// boundary, so scenario-level connectivity predicates always see
    /// the epoch-refreshed graph).
    /// Under the default [`RepairPolicy::Auto`] the dirty set is
    /// recovered by a bitwise diff against a pre-move snapshot and the
    /// index is patched through [`GridIndex::repair_with_policy`] —
    /// O(points + moved) instead of the full O(n log n) re-sort — and the
    /// movers are banked for the next [`Network::refresh_comm_graph`].
    pub fn update_positions(&mut self, update: impl FnOnce(&mut [P])) {
        if matches!(self.repair_policy, RepairPolicy::AlwaysFull) {
            update(&mut self.points);
            self.grid.rebuild_from_masked(&self.points, &self.alive);
            self.graph_dirty_tracked = false;
            return;
        }
        self.pos_snapshot.clear();
        self.pos_snapshot.extend_from_slice(&self.points);
        update(&mut self.points);
        assert_eq!(
            self.points.len(),
            self.pos_snapshot.len(),
            "position movers must not change the station count"
        );
        self.moved_scratch.clear();
        for (i, (old, new)) in self.pos_snapshot.iter().zip(&self.points).enumerate() {
            if (0..P::AXES).any(|a| old.coord(a).to_bits() != new.coord(a).to_bits()) {
                self.moved_scratch.push(i);
            }
        }
        self.grid.repair_with_policy(
            &self.moved_scratch,
            &self.points,
            Some(&self.alive),
            self.repair_policy,
        );
        self.graph_dirty.extend_from_slice(&self.moved_scratch);
    }

    /// Applies one batch of population churn: kills tombstone their
    /// stations (index-stable — positions, reports and protocol states
    /// keep their rows), rejoins revive dead stations at a new position,
    /// and spawns append brand-new stations at fresh indices. The spatial
    /// index and the communication graph are rebuilt **in place** over
    /// the surviving population (allocation-reusing, bit-identical to
    /// fresh builds of the same deployment — `tests/churn_equivalence.rs`
    /// pins this), so the network is fully consistent when this returns.
    ///
    /// Like [`Network::update_positions`], the static min-separation
    /// check does not re-run: churned arrivals may land arbitrarily close
    /// to a live station ([`SinrParams::MIN_DISTANCE`] clamps signals).
    ///
    /// # Panics
    ///
    /// Panics when a kill names a station that is not live, a rejoin
    /// names one that is not dead, or an index is out of range —
    /// malformed deltas indicate a churn-model bug, not a runtime
    /// condition.
    pub fn apply_churn(&mut self, delta: &ChurnDelta<P>) {
        self.apply_churn_deferred(delta);
        self.refresh_comm_graph();
    }

    /// As [`Network::apply_churn`], but leaves the communication graph
    /// **stale** (the spatial index is still rebuilt — reception is
    /// always consistent). For callers that immediately move stations
    /// afterwards and refresh once — the engine's combined
    /// churn+mobility epoch boundary, which would otherwise pay two
    /// full graph rebuilds. Call [`Network::refresh_comm_graph`] before
    /// consulting the graph.
    pub fn apply_churn_deferred(&mut self, delta: &ChurnDelta<P>) {
        for &k in &delta.kills {
            assert!(
                self.alive[k],
                "churn kill of station {k}, which is not live"
            );
            self.alive[k] = false;
            self.live -= 1;
        }
        for &(r, p) in &delta.rejoins {
            assert!(!self.alive[r], "churn rejoin of station {r}, which is live");
            self.alive[r] = true;
            self.points[r] = p;
            self.live += 1;
        }
        for &p in &delta.spawns {
            self.points.push(p);
            self.alive.push(true);
            self.live += 1;
        }
        if matches!(self.repair_policy, RepairPolicy::AlwaysFull) {
            self.grid.rebuild_from_masked(&self.points, &self.alive);
            self.graph_dirty_tracked = false;
            return;
        }
        // The delta IS the dirty set: kills and rejoins changed liveness,
        // spawns are picked up by index range inside the repair.
        self.moved_scratch.clear();
        self.moved_scratch.extend_from_slice(&delta.kills);
        self.moved_scratch
            .extend(delta.rejoins.iter().map(|&(r, _)| r));
        self.grid.repair_with_policy(
            &self.moved_scratch,
            &self.points,
            Some(&self.alive),
            self.repair_policy,
        );
        self.graph_dirty.extend_from_slice(&self.moved_scratch);
        self.graph_dirty
            .extend(self.points.len() - delta.spawns.len()..self.points.len());
    }

    /// Resolves one round with transmitter set `transmitters` (which must
    /// name live stations).
    ///
    /// One-shot convenience (allocates fresh oracle state per call). Round
    /// loops should hold a [`ReceptionOracle`] from
    /// [`Network::new_oracle`] and call [`Network::resolve_with`] instead.
    pub fn resolve(&self, transmitters: &[usize]) -> RoundOutcome {
        let mut out = resolve_round(
            &self.points,
            &self.params,
            transmitters,
            self.mode,
            Some(&self.grid),
        );
        self.mask_dead(&mut out);
        out
    }

    /// Tombstoned stations neither transmit nor receive. The grid-backed
    /// kernels never see them (the masked index holds no slot for them);
    /// the exact kernel iterates every receiver row, so its decode
    /// entries for dead stations are cleared here — keeping
    /// [`RoundOutcome`] identical across interference modes on churned
    /// populations. No-op (branch only) while everyone is live.
    fn mask_dead(&self, out: &mut RoundOutcome) {
        if self.live == self.len() {
            return;
        }
        debug_assert!(
            out.decoded_from.len() == self.len(),
            "outcome covers the station range"
        );
        for (d, &a) in out.decoded_from.iter_mut().zip(&self.alive) {
            if !a {
                *d = None;
            }
        }
    }

    /// A reception oracle pre-sized for this network, for use with
    /// [`Network::resolve_with`].
    pub fn new_oracle(&self) -> ReceptionOracle {
        ReceptionOracle::for_stations(self.len())
    }

    /// Resolves one round into `out`, reusing `oracle`'s scratch buffers —
    /// zero heap allocations in steady state. Results are identical to
    /// [`Network::resolve`].
    pub fn resolve_with(
        &self,
        oracle: &mut ReceptionOracle,
        transmitters: &[usize],
        out: &mut RoundOutcome,
    ) {
        oracle.resolve_into(
            &self.points,
            &self.params,
            transmitters,
            self.mode,
            Some(&self.grid),
            out,
        );
        self.mask_dead(out);
    }

    /// As [`Network::resolve_with`], sharding the accumulate stage of the
    /// round across `pool`'s worker threads. Results are bitwise
    /// identical to the serial path at any thread count (the pool's
    /// determinism contract).
    pub fn resolve_with_pool(
        &self,
        oracle: &mut ReceptionOracle,
        pool: &mut KernelPool,
        transmitters: &[usize],
        out: &mut RoundOutcome,
    ) {
        oracle.resolve_into_with(
            &self.points,
            &self.params,
            transmitters,
            self.mode,
            Some(&self.grid),
            pool,
            out,
        );
        self.mask_dead(out);
    }

    /// Indices of stations within distance `radius` of station `v`
    /// (including `v` itself).
    pub fn ball_of(&self, v: usize, radius: f64) -> Vec<usize> {
        self.grid.ball_vec(&self.points, self.points[v], radius)
    }

    /// Distance between stations `a` and `b`.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.points[a].distance(&self.points[b])
    }

    /// Granularity `R_s` of the network (max/min communication-graph edge
    /// length), or `None` if there are no edges.
    pub fn granularity(&self) -> Option<f64> {
        self.comm_graph.granularity(&self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::{Point1, Point2};

    #[test]
    fn constructs_and_exposes_structure() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.3, 0.0)];
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.comm_graph().num_edges(), 1);
        assert_eq!(net.distance(0, 1), 0.3);
        assert_eq!(net.ball_of(0, 0.5), vec![0, 1]);
        assert_eq!(net.position(1), Point2::new(0.3, 0.0));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let pts = vec![Point1::new(0.0)];
        let err = Network::new(pts, SinrParams::default_plane()).unwrap_err();
        assert!(matches!(err, NetworkError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("gamma"));
    }

    #[test]
    fn rejects_colocated_stations() {
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)];
        let err = Network::new(pts, SinrParams::default_plane()).unwrap_err();
        assert_eq!(err, NetworkError::StationsTooClose { a: 0, b: 1 });
    }

    #[test]
    fn resolve_round_through_network() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let out = net.resolve(&[0]);
        assert_eq!(out.decoded_from[1], Some(0));
    }

    #[test]
    fn truncated_mode_roundtrip() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let net = Network::new(pts, SinrParams::default_plane())
            .unwrap()
            .with_interference_mode(InterferenceMode::Truncated { radius: 3.0 });
        assert_eq!(
            net.interference_mode(),
            InterferenceMode::Truncated { radius: 3.0 }
        );
        let out = net.resolve(&[0]);
        assert_eq!(out.decoded_from[1], Some(0));
    }

    #[test]
    #[should_panic]
    fn truncation_radius_below_range_panics() {
        let pts = vec![Point2::origin()];
        let _ = Network::new(pts, SinrParams::default_plane())
            .unwrap()
            .with_interference_mode(InterferenceMode::Truncated { radius: 0.5 });
    }

    #[test]
    fn update_positions_rebuilds_the_index_in_place() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(3.0, 0.0),
        ];
        let mut net = Network::new(pts, SinrParams::default_plane()).unwrap();
        assert_eq!(net.resolve(&[0]).decoded_from[1], Some(0));
        // Move station 1 out of range and station 2 next to the source.
        net.update_positions(|pts| {
            pts[1] = Point2::new(5.0, 0.0);
            pts[2] = Point2::new(0.5, 0.0);
        });
        assert_eq!(net.position(1), Point2::new(5.0, 0.0));
        let out = net.resolve(&[0]);
        assert_eq!(out.decoded_from[1], None);
        assert_eq!(out.decoded_from[2], Some(0));
        // The rebuilt index matches a from-scratch build over the moved
        // points.
        assert_eq!(*net.grid(), GridIndex::build(net.points(), 1.0));
    }

    #[test]
    fn apply_churn_kills_rejoins_and_spawns() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(1.0, 0.0),
        ];
        let mut net = Network::new(pts, SinrParams::default_plane()).unwrap();
        assert_eq!(net.live_count(), 3);

        // Kill station 1: the path graph loses its middle vertex.
        let mut delta = ChurnDelta::new();
        delta.kills.push(1);
        net.apply_churn(&delta);
        assert_eq!(net.len(), 3);
        assert_eq!(net.live_count(), 2);
        assert!(!net.is_alive(1));
        assert!(!net.comm_graph().is_connected(), "kill cut the path");
        // A dead station neither receives nor blocks: 0's transmission
        // reaches nobody in range.
        let out = net.resolve(&[0]);
        assert_eq!(out.decoded_from[1], None, "dead stations receive nothing");

        // Rejoin station 1 next to station 0, spawn a fourth station.
        delta.clear();
        delta.rejoins.push((1, Point2::new(0.5, 0.0)));
        delta.spawns.push(Point2::new(1.4, 0.0));
        net.apply_churn(&delta);
        assert_eq!(net.len(), 4);
        assert_eq!(net.live_count(), 4);
        assert_eq!(net.position(1), Point2::new(0.5, 0.0));
        assert!(net.is_alive(3));
        assert!(net.comm_graph().is_connected(), "rejoin + spawn reconnect");
        // Rebuilt structures match fresh builds over the same deployment.
        assert_eq!(
            *net.grid(),
            sinr_geometry::GridIndex::build_masked(net.points(), net.alive(), 1.0)
        );
        assert_eq!(
            *net.comm_graph(),
            CommGraph::build_masked(net.points(), net.alive(), net.params().comm_radius())
        );
    }

    #[test]
    #[should_panic]
    fn churn_kill_of_dead_station_panics() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let mut net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let mut delta = ChurnDelta::new();
        delta.kills.push(1);
        net.apply_churn(&delta);
        net.apply_churn(&delta); // 1 is already dead
    }

    #[test]
    fn refresh_comm_graph_tracks_moved_positions() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(5.0, 0.0),
        ];
        let mut net = Network::new(pts, SinrParams::default_plane()).unwrap();
        assert!(!net.comm_graph().is_connected());
        net.update_positions(|pts| pts[2] = Point2::new(0.9, 0.0));
        net.refresh_comm_graph();
        assert!(
            net.comm_graph().is_connected(),
            "epoch-refreshed graph sees the move"
        );
        assert_eq!(
            *net.comm_graph(),
            CommGraph::build(net.points(), net.params().comm_radius())
        );
    }

    #[test]
    fn incremental_epochs_match_always_full_epochs() {
        // Drive the same epoch sequence (churn + movement + graph
        // refresh) through the incremental and always-full policies: the
        // resulting structures must be bit-identical at every boundary.
        let pts: Vec<Point2> = (0..25)
            .map(|i| Point2::new((i % 5) as f64 * 0.45, (i / 5) as f64 * 0.45))
            .collect();
        let mut inc = Network::new(pts.clone(), SinrParams::default_plane()).unwrap();
        let mut full = Network::new(pts, SinrParams::default_plane()).unwrap();
        inc.set_repair_policy(RepairPolicy::AlwaysIncremental);
        full.set_repair_policy(RepairPolicy::AlwaysFull);
        for step in 0..6usize {
            let mut delta = ChurnDelta::new();
            match step % 3 {
                0 => delta.kills.push(step * 3 % 25),
                1 => delta.spawns.push(Point2::new(2.5 + step as f64 * 0.2, 2.5)),
                _ => delta.rejoins.push((step % 25, Point2::new(0.1, 2.4))),
            }
            let legal = delta.kills.iter().all(|&k| inc.is_alive(k))
                && delta.rejoins.iter().all(|&(r, _)| !inc.is_alive(r));
            if legal {
                inc.apply_churn_deferred(&delta);
                full.apply_churn_deferred(&delta);
            }
            let mover = |pts: &mut [Point2]| {
                for (i, p) in pts.iter_mut().enumerate() {
                    if i % 4 == step % 4 {
                        p.x += 0.21;
                        p.y -= 0.13;
                    }
                }
            };
            inc.update_positions(mover);
            full.update_positions(mover);
            inc.refresh_comm_graph();
            full.refresh_comm_graph();
            assert_eq!(*inc.grid(), *full.grid(), "grid diverged at step {step}");
            assert_eq!(
                *inc.comm_graph(),
                *full.comm_graph(),
                "graph diverged at step {step}"
            );
            assert_eq!(
                *inc.grid(),
                GridIndex::build_masked(inc.points(), inc.alive(), 1.0)
            );
            assert_eq!(
                *inc.comm_graph(),
                CommGraph::build_masked(inc.points(), inc.alive(), inc.params().comm_radius())
            );
        }
    }

    #[test]
    fn granularity_passthrough() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
            Point2::new(0.5, 0.0),
        ];
        // Edges: (0,1) = 0.4, (1,2) = 0.1, (0,2) = 0.5 -> Rs = 0.5/0.1 = 5.
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        assert!((net.granularity().unwrap() - 5.0).abs() < 1e-9);
    }
}
