//! SINR physical layer for ad hoc wireless-network simulation.
//!
//! Implements the Signal-to-Interference-and-Noise-Ratio model of
//! Jurdzinski, Kowalski, Rozanski & Stachowiak, *On the Impact of Geometry
//! on Ad Hoc Communication in Wireless Networks* (PODC 2014), Section 1.1:
//!
//! * [`SinrParams`] — validated model parameters (α, β, N, ε) with the
//!   paper's uniform-power normalisation `P = N·β` (communication range 1);
//! * [`resolve_round`] / [`Network::resolve`] — the exact reception oracle
//!   for Equation (1), plus an optional truncated-interference fast path;
//! * [`CommGraph`] — the communication graph over edges of length ≤ 1 − ε,
//!   with BFS, diameter, connectivity and granularity `R_s`;
//! * [`facts`] — Facts 1–3 of the paper as checkable predicates.
//!
//! # Example
//!
//! ```
//! use sinr_geometry::Point2;
//! use sinr_phy::{Network, SinrParams};
//!
//! // Two stations half a range apart: an isolated transmission is decoded.
//! let net = Network::new(
//!     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
//!     SinrParams::default_plane(),
//! )?;
//! let outcome = net.resolve(&[0]);
//! assert_eq!(outcome.decoded_from[1], Some(0));
//! # Ok::<(), sinr_phy::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod commgraph;
pub mod facts;
pub mod network;
pub mod params;
pub mod reception;

pub use bounds::ParamBounds;
pub use commgraph::{CommGraph, UNREACHABLE};
pub use network::{Network, NetworkError};
pub use params::{ParamError, SinrParams, SinrParamsBuilder};
pub use reception::{
    interference_at, resolve_round, total_signal_at, InterferenceMode, RoundOutcome,
};
