//! SINR physical layer for ad hoc wireless-network simulation.
//!
//! Implements the Signal-to-Interference-and-Noise-Ratio model of
//! Jurdzinski, Kowalski, Rozanski & Stachowiak, *On the Impact of Geometry
//! on Ad Hoc Communication in Wireless Networks* (PODC 2014), Section 1.1:
//!
//! * [`SinrParams`] — validated model parameters (α, β, N, ε) with the
//!   paper's uniform-power normalisation `P = N·β` (communication range 1);
//! * [`resolve_round`] / [`Network::resolve`] — one-shot reception-oracle
//!   calls for Equation (1);
//! * [`ReceptionOracle`] / [`Network::resolve_with`] — the stateful oracle
//!   that resolves rounds through a staged plan → accumulate → decide
//!   pipeline with **zero steady-state allocations**; every round loop in
//!   the workspace (engine, runners, sweeps) builds it once per trial and
//!   reuses it across thousands of rounds;
//! * [`KernelPool`] / [`Network::resolve_with_pool`] — per-trial worker
//!   state sharding the accumulate stage across scoped threads with
//!   bitwise-identical results at any thread count (see *Threads and
//!   batching* below);
//! * [`CommGraph`] — the communication graph over edges of length ≤ 1 − ε,
//!   with BFS, diameter, connectivity and granularity `R_s`. Stored as
//!   flat CSR so dynamic topologies refresh it **in place** per epoch
//!   ([`CommGraph::rebuild_from`], allocation-reusing), with
//!   scratch-reusing connectivity checks ([`GraphScratch`]);
//! * [`Network::apply_churn`] / [`ChurnDelta`] — dynamic **populations**:
//!   index-stable tombstones for stations that leave, rejoins at new
//!   positions, spawns at fresh indices, with the spatial index and the
//!   comm graph rebuilt in place over the survivors;
//! * [`facts`] — Facts 1–3 of the paper as checkable predicates.
//!
//! # Incremental repair
//!
//! Epoch boundaries no longer pay O(n + m) when little changed:
//! [`Network`] tracks which stations moved (bitwise coordinate diff
//! against a per-epoch snapshot) or churned, and routes the delta
//! through [`CommGraph::repair`] — which repairs its owned spatial index
//! via [`sinr_geometry::GridIndex::repair`], rebuilds the CSR rows of
//! the dirty stations by re-query, patches rows a dirty station may
//! have entered or left with one distance test per candidate, and
//! bulk-copies everything else through double-buffered, allocation-free
//! splices. The repaired graph is **bit-identical** to
//! [`CommGraph::build_masked`] over the same population — same row
//! order, ascending neighbours, same edge count — so protocols, BFS
//! tie-breaks and interference sums cannot observe which path ran
//! (`tests/repair_equivalence.rs` pins this across all four
//! interference modes and physics-thread counts 1/2/8). Measured on the
//! `repair/` rows of `BENCH.json`: 18.8×/18.9×/17.5× faster than the
//! full rebuild at n = 10⁴/10⁵/10⁶ with 1% movers (57.9×/35.7×/37.0×
//! at 0.1%); [`RepairPolicy`] (default `Auto`) falls back to the full
//! rebuild past a 5% dirty fraction, where repair degenerates to ~1×.
//!
//! # Choosing an interference mode
//!
//! Four fidelities trade accuracy against per-round cost
//! ([`InterferenceMode`]). Measured cost is mean wall-clock per round on a
//! dense uniform deployment (density 30 per unit square, 2% of stations
//! transmitting, α = 3, one physics thread) from `BENCH.json` (regenerate
//! with `cargo run --release -p sinr-bench --bin microbench`):
//!
//! | mode | n = 1 024 | n = 10 000 | decode | interference tail |
//! |------|----------:|-----------:|--------|-------------------|
//! | `Exact` | 535 µs | 49.0 ms | exact | exact (`O(\|T\|·n)`) |
//! | `CellAggregate{4}` | 560 µs | 42.7 ms | exact | per-receiver cell aggregate, error ≲ α·√2/(2·4) per far term |
//! | `GridNative{4}` | 74 µs | **2.0 ms** | exact | per-receiver-**cell** shared tail, error ≲ α·√2/4 per far term |
//! | `Truncated{4}` | 438 µs | 10.2 ms | exact in range | dropped beyond 4 (systematically optimistic) |
//!
//! Rules of thumb:
//!
//! * **Small experiments / ground truth** — `Exact`. It is also the
//!   default everywhere, keeping historical results bit-for-bit.
//! * **Large sweeps** — [`InterferenceMode::grid_native`] (exact decode
//!   decisions whenever the SINR margin exceeds its tail perturbation; at
//!   n = 10⁴ it is ~20× faster than the pre-oracle exact/cell-aggregate
//!   paths, and the a3 ablation tracks exact round counts within a few
//!   percent). `Scenario::fast_physics()` selects it.
//! * **`CellAggregate`** — when the tail must be estimated per receiver
//!   (tighter error than grid-native) but truncation bias is unacceptable.
//! * **`Truncated`** — only for quick upper-bound sanity sweeps; errors
//!   *favour* reception, unlike the aggregated modes.
//!
//! Determinism: every mode is a pure function of `(points, params, T)` —
//! aggregate cells are iterated in sorted key order (a previous version
//! used a hash map with per-instance random ordering; see
//! `reception::tests::cell_aggregate_is_deterministic_across_runs`).
//!
//! # Threads and batching
//!
//! Rounds resolve through a staged **plan → accumulate → decide**
//! pipeline ([`ReceptionOracle`]), and the accumulate stage — where all
//! the floating-point work lives — both *batches* and *shards*:
//!
//! * **SoA batch kernels.** Cell members are stored in split per-axis
//!   arrays keyed by the grid's CSR slot order
//!   ([`sinr_geometry::PositionStore`]), so the grid-native near loops
//!   run `distance_sq_batch` + [`SinrParams::signal_at_sq_batch`] over
//!   contiguous slices that LLVM autovectorizes — with bitwise identical
//!   per-element arithmetic to the scalar loops they replaced. Measured
//!   single-thread effect on the grid-native kernel (this machine):
//!   2.61 ms → 1.72 ms at n = 10⁴ and 73.6 ms → 49.3 ms at n = 10⁵
//!   (min wall-clock per round, ~1.5×).
//! * **Thread sharding.** A [`KernelPool`] shards the accumulate stage
//!   across scoped worker threads: grid-native by contiguous
//!   receiver-cell ranges (each shard owns a contiguous slot range, with
//!   per-shard scratch), exact and cell-aggregate by contiguous station
//!   ranges; truncated stays serial (its transmitter-major ball walks
//!   would be repeated per shard). Because every per-receiver sum keeps
//!   its serial accumulation order and shard writes are disjoint slices,
//!   **results are bitwise identical at any thread count** — pinned at
//!   the oracle level (`oracle::tests`), the engine level and the full
//!   `RunReport` level (`tests/mode_determinism.rs`).
//!
//! Wire-up: `Engine` owns one pool per trial
//! (`Engine::set_physics_threads`), `Scenario::physics_threads(n)`
//! configures it from the builder, and `Simulation::sweep` divides the
//! machine's thread budget (resolved once per `Simulation`) by the
//! physics thread count, so the auto-sized composition of the two axes
//! stays within the budget. The per-round cost of sharding is one scoped-thread
//! spawn per shard, so physics threads pay off for *few large trials*
//! (≳10⁴ stations, grid-native) while sweep workers remain the right
//! axis for *many small trials*. `BENCH.json` tracks
//! `oracle/grid_native_r4_t{1,2,8}` rows at n = 10⁴/10⁵ so thread
//! scaling is measured on the machine that regenerates it (the committed
//! file was produced on a single-core container, where t8/t1 ≈ 1.0 by
//! construction — regenerate on real hardware for meaningful scaling).
//!
//! # Explicit SIMD
//!
//! Both halves of the SoA hot path now dispatch to explicit `std::arch`
//! kernels at runtime rather than relying on autovectorization:
//! distances through [`sinr_geometry::simd`] and the α ∈ {2, 3, 4}
//! path-loss maps through [`crate::simd`] (AVX2+FMA on x86_64, NEON on
//! aarch64, scalar elsewhere; generic-α `powf` stays scalar). Every
//! lane op is correctly rounded and applied in the scalar association
//! order, so **all tiers are bit-identical per element** — dispatch is
//! a pure speed knob, pinned by `tests/simd_equivalence.rs` and the
//! byte-equal `RunReport` batteries. A run can force the scalar
//! reference path via [`ReceptionOracle::set_dispatch`] /
//! `Scenario::kernel_dispatch` ([`KernelDispatch::ForceScalar`]) or
//! process-wide with `SINR_KERNELS=scalar` (the CI leg).
//!
//! Orthogonally, [`Accumulation::F32`] (default [`Accumulation::F64`])
//! accumulates the grid-native far-field *tail* sum in f32 — decode
//! decisions and the near field stay f64. This is the one knob that
//! **does** change bits: relative tail error stays within ~2⁻²⁴·√k for
//! k far-cell terms (measured ≤ 4×10⁻⁷ at n = 10⁴, see
//! EXPERIMENTS.md), and the `Scenario` builder refuses to combine it
//! with bit-exact reporting (round recording or attached observers).
//!
//! # Example
//!
//! ```
//! use sinr_geometry::Point2;
//! use sinr_phy::{Network, SinrParams};
//!
//! // Two stations half a range apart: an isolated transmission is decoded.
//! let net = Network::new(
//!     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
//!     SinrParams::default_plane(),
//! )?;
//! let outcome = net.resolve(&[0]);
//! assert_eq!(outcome.decoded_from[1], Some(0));
//! # Ok::<(), sinr_phy::NetworkError>(())
//! ```

// `deny` rather than `forbid`: the `simd` module's arch submodules are the
// workspace's only sanctioned `#[allow(unsafe_code)]` sites besides
// sinr-geometry's (sinr-lint pins the allowlist to
// `crates/geometry/src/simd/` and `crates/phy/src/simd/`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod commgraph;
pub mod facts;
pub mod network;
pub mod oracle;
pub mod params;
pub mod pool;
pub mod reception;
pub mod simd;

pub use bounds::ParamBounds;
pub use commgraph::{CommGraph, GraphScratch, UNREACHABLE};
pub use network::{ChurnDelta, Network, NetworkError};
pub use oracle::{Accumulation, ReceptionOracle};
pub use params::{ParamError, SinrParams, SinrParamsBuilder};
pub use pool::KernelPool;
pub use reception::{
    interference_at, resolve_round, total_signal_at, InterferenceMode, RoundOutcome,
};
pub use sinr_geometry::{KernelDispatch, RepairPolicy, SimdTier};
