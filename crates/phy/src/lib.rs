//! SINR physical layer for ad hoc wireless-network simulation.
//!
//! Implements the Signal-to-Interference-and-Noise-Ratio model of
//! Jurdzinski, Kowalski, Rozanski & Stachowiak, *On the Impact of Geometry
//! on Ad Hoc Communication in Wireless Networks* (PODC 2014), Section 1.1:
//!
//! * [`SinrParams`] — validated model parameters (α, β, N, ε) with the
//!   paper's uniform-power normalisation `P = N·β` (communication range 1);
//! * [`resolve_round`] / [`Network::resolve`] — one-shot reception-oracle
//!   calls for Equation (1);
//! * [`ReceptionOracle`] / [`Network::resolve_with`] — the stateful oracle
//!   that resolves rounds with **zero steady-state allocations**; every
//!   round loop in the workspace (engine, runners, sweeps) builds it once
//!   per trial and reuses it across thousands of rounds;
//! * [`CommGraph`] — the communication graph over edges of length ≤ 1 − ε,
//!   with BFS, diameter, connectivity and granularity `R_s`;
//! * [`facts`] — Facts 1–3 of the paper as checkable predicates.
//!
//! # Choosing an interference mode
//!
//! Four fidelities trade accuracy against per-round cost
//! ([`InterferenceMode`]). Measured cost is mean wall-clock per round on a
//! dense uniform deployment (density 30 per unit square, 2% of stations
//! transmitting, α = 3) from `BENCH_phy.json` (regenerate with
//! `cargo run --release -p sinr-bench --bin microbench`):
//!
//! | mode | n = 1 024 | n = 10 000 | decode | interference tail |
//! |------|----------:|-----------:|--------|-------------------|
//! | `Exact` | 547 µs | 47.1 ms | exact | exact (`O(\|T\|·n)`) |
//! | `CellAggregate{4}` | 618 µs | 43.3 ms | exact | per-receiver cell aggregate, error ≲ α·√2/(2·4) per far term |
//! | `GridNative{4}` | 95 µs | **3.0 ms** | exact | per-receiver-**cell** shared tail, error ≲ α·√2/4 per far term |
//! | `Truncated{4}` | 431 µs | 9.3 ms | exact in range | dropped beyond 4 (systematically optimistic) |
//!
//! Rules of thumb:
//!
//! * **Small experiments / ground truth** — `Exact`. It is also the
//!   default everywhere, keeping historical results bit-for-bit.
//! * **Large sweeps** — [`InterferenceMode::grid_native`] (exact decode
//!   decisions whenever the SINR margin exceeds its tail perturbation; at
//!   n = 10⁴ it is ~15× faster than exact and ~14× faster than the
//!   pre-oracle cell-aggregate path, and the a3 ablation tracks exact
//!   round counts within a few percent). `Scenario::fast_physics()`
//!   selects it.
//! * **`CellAggregate`** — when the tail must be estimated per receiver
//!   (tighter error than grid-native) but truncation bias is unacceptable.
//! * **`Truncated`** — only for quick upper-bound sanity sweeps; errors
//!   *favour* reception, unlike the aggregated modes.
//!
//! Determinism: every mode is a pure function of `(points, params, T)` —
//! aggregate cells are iterated in sorted key order (a previous version
//! used a hash map with per-instance random ordering; see
//! `reception::tests::cell_aggregate_is_deterministic_across_runs`).
//!
//! # Example
//!
//! ```
//! use sinr_geometry::Point2;
//! use sinr_phy::{Network, SinrParams};
//!
//! // Two stations half a range apart: an isolated transmission is decoded.
//! let net = Network::new(
//!     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
//!     SinrParams::default_plane(),
//! )?;
//! let outcome = net.resolve(&[0]);
//! assert_eq!(outcome.decoded_from[1], Some(0));
//! # Ok::<(), sinr_phy::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod commgraph;
pub mod facts;
pub mod network;
pub mod oracle;
pub mod params;
pub mod reception;

pub use bounds::ParamBounds;
pub use commgraph::{CommGraph, UNREACHABLE};
pub use network::{Network, NetworkError};
pub use oracle::ReceptionOracle;
pub use params::{ParamError, SinrParams, SinrParamsBuilder};
pub use reception::{
    interference_at, resolve_round, total_signal_at, InterferenceMode, RoundOutcome,
};
