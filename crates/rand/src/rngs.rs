//! Concrete RNGs.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG: xoshiro256++, the algorithm
/// rand 0.8's `SmallRng` uses on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut seed: u64) -> Self {
        // SplitMix64 state expansion (never yields the all-zero state).
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn nonzero_state_from_zero_seed() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!((0..4).any(|_| rng.gen::<u64>() != 0));
    }

    #[test]
    fn nearby_seeds_decorrelated() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
