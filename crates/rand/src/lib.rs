//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace (see README.md). Deterministic, dependency-free, and
//! API-compatible at every call site in the repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

pub use rngs::SmallRng;

/// Low-level source of randomness: a stream of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A value types can be sampled uniformly "at standard" from an RNG
/// (the shim's analogue of `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = (u64::MAX / span) * span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        a + (b - a) * unit_f64(rng)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u64, u32, usize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (e.g. `rng.gen::<u64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (e.g. `rng.gen_range(0.0..1.0)`).
    fn gen_range<Rr: SampleRange>(&mut self, range: Rr) -> Rr::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full RNG state (SplitMix64, as in
    /// rand 0.8's default `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.5..=0.5);
            assert_eq!(g, 0.5);
            let i = rng.gen_range(1..(1u64 << 10));
            assert!((1..1024).contains(&i));
            let j = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&j));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 40_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn integer_sampling_covers_span() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
