//! High-level runners: build a network, drive a protocol, return a report.
//!
//! These are the entry points used by examples, integration tests and the
//! experiment harness. All runners are deterministic in `seed`.

use sinr_geometry::MetricPoint;
use sinr_phy::{Network, NetworkError, SinrParams};
use sinr_runtime::{Engine, Protocol, WakeSchedule};

use crate::baselines::{DaumBroadcastNode, FloodNode, LocalBroadcastNode};
use crate::broadcast::{NoSBroadcastNode, SBroadcastNode};
use crate::consensus::ConsensusNode;
use crate::constants::Constants;
use crate::leader::LeaderNode;
use crate::wakeup::AdhocWakeupNode;

/// Outcome of a broadcast-style run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastReport {
    /// Stations in the network.
    pub n: usize,
    /// Rounds until every station was informed (or the budget, if not).
    pub rounds: u64,
    /// Whether every station was informed within the budget.
    pub completed: bool,
    /// Stations informed at the end.
    pub informed: usize,
    /// Total transmissions across the run (energy proxy).
    pub total_transmissions: u64,
}

fn drive_broadcast<P, Pr>(
    net: Network<P>,
    seed: u64,
    max_rounds: u64,
    make: impl FnMut(usize) -> Pr,
    informed: impl Fn(&Pr) -> bool,
) -> BroadcastReport
where
    P: MetricPoint,
    Pr: Protocol,
{
    let n = net.len();
    let mut eng = Engine::new(net, seed, make);
    let res = eng.run_until(max_rounds, |e| e.nodes().iter().all(&informed));
    let count = eng.nodes().iter().filter(|p| informed(p)).count();
    BroadcastReport {
        n,
        rounds: res.rounds,
        completed: res.completed,
        informed: count,
        total_transmissions: eng.trace().total_transmissions(),
    }
}

/// Runs `NoSBroadcast` (Theorem 1) from `source`.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_nos_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| NoSBroadcastNode::new(id, source, 1, n, consts),
        NoSBroadcastNode::informed,
    ))
}

/// Runs `SBroadcast` (Theorem 2) from `source`.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_s_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| SBroadcastNode::new(id, source, 1, n, consts),
        SBroadcastNode::informed,
    ))
}

/// Runs the Daum-style decay baseline; `granularity` defaults to the
/// network's measured `R_s` when `None` (the baseline assumes it known).
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_daum_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    granularity: Option<f64>,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    let rs = granularity.or_else(|| net.granularity()).unwrap_or(1.0);
    let alpha = params.alpha();
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| DaumBroadcastNode::new(id, source, 1, n, rs, alpha),
        DaumBroadcastNode::informed,
    ))
}

/// Runs fixed-probability flooding with probability `p`.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_flood_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    p: f64,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| FloodNode::new(id, source, 1, p),
        FloodNode::informed,
    ))
}

/// Runs the adaptive local-broadcast-style baseline.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_local_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| LocalBroadcastNode::new(id, source, 1, n, 0.5),
        LocalBroadcastNode::informed,
    ))
}

/// As [`run_s_broadcast`], with an explicit interference-evaluation mode
/// (used by the A3 simulator-fidelity ablation: exact vs. cell-aggregated
/// vs. truncated physics on identical seeds).
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_s_broadcast_in_mode<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    mode: sinr_phy::InterferenceMode,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?.with_interference_mode(mode);
    let n = net.len();
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| SBroadcastNode::new(id, source, 1, n, consts),
        SBroadcastNode::informed,
    ))
}

/// As [`run_s_broadcast`], but the stations are told the population
/// **estimate** `nu` instead of the true `n` (the paper only requires
/// `ν ≥ n` with `ν = O(n^c)`; running time becomes
/// `O(D log ν + log² ν)`).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if `nu` is below the actual station count.
pub fn run_s_broadcast_with_estimate<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    nu: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    assert!(nu >= net.len(), "estimate nu = {nu} below n = {}", net.len());
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| SBroadcastNode::new(id, source, 1, nu, consts),
        SBroadcastNode::informed,
    ))
}

/// As [`run_nos_broadcast`], with a population estimate `nu ≥ n`
/// (running time `O(D log² ν)`).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if `nu` is below the actual station count.
pub fn run_nos_broadcast_with_estimate<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    nu: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    assert!(nu >= net.len(), "estimate nu = {nu} below n = {}", net.len());
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| NoSBroadcastNode::new(id, source, 1, nu, consts),
        NoSBroadcastNode::informed,
    ))
}

/// Outcome of an ad hoc wake-up run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeupReport {
    /// Stations in the network.
    pub n: usize,
    /// Round of the first spontaneous wake-up.
    pub first_wake: u64,
    /// Rounds from the first spontaneous wake-up until all awake
    /// (the paper's running-time accounting), or the budget if incomplete.
    pub rounds_from_first_wake: u64,
    /// Whether every station woke within the budget.
    pub completed: bool,
}

/// Runs the ad hoc wake-up protocol under an adversarial schedule.
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if the schedule wakes nobody (running time would be undefined).
pub fn run_adhoc_wakeup<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    schedule: &WakeSchedule,
    seed: u64,
    max_rounds: u64,
) -> Result<WakeupReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    let first_wake = schedule
        .first_wake(n)
        .expect("wake schedule must wake at least one station");
    let mut eng = Engine::new(net, seed, |id| AdhocWakeupNode::new(id, schedule, n, consts));
    let res = eng.run_until(max_rounds, |e| e.nodes().iter().all(AdhocWakeupNode::awake));
    Ok(WakeupReport {
        n,
        first_wake,
        rounds_from_first_wake: res.rounds.saturating_sub(first_wake),
        completed: res.completed,
    })
}

/// Runs wake-up over an **established coloring**: `coloring` gives each
/// station's backbone color, `initiators` the spontaneously-woken set.
/// Completes in `O(D log n + log² n)` rounds whp
/// (use [`Constants::wakeup_window`] as the budget).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if the vector lengths disagree with the network size.
pub fn run_established_wakeup<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    coloring: &crate::verify::Coloring,
    initiators: &[bool],
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    assert_eq!(coloring.len(), n, "coloring size mismatch");
    assert_eq!(initiators.len(), n, "initiator flags size mismatch");
    Ok(drive_broadcast(
        net,
        seed,
        max_rounds,
        |id| {
            crate::wakeup::EstablishedWakeupNode::new(
                coloring.colors[id],
                initiators[id],
                n,
                consts,
            )
        },
        |nd| nd.signalled,
    ))
}

/// Outcome of a consensus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusReport {
    /// Per-station decisions.
    pub decided: Vec<Option<u64>>,
    /// Whether all stations decided the same value.
    pub agreement: bool,
    /// Whether the common decision equals the minimum input (validity).
    pub valid: bool,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs bitwise consensus on `values` (domain `[0, 2^bits)`); `d_bound`
/// bounds the communication-graph diameter for the per-bit window.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_consensus<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    values: &[u64],
    bits: u32,
    d_bound: u32,
    seed: u64,
) -> Result<ConsensusReport, NetworkError> {
    assert_eq!(points.len(), values.len(), "one value per station");
    let net = Network::new(points, *params)?;
    let n = net.len();
    let window = consts.wakeup_window(n, d_bound);
    let mut eng = Engine::new(net, seed, |id| {
        ConsensusNode::new(values[id], bits, n, consts, window)
    });
    let total = consts.coloring_rounds(n) + bits as u64 * window;
    eng.run_rounds(total);
    let decided: Vec<Option<u64>> = eng.nodes().iter().map(ConsensusNode::decided).collect();
    let agreement = decided.windows(2).all(|w| w[0] == w[1]) && decided[0].is_some();
    let min = values.iter().copied().min().unwrap_or(0);
    let valid = agreement && decided[0] == Some(min);
    Ok(ConsensusReport {
        decided,
        agreement,
        valid,
        rounds: total,
    })
}

/// Outcome of a leader election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderReport {
    /// Indices of stations that declared themselves leader.
    pub leaders: Vec<usize>,
    /// Whether exactly one leader emerged.
    pub unique: bool,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs leader election: random IDs from `{1..n³}` then consensus on IDs.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_leader_election<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    d_bound: u32,
    seed: u64,
) -> Result<LeaderReport, NetworkError> {
    use rand::Rng;
    let net = Network::new(points, *params)?;
    let n = net.len();
    let bits = LeaderNode::id_bits(n);
    let window = consts.wakeup_window(n, d_bound);
    let mut eng = Engine::new(net, seed, |id| {
        // Stream 1 draws IDs; stream 0 drives the protocol inside Engine.
        let mut rng = sinr_runtime::node_rng(seed, id as u64, 1);
        let id_value = rng.gen_range(1..(1u64 << bits));
        LeaderNode::new(id_value, n, consts, window)
    });
    let total = consts.coloring_rounds(n) + bits as u64 * window;
    eng.run_rounds(total);
    let leaders: Vec<usize> = eng
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, nd)| nd.is_leader() == Some(true))
        .map(|(i, _)| i)
        .collect();
    Ok(LeaderReport {
        unique: leaders.len() == 1,
        leaders,
        rounds: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            dissem_factor: 4.0,
            ..Constants::tuned()
        }
    }

    fn path(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect()
    }

    #[test]
    fn nos_runner_completes() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_nos_broadcast(path(5), &params, consts, 0, 1, consts.phase_rounds(5) * 40)
            .unwrap();
        assert!(r.completed);
        assert_eq!(r.informed, 5);
        assert!(r.total_transmissions > 0);
    }

    #[test]
    fn s_runner_completes() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_s_broadcast(path(5), &params, consts, 0, 2, 200_000).unwrap();
        assert!(r.completed);
    }

    #[test]
    fn baseline_runners_complete() {
        let params = SinrParams::default_plane();
        assert!(run_daum_broadcast(path(4), &params, 0, None, 3, 100_000)
            .unwrap()
            .completed);
        assert!(run_flood_broadcast(path(4), &params, 0, 0.3, 3, 100_000)
            .unwrap()
            .completed);
        assert!(run_local_broadcast(path(4), &params, 0, 3, 100_000)
            .unwrap()
            .completed);
    }

    #[test]
    fn incomplete_run_reports_partial_informed() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        // Budget 0: only the source is informed.
        let r = run_nos_broadcast(path(4), &params, consts, 0, 1, 0).unwrap();
        assert!(!r.completed);
        assert_eq!(r.informed, 1);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn estimate_runner_completes_with_inflated_nu() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_s_broadcast_with_estimate(path(5), &params, consts, 0, 40, 2, 2_000_000)
            .unwrap();
        assert!(r.completed);
        let r = run_nos_broadcast_with_estimate(
            path(5),
            &params,
            consts,
            0,
            40,
            2,
            consts.phase_rounds(40) * 60,
        )
        .unwrap();
        assert!(r.completed);
    }

    #[test]
    #[should_panic]
    fn estimate_below_n_panics() {
        let params = SinrParams::default_plane();
        let _ = run_s_broadcast_with_estimate(path(5), &params, fast_consts(), 0, 3, 2, 100);
    }

    #[test]
    fn consensus_runner_agrees_and_validates() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_consensus(path(4), &params, consts, &[6, 2, 5, 7], 3, 4, 5).unwrap();
        assert!(r.agreement, "{:?}", r.decided);
        assert!(r.valid);
        assert_eq!(r.decided[0], Some(2));
    }

    #[test]
    fn leader_runner_unique() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_leader_election(path(4), &params, consts, 4, 6).unwrap();
        assert!(r.unique, "leaders: {:?}", r.leaders);
    }

    #[test]
    fn wakeup_runner_accounts_from_first_wake() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let schedule = WakeSchedule::single(0, 13);
        let r = run_adhoc_wakeup(
            path(4),
            &params,
            consts,
            &schedule,
            7,
            consts.phase_rounds(4) * 40,
        )
        .unwrap();
        assert!(r.completed);
        assert_eq!(r.first_wake, 13);
        assert!(r.rounds_from_first_wake > 0);
    }
}
