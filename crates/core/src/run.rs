//! Legacy high-level runners, now thin **deprecated** wrappers over the
//! [`crate::sim`] builder API.
//!
//! Every `run_*` function delegates to an equivalent [`Scenario`] and
//! reproduces its historical output field-for-field (pinned by
//! `tests/scenario_golden.rs`). Like the builder API, the wrappers resolve
//! every round through a per-trial reusable `sinr_phy::ReceptionOracle`
//! (zero steady-state allocations); pass
//! `sinr_phy::InterferenceMode::grid_native()` to
//! [`run_s_broadcast_in_mode`] — or use `Scenario::fast_physics` — for the
//! fast approximate-tail physics on large deployments. New code should
//! build scenarios directly — they compose (topology specs, interference
//! modes, observers, traces) and sweep seeds in parallel:
//!
//! ```
//! use sinr_core::sim::{ProtocolSpec, Scenario};
//! use sinr_geometry::Point2;
//!
//! let points: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
//! let sim = Scenario::new(points)
//!     .protocol(ProtocolSpec::NoSBroadcast { source: 0 })
//!     .budget(100_000)
//!     .build()?;
//! assert!(sim.run(1)?.completed);
//! # Ok::<(), sinr_core::sim::SimError>(())
//! ```

use sinr_geometry::MetricPoint;
use sinr_phy::{NetworkError, SinrParams};
use sinr_runtime::WakeSchedule;

use crate::constants::Constants;
use crate::sim::{Outcome, ProtocolSpec, RunReport, Scenario, SimError};

/// Outcome of a broadcast-style run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastReport {
    /// Stations in the network.
    pub n: usize,
    /// Rounds until every station was informed (or the budget, if not).
    pub rounds: u64,
    /// Whether every station was informed within the budget.
    pub completed: bool,
    /// Stations informed at the end.
    pub informed: usize,
    /// Total transmissions across the run (energy proxy).
    pub total_transmissions: u64,
}

impl From<&RunReport> for BroadcastReport {
    fn from(r: &RunReport) -> Self {
        BroadcastReport {
            n: r.n,
            rounds: r.rounds,
            completed: r.completed,
            informed: r.informed,
            total_transmissions: r.total_transmissions,
        }
    }
}

/// Runs an explicit-topology scenario and converts sim errors back to the
/// legacy `Result<_, NetworkError>` surface (spec violations panic, as the
/// legacy assertions did).
fn run_legacy<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    spec: ProtocolSpec,
    seed: u64,
    max_rounds: u64,
    mode: Option<sinr_phy::InterferenceMode>,
) -> Result<RunReport, NetworkError> {
    let mut scenario = Scenario::new(points)
        .params(*params)
        .constants(consts)
        .protocol(spec)
        .budget(max_rounds);
    if let Some(m) = mode {
        scenario = scenario.interference_mode(m);
    }
    let sim = scenario.build().expect("protocol and budget set");
    match sim.run(seed) {
        Ok(report) => Ok(report),
        Err(SimError::Network(e)) => Err(e),
        Err(e) => panic!("{e}"),
    }
}

/// Runs `NoSBroadcast` (Theorem 1) from `source`.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::NoSBroadcast { source }).constants(consts).params(params).budget(max_rounds)"
)]
pub fn run_nos_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::NoSBroadcast { source },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Runs `SBroadcast` (Theorem 2) from `source`.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::SBroadcast { source }).constants(consts).params(params).budget(max_rounds)"
)]
pub fn run_s_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::SBroadcast { source },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Runs the Daum-style decay baseline; `granularity` defaults to the
/// network's measured `R_s` when `None` (the baseline assumes it known).
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::DaumBroadcast { source, granularity }).params(params).budget(max_rounds)"
)]
pub fn run_daum_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    granularity: Option<f64>,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        Constants::tuned(),
        ProtocolSpec::DaumBroadcast {
            source,
            granularity,
        },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Runs fixed-probability flooding with probability `p`.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::FloodBroadcast { source, p }).params(params).budget(max_rounds)"
)]
pub fn run_flood_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    p: f64,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        Constants::tuned(),
        ProtocolSpec::FloodBroadcast { source, p },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Runs the adaptive local-broadcast-style baseline.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::LocalBroadcast { source }).params(params).budget(max_rounds)"
)]
pub fn run_local_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        Constants::tuned(),
        ProtocolSpec::LocalBroadcast { source },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// As [`run_s_broadcast`], with an explicit interference-evaluation mode
/// (used by the A3 simulator-fidelity ablation: exact vs. cell-aggregated
/// vs. truncated physics on identical seeds).
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::SBroadcast { source }).interference_mode(mode).budget(max_rounds)"
)]
pub fn run_s_broadcast_in_mode<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    mode: sinr_phy::InterferenceMode,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::SBroadcast { source },
        seed,
        max_rounds,
        Some(mode),
    )?;
    Ok(BroadcastReport::from(&r))
}

/// As [`run_s_broadcast`], but the stations are told the population
/// **estimate** `nu` instead of the true `n` (the paper only requires
/// `ν ≥ n` with `ν = O(n^c)`; running time becomes
/// `O(D log ν + log² ν)`).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if `nu` is below the actual station count.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::SBroadcastWithEstimate { source, nu }).budget(max_rounds)"
)]
pub fn run_s_broadcast_with_estimate<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    nu: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    assert!(
        nu >= points.len(),
        "estimate nu = {nu} below n = {}",
        points.len()
    );
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::SBroadcastWithEstimate { source, nu },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// As [`run_nos_broadcast`], with a population estimate `nu ≥ n`
/// (running time `O(D log² ν)`).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if `nu` is below the actual station count.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::NoSBroadcastWithEstimate { source, nu }).budget(max_rounds)"
)]
pub fn run_nos_broadcast_with_estimate<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    source: usize,
    nu: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    assert!(
        nu >= points.len(),
        "estimate nu = {nu} below n = {}",
        points.len()
    );
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::NoSBroadcastWithEstimate { source, nu },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Outcome of an ad hoc wake-up run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeupReport {
    /// Stations in the network.
    pub n: usize,
    /// Round of the first spontaneous wake-up.
    pub first_wake: u64,
    /// Rounds from the first spontaneous wake-up until all awake
    /// (the paper's running-time accounting), or the budget if incomplete.
    pub rounds_from_first_wake: u64,
    /// Whether every station woke within the budget.
    pub completed: bool,
}

/// Runs the ad hoc wake-up protocol under an adversarial schedule.
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if the schedule wakes nobody (running time would be undefined).
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::AdhocWakeup { schedule }).budget(max_rounds)"
)]
pub fn run_adhoc_wakeup<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    schedule: &WakeSchedule,
    seed: u64,
    max_rounds: u64,
) -> Result<WakeupReport, NetworkError> {
    schedule
        .first_wake(points.len())
        .expect("wake schedule must wake at least one station");
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::AdhocWakeup {
            schedule: schedule.clone(),
        },
        seed,
        max_rounds,
        None,
    )?;
    match r.outcome {
        Outcome::Wakeup {
            first_wake,
            rounds_from_first_wake,
        } => Ok(WakeupReport {
            n: r.n,
            first_wake,
            rounds_from_first_wake,
            completed: r.completed,
        }),
        ref other => unreachable!("wake-up outcome expected, got {other:?}"),
    }
}

/// Runs wake-up over an **established coloring**: `coloring` gives each
/// station's backbone color, `initiators` the spontaneously-woken set.
/// Completes in `O(D log n + log² n)` rounds whp
/// (use [`Constants::wakeup_window`] as the budget).
///
/// # Errors
///
/// Propagates network-construction failures.
///
/// # Panics
///
/// Panics if the vector lengths disagree with the network size.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::EstablishedWakeup { coloring, initiators }).budget(max_rounds)"
)]
pub fn run_established_wakeup<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    coloring: &crate::verify::Coloring,
    initiators: &[bool],
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let n = points.len();
    assert_eq!(coloring.len(), n, "coloring size mismatch");
    assert_eq!(initiators.len(), n, "initiator flags size mismatch");
    let r = run_legacy(
        points,
        params,
        consts,
        ProtocolSpec::EstablishedWakeup {
            coloring: coloring.clone(),
            initiators: initiators.to_vec(),
        },
        seed,
        max_rounds,
        None,
    )?;
    Ok(BroadcastReport::from(&r))
}

/// Outcome of a consensus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusReport {
    /// Per-station decisions.
    pub decided: Vec<Option<u64>>,
    /// Whether all stations decided the same value.
    pub agreement: bool,
    /// Whether the common decision equals the minimum input (validity).
    pub valid: bool,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs bitwise consensus on `values` (domain `[0, 2^bits)`); `d_bound`
/// bounds the communication-graph diameter for the per-bit window.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::Consensus { values, bits, d_bound })"
)]
pub fn run_consensus<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    values: &[u64],
    bits: u32,
    d_bound: u32,
    seed: u64,
) -> Result<ConsensusReport, NetworkError> {
    assert_eq!(points.len(), values.len(), "one value per station");
    let scenario = Scenario::new(points)
        .params(*params)
        .constants(consts)
        .protocol(ProtocolSpec::Consensus {
            values: values.to_vec(),
            bits,
            d_bound,
        });
    let sim = scenario.build().expect("protocol set");
    let r = match sim.run(seed) {
        Ok(report) => report,
        Err(SimError::Network(e)) => return Err(e),
        Err(e) => panic!("{e}"),
    };
    match r.outcome {
        Outcome::Consensus {
            decided,
            agreement,
            valid,
        } => Ok(ConsensusReport {
            decided,
            agreement,
            valid,
            rounds: r.rounds,
        }),
        ref other => unreachable!("consensus outcome expected, got {other:?}"),
    }
}

/// Outcome of a leader election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderReport {
    /// Indices of stations that declared themselves leader.
    pub leaders: Vec<usize>,
    /// Whether exactly one leader emerged.
    pub unique: bool,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs leader election: random IDs from `{1..n³}` then consensus on IDs.
///
/// # Errors
///
/// Propagates network-construction failures.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(points).protocol(ProtocolSpec::LeaderElection { d_bound })"
)]
pub fn run_leader_election<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    d_bound: u32,
    seed: u64,
) -> Result<LeaderReport, NetworkError> {
    let scenario = Scenario::new(points)
        .params(*params)
        .constants(consts)
        .protocol(ProtocolSpec::LeaderElection { d_bound });
    let sim = scenario.build().expect("protocol set");
    let r = match sim.run(seed) {
        Ok(report) => report,
        Err(SimError::Network(e)) => return Err(e),
        Err(e) => panic!("{e}"),
    };
    match r.outcome {
        Outcome::Leader { leaders, unique } => Ok(LeaderReport {
            leaders,
            unique,
            rounds: r.rounds,
        }),
        ref other => unreachable!("leader outcome expected, got {other:?}"),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            dissem_factor: 4.0,
            ..Constants::tuned()
        }
    }

    fn path(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect()
    }

    #[test]
    fn nos_runner_completes() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r =
            run_nos_broadcast(path(5), &params, consts, 0, 1, consts.phase_rounds(5) * 40).unwrap();
        assert!(r.completed);
        assert_eq!(r.informed, 5);
        assert!(r.total_transmissions > 0);
    }

    #[test]
    fn s_runner_completes() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_s_broadcast(path(5), &params, consts, 0, 2, 200_000).unwrap();
        assert!(r.completed);
    }

    #[test]
    fn baseline_runners_complete() {
        let params = SinrParams::default_plane();
        assert!(
            run_daum_broadcast(path(4), &params, 0, None, 3, 100_000)
                .unwrap()
                .completed
        );
        assert!(
            run_flood_broadcast(path(4), &params, 0, 0.3, 3, 100_000)
                .unwrap()
                .completed
        );
        assert!(
            run_local_broadcast(path(4), &params, 0, 3, 100_000)
                .unwrap()
                .completed
        );
    }

    #[test]
    fn incomplete_run_reports_partial_informed() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        // Budget 0: only the source is informed.
        let r = run_nos_broadcast(path(4), &params, consts, 0, 1, 0).unwrap();
        assert!(!r.completed);
        assert_eq!(r.informed, 1);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn estimate_runner_completes_with_inflated_nu() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r =
            run_s_broadcast_with_estimate(path(5), &params, consts, 0, 40, 2, 2_000_000).unwrap();
        assert!(r.completed);
        let r = run_nos_broadcast_with_estimate(
            path(5),
            &params,
            consts,
            0,
            40,
            2,
            consts.phase_rounds(40) * 60,
        )
        .unwrap();
        assert!(r.completed);
    }

    #[test]
    #[should_panic]
    fn estimate_below_n_panics() {
        let params = SinrParams::default_plane();
        let _ = run_s_broadcast_with_estimate(path(5), &params, fast_consts(), 0, 3, 2, 100);
    }

    #[test]
    fn consensus_runner_agrees_and_validates() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_consensus(path(4), &params, consts, &[6, 2, 5, 7], 3, 4, 5).unwrap();
        assert!(r.agreement, "{:?}", r.decided);
        assert!(r.valid);
        assert_eq!(r.decided[0], Some(2));
    }

    #[test]
    fn leader_runner_unique() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let r = run_leader_election(path(4), &params, consts, 4, 6).unwrap();
        assert!(r.unique, "leaders: {:?}", r.leaders);
    }

    #[test]
    fn wakeup_runner_accounts_from_first_wake() {
        let params = SinrParams::default_plane();
        let consts = fast_consts();
        let schedule = WakeSchedule::single(0, 13);
        let r = run_adhoc_wakeup(
            path(4),
            &params,
            consts,
            &schedule,
            7,
            consts.phase_rounds(4) * 40,
        )
        .unwrap();
        assert!(r.completed);
        assert_eq!(r.first_wake, 13);
        assert!(r.rounds_from_first_wake > 0);
    }
}
