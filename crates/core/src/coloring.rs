//! `StabilizeProbability` — the paper's network-coloring procedure
//! (Section 3, Algorithm 1) as a restartable, synchronously-scheduled state
//! machine.
//!
//! Every participating station runs the identical global schedule:
//!
//! ```text
//! for level in 0..num_levels {            // p_v = p_start · 2^level
//!     for rep in 0..c' {
//!         DensityTest block:  c₀·log n rounds, transmit w.p. p_v
//!         Playoff block:      c₂·log n rounds, transmit w.p. p_v·c_ε
//!         if both tests passed -> quit with color p_v (go silent)
//!     }
//! }
//! // schedule exhausted -> color 2·p_max
//! ```
//!
//! A station that quits stays silent for the remaining rounds, so the
//! procedure has a *fixed* length [`Constants::coloring_rounds`] known to
//! every node — this is what keeps `NoSBroadcast` phases globally aligned
//! without any shared clock.
//!
//! Success counting: the pseudocode gates on "received at least `c·log n`
//! messages", so the machine counts *receptions* (the analysis additionally
//! credits a station for hearing itself in Lemma 6; counting receptions only
//! is the stricter reading and empirically satisfies both lemmas — the E2/E3
//! experiments check this).

use rand::rngs::SmallRng;
use sinr_runtime::bernoulli;

use crate::constants::Constants;

/// Which test block the schedule is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    Density,
    Playoff,
}

/// The per-node `StabilizeProbability` state machine.
///
/// Drive it for exactly [`ColoringMachine::total_rounds`] rounds:
/// call [`ColoringMachine::poll_transmit`] then
/// [`ColoringMachine::on_round_end`] once per round. After the schedule
/// completes, [`ColoringMachine::color`] returns the assigned color.
#[derive(Debug, Clone)]
pub struct ColoringMachine {
    consts: Constants,
    n: usize,
    /// Current transmission probability `p_v`.
    p: f64,
    p_max: f64,
    level: u32,
    rep: u32,
    block: Block,
    round_in_block: u64,
    receptions: u64,
    density_passed: bool,
    /// Assigned color once decided.
    color: Option<f64>,
    rounds_run: u64,
    total_rounds: u64,
}

impl ColoringMachine {
    /// Creates a fresh machine for a network of `n` stations.
    pub fn new(n: usize, consts: Constants) -> Self {
        let num_levels = consts.num_levels(n);
        let total_rounds = consts.coloring_rounds(n);
        let mut m = ColoringMachine {
            consts,
            n,
            p: consts.p_start(n),
            p_max: consts.p_max(),
            level: 0,
            rep: 0,
            block: Block::Density,
            round_in_block: 0,
            receptions: 0,
            density_passed: false,
            color: None,
            rounds_run: 0,
            total_rounds,
        };
        if num_levels == 0 {
            // Degenerate schedule: immediately the terminal color.
            m.color = Some(2.0 * m.p_max);
        }
        m
    }

    /// Fixed schedule length in rounds (identical at every node).
    pub fn total_rounds(n: usize, consts: &Constants) -> u64 {
        consts.coloring_rounds(n)
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Whether the schedule has fully elapsed.
    pub fn is_finished(&self) -> bool {
        self.rounds_run >= self.total_rounds
    }

    /// The assigned color: `Some` once the station quits (or the schedule
    /// ends). Colors are from `{p_start·2^i} ∪ {2·p_max}`.
    pub fn color(&self) -> Option<f64> {
        if self.is_finished() {
            Some(self.color.unwrap_or(2.0 * self.p_max))
        } else {
            self.color
        }
    }

    /// Current transmission probability level `p_v` (diagnostics).
    pub fn current_p(&self) -> f64 {
        self.p
    }

    /// Whether the station already quit (went silent).
    pub fn has_quit(&self) -> bool {
        self.color.is_some()
    }

    /// Decide whether to transmit this round.
    ///
    /// Returns `false` forever once the station quit or the schedule ended.
    pub fn poll_transmit(&mut self, rng: &mut SmallRng) -> bool {
        if self.color.is_some() || self.is_finished() {
            return false;
        }
        let prob = match self.block {
            Block::Density => self.p,
            Block::Playoff => self.p * self.consts.c_eps,
        };
        bernoulli(rng, prob)
    }

    /// Advances the schedule by one round; `received` reports whether this
    /// station decoded a message this round.
    ///
    /// # Panics
    ///
    /// Panics if called after the schedule finished (callers must drive the
    /// machine exactly [`ColoringMachine::total_rounds`] times).
    pub fn on_round_end(&mut self, received: bool) {
        assert!(
            self.rounds_run < self.total_rounds,
            "ColoringMachine driven past its schedule"
        );
        self.rounds_run += 1;
        if received {
            self.receptions += 1;
        }
        self.round_in_block += 1;

        let block_len = match self.block {
            Block::Density => self.consts.density_rounds(self.n),
            Block::Playoff => self.consts.playoff_rounds(self.n),
        };
        if self.round_in_block < block_len {
            return;
        }

        // Block boundary: evaluate, then move to the next block.
        match self.block {
            Block::Density => {
                self.density_passed = self.receptions >= self.consts.density_threshold(self.n);
                self.block = Block::Playoff;
            }
            Block::Playoff => {
                let playoff_passed = self.receptions >= self.consts.playoff_threshold(self.n);
                if self.color.is_none() && self.density_passed && playoff_passed {
                    // Line 6: quit with the current color.
                    self.color = Some(self.p);
                }
                self.density_passed = false;
                self.block = Block::Density;
                self.rep += 1;
                if self.rep >= self.consts.c_prime {
                    self.rep = 0;
                    self.level += 1;
                    self.p *= 2.0; // line 7
                }
            }
        }
        self.round_in_block = 0;
        self.receptions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_runtime::node_rng;

    fn consts() -> Constants {
        Constants::tuned()
    }

    #[test]
    fn schedule_length_matches_constants() {
        let c = consts();
        let n = 256;
        let mut m = ColoringMachine::new(n, c);
        let total = ColoringMachine::total_rounds(n, &c);
        assert_eq!(total, c.coloring_rounds(n));
        let mut rng = node_rng(1, 0, 0);
        for _ in 0..total {
            assert!(!m.is_finished());
            let _ = m.poll_transmit(&mut rng);
            m.on_round_end(false);
        }
        assert!(m.is_finished());
        // Never received anything -> never quits -> terminal color 2·p_max.
        assert_eq!(m.color(), Some(2.0 * c.p_max()));
    }

    #[test]
    #[should_panic]
    fn driving_past_schedule_panics() {
        let c = consts();
        let mut m = ColoringMachine::new(4, c);
        let total = ColoringMachine::total_rounds(4, &c);
        for _ in 0..=total {
            m.on_round_end(false);
        }
    }

    #[test]
    fn quits_when_both_tests_pass() {
        let c = consts();
        let n = 64;
        let mut m = ColoringMachine::new(n, c);
        let mut rng = node_rng(2, 0, 0);
        // Feed receptions every round: both tests pass at the first gate.
        let gate_len = c.density_rounds(n) + c.playoff_rounds(n);
        for _ in 0..gate_len {
            let _ = m.poll_transmit(&mut rng);
            m.on_round_end(true);
        }
        assert!(m.has_quit());
        assert_eq!(m.color(), Some(c.p_start(n)), "quit at the first level");
        // Quit stations never transmit again.
        for _ in 0..100 {
            if m.is_finished() {
                break;
            }
            assert!(!m.poll_transmit(&mut rng));
            m.on_round_end(true);
        }
    }

    #[test]
    fn no_quit_without_density_pass() {
        let c = consts();
        let n = 64;
        let mut m = ColoringMachine::new(n, c);
        let mut rng = node_rng(3, 0, 0);
        // Silence during DensityTest, receptions during Playoff: the gate
        // must NOT fire (density test failed).
        let d = c.density_rounds(n);
        let p = c.playoff_rounds(n);
        for _ in 0..d {
            let _ = m.poll_transmit(&mut rng);
            m.on_round_end(false);
        }
        for _ in 0..p {
            let _ = m.poll_transmit(&mut rng);
            m.on_round_end(true);
        }
        assert!(!m.has_quit());
    }

    #[test]
    fn probability_doubles_per_level() {
        let c = consts();
        let n = 128;
        let mut m = ColoringMachine::new(n, c);
        let p0 = m.current_p();
        let mut rng = node_rng(4, 0, 0);
        let level_len = c.c_prime as u64 * (c.density_rounds(n) + c.playoff_rounds(n));
        for _ in 0..level_len {
            let _ = m.poll_transmit(&mut rng);
            m.on_round_end(false);
        }
        assert!((m.current_p() - 2.0 * p0).abs() < 1e-15);
    }

    #[test]
    fn transmission_rate_tracks_p() {
        // At a given level the empirical transmit rate in the Density block
        // approximates p, and in the Playoff block approximates p·c_ε.
        let c = consts();
        let n = 4; // tiny n -> large p_start -> measurable rates
        let mut m = ColoringMachine::new(n, c);
        let mut rng = node_rng(5, 0, 0);
        let d = c.density_rounds(n);
        let p = m.current_p();
        let mut tx = 0;
        for _ in 0..d {
            if m.poll_transmit(&mut rng) {
                tx += 1;
            }
            m.on_round_end(false);
        }
        // d is small; just sanity-check the rate is plausible (p = p_start).
        let rate = tx as f64 / d as f64;
        assert!(rate <= (p * 20.0).min(1.0) + 0.3, "rate {rate} vs p {p}");
    }

    #[test]
    fn degenerate_single_node() {
        let c = consts();
        let m = ColoringMachine::new(1, c);
        // Still a valid machine with a full schedule (p_start clamped).
        assert!(ColoringMachine::total_rounds(1, &c) > 0);
        assert!(!m.has_quit());
    }

    #[test]
    fn color_lattice_membership() {
        // Any quit color must be p_start·2^i; the terminal color 2·p_max.
        let c = consts();
        let n = 256;
        for seed in 0..5u64 {
            let mut m = ColoringMachine::new(n, c);
            let mut rng = node_rng(seed, 0, 0);
            // Random reception pattern.
            let mut i = 0u64;
            while !m.is_finished() {
                let _ = m.poll_transmit(&mut rng);
                m.on_round_end(i % 3 == 0);
                i += 1;
            }
            let color = m.color().unwrap();
            let terminal = 2.0 * c.p_max();
            if (color - terminal).abs() > 1e-15 {
                // must be p_start · 2^i for integer i
                let ratio = color / c.p_start(n);
                let log = ratio.log2();
                assert!(
                    (log - log.round()).abs() < 1e-9,
                    "color {color} off-lattice"
                );
            }
        }
    }
}
