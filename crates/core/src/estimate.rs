//! Online ν-estimation: graceful degradation when the population bound
//! is wrong or goes stale mid-run.
//!
//! The paper's protocols take a trusted estimate `ν ≥ n` (Section 1.1,
//! "Messages and initialization of stations": the algorithms know a
//! polynomial bound on the number of stations). PR 5's churn makes any
//! fixed estimate false mid-run; this module closes that gap with an
//! **online, conservative** estimator driven by the only channel
//! feedback the model grants — decoded messages or silence. Stations
//! have **no carrier sensing**, so the estimator cannot observe
//! collisions directly; what it *can* observe is a **silence run**: a
//! stretch of listening rounds in which nothing was decoded even though
//! the station's neighbourhood should be talking (it is inside an
//! active dissemination burst). Persistent in-burst silence is the
//! model-observable signature of SINR collisions, i.e. of transmission
//! probabilities tuned for a ν far below the effective contention —
//! so the estimator reacts by **raising** ν̂.
//!
//! The estimator is deliberately one-sided (ν̂ only ever grows toward a
//! cap): in the paper's analysis an *over*-estimate costs logarithmic
//! factors in latency/energy while an *under*-estimate breaks the
//! correctness of the coloring-mass arguments. Degrading latency
//! instead of coverage is exactly the trade this subsystem exists to
//! make. When churn invalidates the collected statistics (a topology
//! event that may alter reachability), [`NuEstimator::invalidate`]
//! **backs off the estimate window exponentially** — after heavy churn
//! the estimator demands longer silence runs before reacting, so a
//! churn storm cannot stampede ν̂ to the cap on transient noise.
//!
//! Three protocol arms consume the estimate ([`EstimatingReFloodNode`]
//! and the wrappers over the paper's two broadcasts); all are exposed
//! through `ProtocolSpec::{ReFloodBroadcastEstimate,
//! NoSBroadcastOnlineEstimate, SBroadcastOnlineEstimate}`.

use sinr_runtime::{bernoulli, NodeCtx, Protocol, TopologyChange};

use crate::broadcast::{NMsg, NoSBroadcastNode, SBroadcastNode, SMsg};
use crate::constants::Constants;

/// Expected number of simultaneous transmitters the estimating
/// re-flood aims for in a saturated neighbourhood: per-round
/// transmission probability is `CONTENTION_TARGET / ν̂`. Two is the
/// classic decay/backoff sweet spot — high enough to make progress at
/// the true density, low enough that one doubling of ν̂ halves the
/// collision pressure.
pub const CONTENTION_TARGET: f64 = 2.0;

/// How many silence-window doublings [`NuEstimator::invalidate`] may
/// stack: the window backs off exponentially per invalidation up to
/// `base_window << MAX_WINDOW_BACKOFF`.
const MAX_WINDOW_BACKOFF: u32 = 6;

/// Hard ceiling on the adaptive transmission probability, strictly
/// below 1: a station that always transmits can never listen, and a
/// station that never listens feeds the estimator nothing — with
/// `p = 1` a too-small ν̂ would be a deadlock, not a recoverable
/// stall. Capping at 3/4 guarantees every station listens on a
/// quarter of its active rounds in expectation.
const MAX_TX_PROB: f64 = 0.75;

/// A one-sided online estimate ν̂ of the effective population, driven
/// by decoded-message-or-silence feedback (the model's only channel
/// feedback — no carrier sensing).
///
/// Feed it one [`NuEstimator::observe`] per *listening* round in which
/// neighbourhood traffic is expected; once a full window of consecutive
/// silent rounds accumulates, ν̂ doubles (capped). Decoding anything
/// resets the run — the channel demonstrably works at the current
/// estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NuEstimator {
    /// Current estimate ν̂ (monotone non-decreasing).
    nu: usize,
    /// The initial (floor) estimate.
    nu0: usize,
    /// Upper bound ν̂ never exceeds.
    cap: usize,
    /// Consecutive silent observations that trigger one doubling.
    window: u64,
    /// The window before any churn backoff.
    base_window: u64,
    /// Current silence-run length.
    silent_run: u64,
}

impl NuEstimator {
    /// An estimator starting at `nu0 ≥ 1` that doubles after `window ≥ 1`
    /// consecutive silent observations, up to `cap` (clamped to at least
    /// `nu0`).
    pub fn new(nu0: usize, window: u64, cap: usize) -> Self {
        let nu0 = nu0.max(1);
        NuEstimator {
            nu: nu0,
            nu0,
            cap: cap.max(nu0),
            window: window.max(1),
            base_window: window.max(1),
            silent_run: 0,
        }
    }

    /// The current estimate ν̂.
    pub fn nu(&self) -> usize {
        self.nu
    }

    /// The current silence window (grows under [`NuEstimator::invalidate`]).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records one listening round: `heard` is whether anything was
    /// decoded. A full window of consecutive silence doubles ν̂.
    pub fn observe(&mut self, heard: bool) {
        if heard {
            self.silent_run = 0;
            return;
        }
        self.silent_run += 1;
        if self.silent_run >= self.window {
            self.nu = (self.nu.saturating_mul(2)).min(self.cap);
            self.silent_run = 0;
        }
    }

    /// Churn invalidated the collected statistics: doubles the silence
    /// window (bounded exponential backoff) and discards the current
    /// run, so post-churn transients must persist much longer before
    /// they move ν̂.
    pub fn invalidate(&mut self) {
        let max = self.base_window << MAX_WINDOW_BACKOFF;
        self.window = (self.window.saturating_mul(2)).min(max);
        self.silent_run = 0;
    }

    /// The per-round transmission probability a density-adaptive
    /// protocol should use: `CONTENTION_TARGET / ν̂`, capped strictly
    /// below 1 (see [`MAX_TX_PROB`][self]) so listening rounds — the
    /// estimator's only input — always occur.
    pub fn tx_prob(&self) -> f64 {
        (CONTENTION_TARGET / self.nu as f64).min(MAX_TX_PROB)
    }
}

/// Re-flooding broadcast with an online ν-estimate: burst-based
/// flooding (as [`crate::baselines::ReFloodNode`]) whose per-round
/// transmission probability is `min(1, CONTENTION_TARGET / ν̂)` instead
/// of a fixed `p`.
///
/// The estimator observes exactly the in-burst listening rounds — the
/// node is informed, chose not to transmit, and its burst is active, so
/// its (equally informed, equally active) neighbourhood should be
/// audible. A window of silence in that state is the collision
/// signature of a ν̂ below the true contention: ν̂ doubles, the
/// transmission probability halves, and decodes resume. This is the
/// graceful-degradation arm of the acceptance scenario: under a
/// cut-vertex kill schedule the fixed-ν re-flood keeps colliding and
/// stalls, while this variant pays latency to recover coverage.
#[derive(Debug)]
pub struct EstimatingReFloodNode {
    payload: Option<u64>,
    informed_at: Option<u64>,
    est: NuEstimator,
    /// Rounds of active flooding granted per (re)seed.
    burst: u64,
    /// Rounds of active flooding remaining.
    active_left: u64,
}

impl EstimatingReFloodNode {
    /// Creates the node; bursts last `burst` rounds and the estimate
    /// starts at `nu0` (doubling after an 8-round silence window,
    /// capped at `nu0 · 2¹⁶`).
    ///
    /// # Panics
    ///
    /// Panics unless `nu0 >= 1` and `burst > 0`.
    pub fn new(id: usize, source: usize, payload: u64, nu0: usize, burst: u64) -> Self {
        assert!(nu0 >= 1, "initial estimate must be at least 1, got {nu0}");
        assert!(burst > 0, "re-flood burst must last at least one round");
        let informed = id == source;
        EstimatingReFloodNode {
            payload: informed.then_some(payload),
            informed_at: informed.then_some(0),
            est: NuEstimator::new(nu0, 8, nu0.saturating_mul(1 << 16)),
            burst,
            active_left: if informed { burst } else { 0 },
        }
    }

    /// Whether the node holds the message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// The node's current population estimate ν̂.
    pub fn nu(&self) -> usize {
        self.est.nu()
    }

    /// Grants a fresh flooding burst if the node is informed.
    fn reseed(&mut self) {
        if self.payload.is_some() {
            self.active_left = self.burst;
        }
    }
}

impl Protocol for EstimatingReFloodNode {
    type Msg = u64;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
        if self.active_left == 0 {
            return None;
        }
        let payload = self.payload?;
        bernoulli(ctx.rng, self.est.tx_prob()).then_some(payload)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, tx: bool, rx: Option<&u64>) {
        // In-burst listening rounds feed the estimator: informed, burst
        // active, and not transmitting ourselves (our own transmission
        // would mask the channel).
        if self.payload.is_some() && self.active_left > 0 && !tx {
            self.est.observe(rx.is_some());
        }
        if self.active_left > 0 {
            self.active_left -= 1;
        }
        if let Some(&msg) = rx {
            if self.payload.is_none() {
                self.payload = Some(msg);
                self.informed_at = Some(ctx.round);
                self.active_left = self.burst;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.reseed();
    }

    fn on_topology_change(&mut self, _ctx: &mut NodeCtx<'_>, change: &TopologyChange) {
        if change.may_alter_reachability() {
            self.reseed();
            self.est.invalidate();
        }
    }
}

/// `NoSBroadcast` with an online ν-estimate consulted **at every phase
/// boundary**: the wrapper feeds in-phase listening rounds to a
/// [`NuEstimator`] and, when ν̂ grew, rebuilds the inner schedule for
/// the new estimate via [`NoSBroadcastNode::reestimate`].
///
/// Stations re-estimate individually, so under heavy churn their phase
/// lengths can drift apart — a real (and deliberate) degradation:
/// misaligned phases cost extra phases of latency, but every station's
/// transmission probabilities stay tuned to a ν̂ at or above what it
/// observes, preserving the collision-bound side of the paper's
/// analysis. Degrade latency, not coverage.
#[derive(Debug)]
pub struct EstimatingNoSNode {
    inner: NoSBroadcastNode,
    est: NuEstimator,
}

impl EstimatingNoSNode {
    /// Creates the wrapper; the inner protocol starts with estimate
    /// `nu0 ≥ 1` (which, unlike the fixed-estimate arm, may be *below*
    /// the true population — adapting out of a wrong estimate is the
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if `nu0` is zero.
    pub fn new(id: usize, source: usize, payload: u64, nu0: usize, consts: Constants) -> Self {
        assert!(nu0 >= 1, "initial estimate must be at least 1, got {nu0}");
        EstimatingNoSNode {
            inner: NoSBroadcastNode::new(id, source, payload, nu0, consts),
            est: NuEstimator::new(nu0, 8, nu0.saturating_mul(1 << 16)),
        }
    }

    /// Whether the node holds the broadcast message.
    pub fn informed(&self) -> bool {
        self.inner.informed()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.inner.informed_at()
    }

    /// The node's current population estimate ν̂.
    pub fn nu(&self) -> usize {
        self.est.nu()
    }
}

impl Protocol for EstimatingNoSNode {
    type Msg = NMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<NMsg> {
        // Re-tune at phase boundaries of the *current* schedule, before
        // the inner machine resets for the phase.
        if ctx.round % self.inner.phase_len() == 0 && self.est.nu() != self.inner.estimate() {
            self.inner.reestimate(self.est.nu());
        }
        self.inner.poll_transmit(ctx)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, tx: bool, rx: Option<&NMsg>) {
        if self.inner.informed() && !tx {
            self.est.observe(rx.is_some());
        }
        self.inner.on_round_end(ctx, tx, rx);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn on_topology_change(&mut self, ctx: &mut NodeCtx<'_>, change: &TopologyChange) {
        if change.may_alter_reachability() {
            self.est.invalidate();
        }
        self.inner.on_topology_change(ctx, change);
    }

    fn phase_hint(&self, round: u64) -> Option<u64> {
        self.inner.phase_hint(round)
    }
}

/// `SBroadcast` with an online ν-estimate: the coloring prefix ran at
/// the initial estimate (it is burned into the schedule before any
/// feedback exists), but the **dissemination probability** re-tunes to
/// ν̂ every round via [`SBroadcastNode::set_estimate`] — collisions in
/// the relay stage raise ν̂ and thin the relay traffic.
#[derive(Debug)]
pub struct EstimatingSNode {
    inner: SBroadcastNode,
    est: NuEstimator,
}

impl EstimatingSNode {
    /// Creates the wrapper; `nu0 ≥ 1` seeds both the coloring schedule
    /// and the estimator.
    ///
    /// # Panics
    ///
    /// Panics if `nu0` is zero.
    pub fn new(id: usize, source: usize, payload: u64, nu0: usize, consts: Constants) -> Self {
        assert!(nu0 >= 1, "initial estimate must be at least 1, got {nu0}");
        EstimatingSNode {
            inner: SBroadcastNode::new(id, source, payload, nu0, consts),
            est: NuEstimator::new(nu0, 8, nu0.saturating_mul(1 << 16)),
        }
    }

    /// Whether the node holds the broadcast message.
    pub fn informed(&self) -> bool {
        self.inner.informed()
    }

    /// The node's current population estimate ν̂.
    pub fn nu(&self) -> usize {
        self.est.nu()
    }
}

impl Protocol for EstimatingSNode {
    type Msg = SMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<SMsg> {
        self.inner.set_estimate(self.est.nu());
        self.inner.poll_transmit(ctx)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, tx: bool, rx: Option<&SMsg>) {
        if self.inner.informed() && !tx {
            self.est.observe(rx.is_some());
        }
        self.inner.on_round_end(ctx, tx, rx);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn on_topology_change(&mut self, ctx: &mut NodeCtx<'_>, change: &TopologyChange) {
        if change.may_alter_reachability() {
            self.est.invalidate();
        }
        self.inner.on_topology_change(ctx, change);
    }

    fn phase_hint(&self, round: u64) -> Option<u64> {
        self.inner.phase_hint(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    #[test]
    fn estimator_is_one_sided_and_capped() {
        let mut est = NuEstimator::new(4, 2, 32);
        assert_eq!(est.nu(), 4);
        est.observe(true);
        est.observe(true);
        assert_eq!(est.nu(), 4, "decodes never move the estimate");
        est.observe(false);
        assert_eq!(est.nu(), 4, "one silent round is below the window");
        est.observe(false);
        assert_eq!(est.nu(), 8, "a full window of silence doubles");
        for _ in 0..40 {
            est.observe(false);
        }
        assert_eq!(est.nu(), 32, "capped");
    }

    #[test]
    fn decode_resets_the_silence_run() {
        let mut est = NuEstimator::new(4, 3, 1024);
        est.observe(false);
        est.observe(false);
        est.observe(true); // run broken at 2/3
        est.observe(false);
        est.observe(false);
        assert_eq!(est.nu(), 4, "no full window ever accumulated");
        est.observe(false);
        assert_eq!(est.nu(), 8);
    }

    #[test]
    fn invalidate_backs_off_the_window_exponentially_and_bounded() {
        let mut est = NuEstimator::new(4, 2, 1024);
        est.observe(false); // half a window of silence…
        est.invalidate();
        assert_eq!(est.window(), 4);
        est.observe(false);
        est.observe(false);
        assert_eq!(est.nu(), 4, "…was discarded; new window not yet full");
        for _ in 0..20 {
            est.invalidate();
        }
        assert_eq!(est.window(), 2 << 6, "backoff is bounded");
    }

    #[test]
    fn tx_prob_tracks_the_estimate() {
        let mut est = NuEstimator::new(1, 1, 64);
        assert_eq!(est.tx_prob(), 0.75, "clamped below 1 at tiny ν̂");
        est.observe(false);
        est.observe(false); // ν̂ = 4: below the clamp
        let nu = est.nu() as f64;
        assert!((est.tx_prob() - CONTENTION_TARGET / nu).abs() < 1e-12);
    }

    fn line_net(n: usize) -> Network<Point2> {
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        Network::new(pts, SinrParams::default_plane()).unwrap()
    }

    #[test]
    fn estimating_reflood_informs_a_path() {
        let n = 6;
        let mut eng = Engine::new(line_net(n), 3, |id| {
            EstimatingReFloodNode::new(id, 0, 7, n, 64)
        });
        let res = eng.run_until_all_done(20_000);
        assert!(res.completed);
        assert!(eng.nodes().iter().all(|nd| nd.informed()));
    }

    #[test]
    fn estimating_reflood_backs_off_under_persistent_silence() {
        // Drive an informed node against a channel that never decodes
        // (the protocol-visible signature of a collision stall): ν̂
        // must climb and the transmission probability must collapse.
        let mut node = EstimatingReFloodNode::new(0, 0, 5, 1, 10_000);
        let mut rng = sinr_runtime::node_rng(7, 0, 0);
        let mut early_tx = 0u32;
        for round in 0..64 {
            let mut ctx = sinr_runtime::NodeCtx {
                id: 0,
                round,
                n: 8,
                rng: &mut rng,
            };
            let tx = node.poll_transmit(&mut ctx).is_some();
            early_tx += tx as u32;
            node.on_round_end(&mut ctx, tx, None);
        }
        assert!(early_tx > 0, "an informed node floods while ν̂ is tiny");
        assert!(node.nu() > 1, "persistent in-burst silence must raise ν̂");
        let mut late_tx = 0u32;
        for round in 64..2_064 {
            let mut ctx = sinr_runtime::NodeCtx {
                id: 0,
                round,
                n: 8,
                rng: &mut rng,
            };
            let tx = node.poll_transmit(&mut ctx).is_some();
            late_tx += tx as u32;
            node.on_round_end(&mut ctx, tx, None);
        }
        assert!(node.nu() >= 64, "doublings keep coming while silence holds");
        assert!(
            late_tx < 2_000 / 4,
            "collapsed ν̂ must thin the flooding ({late_tx} transmissions)"
        );
    }

    #[test]
    fn estimating_nos_informs_a_path_from_a_wrong_estimate() {
        let consts = Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            dissem_factor: 4.0,
            ..Constants::tuned()
        };
        let n = 5;
        // nu0 = 2 < n: the fixed-estimate arm would reject this outright.
        let mut eng = Engine::new(line_net(n), 5, |id| {
            EstimatingNoSNode::new(id, 0, 42, 2, consts)
        });
        let res = eng.run_until_all_done(400_000);
        assert!(res.completed);
        assert!(eng.nodes().iter().all(|nd| nd.informed()));
    }

    #[test]
    fn estimating_s_informs_a_path_from_a_wrong_estimate() {
        let consts = Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        };
        let n = 5;
        let mut eng = Engine::new(line_net(n), 9, |id| {
            EstimatingSNode::new(id, 0, 42, 2, consts)
        });
        let res = eng.run_until_all_done(400_000);
        assert!(res.completed);
        assert!(eng.nodes().iter().all(|nd| nd.informed()));
    }

    #[test]
    fn wrappers_expose_phase_hints() {
        let consts = Constants::tuned();
        let nos = EstimatingNoSNode::new(0, 0, 1, 8, consts);
        let hint = nos.phase_hint(1).unwrap();
        assert!(hint >= 1 && hint % nos.inner.phase_len() == 0);
        let s = EstimatingSNode::new(0, 0, 1, 8, consts);
        assert!(s.phase_hint(0).is_some());
    }
}
