//! Leader election in the ad hoc setting (Section 5):
//! `O(D log² n + log³ n)` rounds.
//!
//! Every station draws a random ID from `{1, …, n³}` (unique whp), then the
//! network runs the bitwise consensus protocol on the IDs; the station whose
//! ID equals the agreed minimum declares itself leader.

use sinr_runtime::{NodeCtx, Protocol};

use crate::consensus::{ConsensusMsg, ConsensusNode};
use crate::constants::{log2n, Constants};

/// Per-node leader-election state machine (a consensus run on random IDs).
#[derive(Debug)]
pub struct LeaderNode {
    id_value: u64,
    inner: ConsensusNode,
}

impl LeaderNode {
    /// Bit width of the ID domain `{1..n³}`: `3·⌈log₂ n⌉ + 1`.
    pub fn id_bits(n: usize) -> u32 {
        (3 * log2n(n) + 1) as u32
    }

    /// Creates the node with a pre-drawn random `id_value` (callers draw it
    /// from the node's RNG stream; see `run::run_leader_election`).
    ///
    /// # Panics
    ///
    /// Panics if `id_value` does not fit in [`LeaderNode::id_bits`] bits.
    pub fn new(id_value: u64, n: usize, consts: Constants, window: u64) -> Self {
        let bits = Self::id_bits(n);
        LeaderNode {
            id_value,
            inner: ConsensusNode::new(id_value, bits, n, consts, window),
        }
    }

    /// This node's drawn ID.
    pub fn id_value(&self) -> u64 {
        self.id_value
    }

    /// Whether this node won the election (defined once consensus decided).
    pub fn is_leader(&self) -> Option<bool> {
        self.inner.decided().map(|min| min == self.id_value)
    }

    /// The agreed minimum ID, once decided.
    pub fn decided(&self) -> Option<u64> {
        self.inner.decided()
    }

    /// Total schedule length.
    pub fn total_rounds(&self) -> u64 {
        self.inner.total_rounds()
    }
}

impl Protocol for LeaderNode {
    type Msg = ConsensusMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<ConsensusMsg> {
        self.inner.poll_transmit(ctx)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, tx: bool, rx: Option<&ConsensusMsg>) {
        self.inner.on_round_end(ctx, tx, rx);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::{node_rng, Engine};

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        }
    }

    #[test]
    fn id_bits_scale() {
        assert_eq!(LeaderNode::id_bits(2), 4);
        assert_eq!(LeaderNode::id_bits(1024), 31);
    }

    #[test]
    fn elects_unique_leader_on_path() {
        let n = 4;
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let consts = fast_consts();
        let window = consts.wakeup_window(n, n as u32);
        let bits = LeaderNode::id_bits(n);
        let seed = 77;
        let mut eng = Engine::new(net, seed, |id| {
            let mut rng = node_rng(seed, id as u64, 1); // stream 1: ID draw
            let id_value = rng.gen_range(1..(1u64 << bits));
            LeaderNode::new(id_value, n, consts, window)
        });
        let total = eng.nodes()[0].total_rounds();
        let res = eng.run_until_all_done(total + 10);
        assert!(res.completed);
        let leaders: Vec<bool> = eng
            .nodes()
            .iter()
            .map(|nd| nd.is_leader().expect("decided"))
            .collect();
        assert_eq!(leaders.iter().filter(|&&l| l).count(), 1, "{leaders:?}");
        // The leader's ID is the minimum.
        let min_id = eng.nodes().iter().map(LeaderNode::id_value).min().unwrap();
        let winner = eng
            .nodes()
            .iter()
            .position(|nd| nd.is_leader() == Some(true))
            .unwrap();
        assert_eq!(eng.nodes()[winner].id_value(), min_id);
    }

    #[test]
    #[should_panic]
    fn oversized_id_rejected() {
        let _ = LeaderNode::new(u64::MAX >> 1, 4, fast_consts(), 10);
    }
}
