//! Algorithm constants: the paper's `c₀, c₁, c₂, c₃, c′, c_ε, C₁, C₂`.
//!
//! The paper fixes these constants inside proofs (Sections 3.2–3.4) via
//! Chernoff bounds and Riemann-zeta interference sums; the resulting values
//! are sound but astronomically conservative (e.g. `q =
//! 1/(z^γ 2^{α+4} β ζ(α−γ+1))` with `z = 6`). Running them verbatim
//! multiplies every experiment by several orders of magnitude without
//! changing the *shape* of any bound, so this module provides both:
//!
//! * [`Constants::paper`] — the literal formulas, for fidelity checks and
//!   the `a1` ablation;
//! * [`Constants::tuned`] — practical defaults calibrated so that the
//!   coloring invariants (Lemmas 1–2) hold empirically across the topology
//!   families of the experiment suite (verified by `sinr-core`'s tests and
//!   experiments E2/E3).
//!
//! Every structural element of the algorithm (two-test gate, doubling
//! schedule, `c′` repetitions, `c_ε` scale-up, per-color dissemination) is
//! preserved under either choice.

use sinr_phy::SinrParams;

/// Tunable constants of `StabilizeProbability` and the broadcast protocols.
///
/// See the module documentation for the two standard constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// `C₁`: target cap on per-color probability mass in a unit ball
    /// (Lemma 1). Also sets `p_start = C₁ / (2n)`.
    pub c1_cap: f64,
    /// `C₂`: guaranteed probability mass of some color in `B(v, ε/2)`
    /// (Lemma 2) — the scale the verifiers check against.
    pub c2_mass: f64,
    /// `p_max`: the terminal probability cap of the doubling schedule.
    /// Must satisfy `(packing of ε/2-separated points in a unit ball) ·
    /// 2·p_max ≤ C₁` so that never-quitting stations cannot break Lemma 1
    /// (the paper gets this for free from its astronomically small
    /// `C₂/c_ε`; we make the constraint explicit).
    pub p_max: f64,
    /// `c₀`: DensityTest length multiplier (`c₀·log n` rounds).
    pub c0: f64,
    /// `c₁`: DensityTest success threshold multiplier (`c₁·log n`
    /// receptions required to return `true`).
    pub c1: f64,
    /// `c₂`: Playoff length multiplier (`c₂·log n` rounds).
    pub c2: f64,
    /// `c₃`: Playoff success threshold multiplier.
    pub c3: f64,
    /// `c′`: number of (DensityTest, Playoff) gates per doubling level.
    pub c_prime: u32,
    /// `c_ε`: Playoff probability scale-up. Chosen so that when the unit
    /// ball around `v` is near its mass cap, scaled-up transmissions jam
    /// every reception from outside `B(v, ε/2)` (Section 3.4).
    pub c_eps: f64,
    /// `c_b`: dissemination slow-down — informed nodes transmit with
    /// probability `p_v · c_ε / (c_b · log n)` (Proposition 3 / Fact 11).
    pub c_bcast: f64,
    /// Dissemination-part length of a `NoSBroadcast` phase, as a multiple
    /// of `log² n` rounds.
    pub dissem_factor: f64,
    /// Per-hop budget multiplier for pipelined dissemination windows
    /// (`hop_factor·log n` rounds per communication-graph hop); used by the
    /// wake-up-with-coloring and consensus windows of Section 5.
    pub hop_factor: f64,
}

/// `⌈log₂ n⌉`, floored at 1, as used by all round-count formulas.
pub fn log2n(n: usize) -> u64 {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as u64
}

impl Constants {
    /// Practical defaults, calibrated on the experiment topology families
    /// (uniform squares, cluster chains, geometric lines). Independent of
    /// `n`; the experiment suite verifies Lemmas 1–2 hold under them.
    ///
    /// Calibration rationale (plane, ε = 0.5, α = 3, β = 1.2):
    /// * `c_ε = 40`: when a unit ball carries mass ≈ C₁/2, Playoff scales it
    ///   to ≈ 8 expected transmitters per round, jamming receptions from
    ///   outside `B(v, ε/2)` — the Section 3.4 mechanism. Smaller values
    ///   (the `a1` ablation sweeps them) let stations in sparse
    ///   neighbourhoods quit spuriously, breaking Lemma 2.
    /// * `p_max = 0.002`: the plane packs ≈ 80 points pairwise ε/2-apart
    ///   into a unit ball, so 80·2·p_max ≤ C₁ keeps Lemma 1 safe even if
    ///   none of them ever quits.
    /// * thresholds `c₁/c₀ = c₃/c₂ = 0.1`: a reception rate of 10% per
    ///   round separates "ball mass near C₁/2" (rate ≈ 0.15–0.3) from
    ///   "ball mass a quarter of that" (rate ≤ 0.05) with `16·log n`
    ///   samples.
    pub fn tuned() -> Self {
        Constants {
            c1_cap: 0.4,
            c2_mass: 0.004,
            p_max: 0.002,
            c0: 16.0,
            c1: 1.6,
            c2: 16.0,
            c3: 1.6,
            c_prime: 2,
            c_eps: 40.0,
            c_bcast: 10.0,
            dissem_factor: 48.0,
            hop_factor: 300.0,
        }
    }

    /// The paper's literal constants for the given model parameters
    /// (Sections 3.2–3.4). These make runs orders of magnitude longer; they
    /// exist for fidelity inspection and the `a1` ablation, not for routine
    /// experiments.
    ///
    /// Derivation (plane case, following the proofs):
    /// * `q = 1/(z^γ · 2^{α+4} · β · ζ(α−γ+1))` with `z = 6`, `a = 2`
    ///   (Lemma 6 / Claims 3–4);
    /// * `c₃/c₂ = q/16 · (1/4)^{a^γ z^γ q}` (choice after Lemma 6);
    /// * `c₁/c₀ = C₁/(16·χ(1/6,1))` (Proposition 1);
    /// * `c′ = χ(1, 4/3) · C₁ · c_ε / q` (proof of Lemma 3);
    /// * `c_ε = 8·ln(4c₂/c₃) / (ε^α · C₁ · c_d)`, `c_d = 1/(16·χ(1/6,1))`
    ///   (Section 3.4);
    /// * `C₂ = min(c₃/(8c₂), C₁·c_d/2) / c_ε` *scaled by* `c_ε` is what the
    ///   lemma tracks; we store the unscaled `C₂`.
    pub fn paper(params: &SinrParams) -> Self {
        Self::paper_inner(params.alpha(), params.beta(), params.gamma(), params.eps())
    }

    /// The paper's constants under **parameter uncertainty** (Section 1.1):
    /// stations know only ranges for α, β, N. Each constant is derived at
    /// both α extremes and combined conservatively — the Playoff scale-up
    /// and repetition count take their maxima (more jamming, more gates
    /// never hurt correctness), the success thresholds and mass floors
    /// their minima (weaker guarantees planned for).
    pub fn paper_from_bounds(bounds: &sinr_phy::ParamBounds, eps: f64, gamma: f64) -> Self {
        let lo = Self::paper_inner(bounds.alpha_min(), bounds.beta_max(), gamma, eps);
        let hi = Self::paper_inner(bounds.alpha_max(), bounds.beta_max(), gamma, eps);
        Constants {
            c1_cap: lo.c1_cap.min(hi.c1_cap),
            c2_mass: lo.c2_mass.min(hi.c2_mass),
            p_max: lo.p_max.min(hi.p_max),
            c0: lo.c0.max(hi.c0),
            c1: lo.c1.min(hi.c1),
            c2: lo.c2.max(hi.c2),
            c3: lo.c3.min(hi.c3),
            c_prime: lo.c_prime.max(hi.c_prime),
            c_eps: lo.c_eps.max(hi.c_eps),
            c_bcast: lo.c_bcast.max(hi.c_bcast),
            dissem_factor: lo.dissem_factor.max(hi.dissem_factor),
            hop_factor: lo.hop_factor.max(hi.hop_factor),
        }
    }

    fn paper_inner(alpha: f64, beta: f64, gamma: f64, eps: f64) -> Self {
        let z: f64 = 6.0;
        let a: f64 = 2.0;
        // ζ(α−γ+1) partial sum; converges since α > γ.
        let zeta: f64 = (1..10_000)
            .map(|i| (i as f64).powf(gamma - alpha - 1.0))
            .sum();
        let q = 1.0 / (z.powf(gamma) * 2f64.powf(alpha + 4.0) * beta * zeta);
        let chi_16_1 = sinr_geometry::covering_number(1.0, 1.0 / 6.0, gamma) as f64;
        let c1_cap = 1.0; // any C₁ with the bounded-density property; take 1.
        let cd = 1.0 / (16.0 * chi_16_1);
        let c0 = 64.0;
        let c1 = c0 * c1_cap / (16.0 * chi_16_1);
        let c2 = 64.0;
        let c3 = c2 * (q / 16.0) * 0.25f64.powf(a.powf(gamma) * z.powf(gamma) * q);
        let c_eps = 8.0 * (4.0 * c2 / c3).ln() / (eps.powf(alpha) * c1_cap * cd);
        let chi_1_43 = sinr_geometry::covering_number(4.0 / 3.0, 1.0, gamma) as f64;
        let c_prime = (chi_1_43 * c1_cap * c_eps / q).ceil().min(u32::MAX as f64) as u32;
        let c2_mass = (c3 / (8.0 * c2)).min(c1_cap * cd / 2.0);
        Constants {
            c1_cap,
            c2_mass,
            p_max: c2_mass / c_eps, // the paper's p_max = C₂/c_ε

            c0,
            c1,
            c2,
            c3,
            c_prime,
            c_eps,
            c_bcast: 4.0,
            dissem_factor: 8.0,
            hop_factor: 96.0,
        }
    }

    /// `p_start = C₁ / (2n)`, clamped below `p_max` so degenerate small
    /// networks still have at least one doubling level.
    pub fn p_start(&self, n: usize) -> f64 {
        (self.c1_cap / (2.0 * n.max(1) as f64)).min(self.p_max() / 2.0)
    }

    /// The terminal probability cap of the doubling schedule.
    pub fn p_max(&self) -> f64 {
        self.p_max
    }

    /// Number of doubling levels of `StabilizeProbability` for `n` nodes:
    /// iterations of the `while p < p_max` loop.
    pub fn num_levels(&self, n: usize) -> u32 {
        let mut p = self.p_start(n);
        let mut levels = 0;
        while p < self.p_max() {
            p *= 2.0;
            levels += 1;
        }
        levels
    }

    /// DensityTest length in rounds for `n` nodes.
    pub fn density_rounds(&self, n: usize) -> u64 {
        (self.c0 * log2n(n) as f64).ceil() as u64
    }

    /// DensityTest success threshold (receptions).
    pub fn density_threshold(&self, n: usize) -> u64 {
        (self.c1 * log2n(n) as f64).ceil() as u64
    }

    /// Playoff length in rounds.
    pub fn playoff_rounds(&self, n: usize) -> u64 {
        (self.c2 * log2n(n) as f64).ceil() as u64
    }

    /// Playoff success threshold (receptions).
    pub fn playoff_threshold(&self, n: usize) -> u64 {
        (self.c3 * log2n(n) as f64).ceil() as u64
    }

    /// Total length of one `StabilizeProbability` execution for `n` nodes:
    /// `levels · c′ · (density + playoff)` rounds. This is `O(log² n)`
    /// (Fact 7) and identical at every node, which is what lets phases stay
    /// globally aligned.
    pub fn coloring_rounds(&self, n: usize) -> u64 {
        self.num_levels(n) as u64
            * self.c_prime as u64
            * (self.density_rounds(n) + self.playoff_rounds(n))
    }

    /// Length of the dissemination part of a broadcast phase:
    /// `dissem_factor · log² n` rounds.
    pub fn dissemination_rounds(&self, n: usize) -> u64 {
        (self.dissem_factor * (log2n(n) * log2n(n)) as f64).ceil() as u64
    }

    /// Full `NoSBroadcast` phase length.
    pub fn phase_rounds(&self, n: usize) -> u64 {
        self.coloring_rounds(n) + self.dissemination_rounds(n)
    }

    /// Round budget per communication-graph hop of a pipelined
    /// dissemination over an established coloring: `hop_factor · log n`.
    pub fn hop_rounds(&self, n: usize) -> u64 {
        (self.hop_factor * log2n(n) as f64).ceil() as u64
    }

    /// Window length for one wake-up-with-established-coloring execution
    /// over a network of diameter at most `d_bound`:
    /// `(d_bound + 2)·hop_rounds + dissemination_rounds` —
    /// the `O(D log n + log² n)` budget of Section 5.
    pub fn wakeup_window(&self, n: usize, d_bound: u32) -> u64 {
        (d_bound as u64 + 2) * self.hop_rounds(n) + self.dissemination_rounds(n)
    }

    /// Per-round transmission probability during dissemination for a node
    /// with color `p_v` (Fact 11): `p_v · c_ε / (c_b · log n)`.
    pub fn dissemination_prob(&self, color: f64, n: usize) -> f64 {
        (color * self.c_eps / (self.c_bcast * log2n(n) as f64)).clamp(0.0, 1.0)
    }
}

impl Default for Constants {
    fn default() -> Self {
        Constants::tuned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2n_values() {
        assert_eq!(log2n(0), 1);
        assert_eq!(log2n(1), 1);
        assert_eq!(log2n(2), 1);
        assert_eq!(log2n(3), 2);
        assert_eq!(log2n(4), 2);
        assert_eq!(log2n(5), 3);
        assert_eq!(log2n(1024), 10);
        assert_eq!(log2n(1025), 11);
    }

    #[test]
    fn p_start_below_p_max() {
        let c = Constants::tuned();
        for n in [1, 2, 10, 1000, 1_000_000] {
            assert!(c.p_start(n) < c.p_max(), "n = {n}");
            assert!(c.p_start(n) > 0.0);
        }
    }

    #[test]
    fn levels_grow_logarithmically() {
        let c = Constants::tuned();
        let l256 = c.num_levels(256);
        let l1024 = c.num_levels(1024);
        assert_eq!(l1024 - l256, 2, "4x nodes = 2 more doubling levels");
        assert!(l256 >= 2);
    }

    #[test]
    fn coloring_rounds_is_log_squared() {
        let c = Constants::tuned();
        // Ratio against log²n should be bounded (between the two sizes).
        // The level count is log n minus a constant, so the ratio grows
        // towards its asymptote; check it stays within a small factor.
        let r = |n: usize| c.coloring_rounds(n) as f64 / (log2n(n) * log2n(n)) as f64;
        let r256 = r(256);
        let r4096 = r(4096);
        assert!(
            r4096 / r256 < 4.0,
            "rounds/log²n grew too fast: {r256} -> {r4096}"
        );
    }

    #[test]
    fn dissemination_prob_clamped_and_scaled() {
        let c = Constants::tuned();
        let p = c.dissemination_prob(c.p_max(), 1024);
        assert!(p > 0.0 && p <= 1.0);
        assert_eq!(c.dissemination_prob(0.0, 1024), 0.0);
        // Larger n => smaller per-round probability.
        assert!(c.dissemination_prob(0.01, 4096) < c.dissemination_prob(0.01, 16));
    }

    #[test]
    fn paper_constants_are_finite_and_huge() {
        let params = SinrParams::default_plane();
        let c = Constants::paper(&params);
        assert!(c.c_eps.is_finite() && c.c_eps > 1.0);
        assert!(c.c_prime >= 1);
        assert!(c.c3 > 0.0);
        assert!(c.c2_mass > 0.0);
        // The point of the tuned set: the paper's c' is enormous.
        assert!(
            c.c_prime > Constants::tuned().c_prime * 100,
            "paper c' = {} unexpectedly small",
            c.c_prime
        );
    }

    #[test]
    fn bounds_derivation_is_conservative() {
        let params = SinrParams::default_plane();
        let exact = Constants::paper(&params);
        let bounds = sinr_phy::ParamBounds::around(&params, 0.1).unwrap();
        let safe = Constants::paper_from_bounds(&bounds, params.eps(), params.gamma());
        assert!(safe.c_eps >= exact.c_eps, "scale-up must not weaken");
        assert!(safe.c_prime >= exact.c_prime);
        assert!(
            safe.c2_mass <= exact.c2_mass,
            "mass floor must not strengthen"
        );
        assert!(safe.p_max <= exact.p_max);
    }

    #[test]
    fn zero_width_bounds_match_exact_derivation() {
        let params = SinrParams::default_plane();
        let exact = Constants::paper(&params);
        let bounds = sinr_phy::ParamBounds::new(
            (params.alpha(), params.alpha()),
            (params.beta(), params.beta()),
            (params.noise(), params.noise()),
        )
        .unwrap();
        let from_bounds = Constants::paper_from_bounds(&bounds, params.eps(), params.gamma());
        assert_eq!(exact, from_bounds);
    }

    #[test]
    fn thresholds_positive() {
        let c = Constants::tuned();
        assert!(c.density_threshold(256) >= 1);
        assert!(c.playoff_threshold(256) >= 1);
        assert!(c.density_rounds(256) > c.density_threshold(256));
    }

    #[test]
    fn phase_decomposition() {
        let c = Constants::tuned();
        assert_eq!(
            c.phase_rounds(512),
            c.coloring_rounds(512) + c.dissemination_rounds(512)
        );
    }
}
