//! The wake-up problem (Section 5): ad hoc wake-up and wake-up with an
//! established coloring.
//!
//! Each node either wakes spontaneously at an adversary-chosen round or is
//! activated by receiving a wake-up signal; the goal is to activate all
//! nodes, measured from the first spontaneous wake-up. All stations share a
//! global clock (the Section 5 assumption).
//!
//! * [`AdhocWakeupNode`] runs the `NoSBroadcast` machinery with every
//!   spontaneously-awake station acting as a source. The paper aligns
//!   protocol starts to round numbers divisible by the full broadcast time
//!   `T`; since all wake-up messages are identical, executions compose, and
//!   aligning to *phase* boundaries (a finer grid) gives the same guarantee
//!   — a simplification documented in DESIGN.md. Running time stays
//!   `O(D log² n)` from the first wake-up.
//! * [`EstablishedWakeupNode`] assumes every station already holds a color
//!   from a network-wide `StabilizeProbability` (the backbone) and floods
//!   the signal with the Fact 11 probabilities in `O(D log n + log² n)`
//!   rounds — this is the engine of the consensus protocol.

use sinr_runtime::{bernoulli, NodeCtx, Protocol, WakeSchedule};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;

/// Message of the ad hoc wake-up protocol (identical for every sender; the
/// round counter keeps late joiners synchronised, as in `NoSBroadcast`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WMsg {
    /// Rounds elapsed on the global clock.
    pub round: u64,
}

/// Per-node state machine for ad hoc wake-up.
#[derive(Debug)]
pub struct AdhocWakeupNode {
    n: usize,
    consts: Constants,
    /// Spontaneous wake round, if the adversary wakes this node.
    wake_round: Option<u64>,
    /// Round the node became active (spontaneously, aligned, or by signal).
    awake_at: Option<u64>,
    active: bool,
    machine: ColoringMachine,
    coloring_len: u64,
    phase_len: u64,
}

impl AdhocWakeupNode {
    /// Creates the node with its adversarial schedule entry.
    pub fn new(id: usize, schedule: &WakeSchedule, n: usize, consts: Constants) -> Self {
        AdhocWakeupNode {
            n,
            consts,
            wake_round: schedule.wake_round(id),
            awake_at: None,
            active: false,
            machine: ColoringMachine::new(n, consts),
            coloring_len: ColoringMachine::total_rounds(n, &consts),
            phase_len: consts.phase_rounds(n),
        }
    }

    /// Whether the node is awake (spontaneously or via signal).
    pub fn awake(&self) -> bool {
        self.awake_at.is_some()
    }

    /// Round the node became awake.
    pub fn awake_at(&self) -> Option<u64> {
        self.awake_at
    }

    fn spontaneous_by(&self, round: u64) -> bool {
        self.wake_round.is_some_and(|w| w <= round)
    }
}

impl Protocol for AdhocWakeupNode {
    type Msg = WMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<WMsg> {
        if self.awake_at.is_none() && self.spontaneous_by(ctx.round) {
            self.awake_at = Some(self.wake_round.expect("spontaneous"));
        }
        self.awake_at?;
        let pos = ctx.round % self.phase_len;
        if pos == 0 {
            self.active = true;
            self.machine = ColoringMachine::new(self.n, self.consts);
        }
        if !self.active {
            return None;
        }
        let msg = WMsg { round: ctx.round };
        if pos < self.coloring_len {
            return self.machine.poll_transmit(ctx.rng).then_some(msg);
        }
        let color = self.machine.color().expect("schedule complete");
        let p = self.consts.dissemination_prob(color, self.n);
        bernoulli(ctx.rng, p).then_some(msg)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&WMsg>) {
        if rx.is_some() && self.awake_at.is_none() {
            self.awake_at = Some(ctx.round);
        }
        if self.active && ctx.round % self.phase_len < self.coloring_len {
            self.machine.on_round_end(rx.is_some());
        }
    }

    fn is_done(&self) -> bool {
        self.awake()
    }
}

/// Per-node state machine for wake-up over an **established coloring**.
///
/// `initiator` nodes start flooding at round 0; every node that decodes the
/// signal relays it with its backbone probability. One execution is budgeted
/// by [`Constants::wakeup_window`].
#[derive(Debug)]
pub struct EstablishedWakeupNode {
    color: f64,
    n: usize,
    consts: Constants,
    /// Whether this node has the signal (initiators start with it).
    pub signalled: bool,
}

impl EstablishedWakeupNode {
    /// Creates the node with its backbone `color`; `initiator` marks the
    /// spontaneously-woken set.
    pub fn new(color: f64, initiator: bool, n: usize, consts: Constants) -> Self {
        EstablishedWakeupNode {
            color,
            n,
            consts,
            signalled: initiator,
        }
    }
}

impl Protocol for EstablishedWakeupNode {
    type Msg = ();

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
        if !self.signalled {
            return None;
        }
        let p = self.consts.dissemination_prob(self.color, self.n);
        bernoulli(ctx.rng, p).then_some(())
    }

    fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&()>) {
        if rx.is_some() {
            self.signalled = true;
        }
    }

    fn is_done(&self) -> bool {
        self.signalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            dissem_factor: 4.0,
            ..Constants::tuned()
        }
    }

    fn path(n: usize) -> Network<Point2> {
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        Network::new(pts, SinrParams::default_plane()).unwrap()
    }

    #[test]
    fn adhoc_wakeup_single_waker() {
        let n = 5;
        let consts = fast_consts();
        let schedule = WakeSchedule::single(2, 0);
        let mut eng = Engine::new(path(n), 3, |id| {
            AdhocWakeupNode::new(id, &schedule, n, consts)
        });
        let res = eng.run_until_all_done(consts.phase_rounds(n) * 40);
        assert!(res.completed, "wake-up incomplete");
        assert!(eng.nodes().iter().all(AdhocWakeupNode::awake));
    }

    #[test]
    fn adhoc_wakeup_staggered_wakers() {
        let n = 5;
        let consts = fast_consts();
        let schedule = WakeSchedule::Staggered { start: 0, gap: 7 };
        let mut eng = Engine::new(path(n), 8, |id| {
            AdhocWakeupNode::new(id, &schedule, n, consts)
        });
        let res = eng.run_until_all_done(consts.phase_rounds(n) * 40);
        assert!(res.completed);
    }

    #[test]
    fn nobody_wakes_without_schedule_or_signal() {
        let n = 4;
        let consts = fast_consts();
        let schedule = WakeSchedule::Selected(vec![]);
        let mut eng = Engine::new(path(n), 1, |id| {
            AdhocWakeupNode::new(id, &schedule, n, consts)
        });
        eng.run_rounds(500);
        assert!(eng.nodes().iter().all(|nd| !nd.awake()));
        assert_eq!(eng.trace().total_transmissions(), 0);
    }

    #[test]
    fn late_waker_counts_from_its_round() {
        let n = 3;
        let consts = fast_consts();
        let schedule = WakeSchedule::single(0, 25);
        let mut eng = Engine::new(path(n), 5, |id| {
            AdhocWakeupNode::new(id, &schedule, n, consts)
        });
        eng.run_rounds(24);
        assert!(!eng.nodes()[0].awake());
        eng.run_rounds(2);
        assert!(eng.nodes()[0].awake());
        assert_eq!(eng.nodes()[0].awake_at(), Some(25));
    }

    #[test]
    fn established_wakeup_floods_path() {
        let n = 6;
        let consts = fast_consts();
        // A pre-established uniform backbone coloring.
        let color = consts.p_max();
        let mut eng = Engine::new(path(n), 4, |id| {
            EstablishedWakeupNode::new(color, id == 0, n, consts)
        });
        let window = consts.wakeup_window(n, (n - 1) as u32);
        let res = eng.run_until_all_done(window);
        assert!(res.completed, "window {window} too short");
    }

    #[test]
    fn established_wakeup_no_initiators_is_silent() {
        let n = 4;
        let consts = fast_consts();
        let mut eng = Engine::new(path(n), 2, |_| {
            EstablishedWakeupNode::new(consts.p_max(), false, n, consts)
        });
        eng.run_rounds(200);
        assert_eq!(eng.trace().total_transmissions(), 0);
        assert!(eng.nodes().iter().all(|nd| !nd.signalled));
    }
}
