//! Standalone execution of `StabilizeProbability` over a whole network
//! (the spontaneous-wake-up preprocessing step, and the subject of
//! experiments E1–E3).

use sinr_geometry::MetricPoint;
use sinr_phy::{Network, NetworkError, SinrParams};
use sinr_runtime::{Engine, NodeCtx, Protocol};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;
use crate::verify::Coloring;

/// A node running exactly one `StabilizeProbability` execution.
#[derive(Debug)]
pub struct StabilizeProtocol {
    machine: ColoringMachine,
}

impl StabilizeProtocol {
    /// Creates the per-node state machine for a network of `n` stations.
    pub fn new(n: usize, consts: Constants) -> Self {
        StabilizeProtocol {
            machine: ColoringMachine::new(n, consts),
        }
    }

    /// The underlying machine (color inspection after the run).
    pub fn machine(&self) -> &ColoringMachine {
        &self.machine
    }
}

impl Protocol for StabilizeProtocol {
    type Msg = ();

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
        self.machine.poll_transmit(ctx.rng).then_some(())
    }

    fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&()>) {
        if !self.machine.is_finished() {
            self.machine.on_round_end(rx.is_some());
        }
    }

    fn is_done(&self) -> bool {
        self.machine.is_finished()
    }
}

/// Result of a standalone coloring run.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringRun {
    /// The produced coloring (one probability per station).
    pub coloring: Coloring,
    /// Rounds executed (`= Constants::coloring_rounds(n)`, Fact 7).
    pub rounds: u64,
    /// Total transmissions across the run (energy proxy).
    pub total_transmissions: u64,
}

/// Runs `StabilizeProbability` on all stations of a network and returns the
/// coloring.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network construction.
pub fn run_stabilize<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    seed: u64,
) -> Result<ColoringRun, NetworkError> {
    let net = Network::new(points, *params)?;
    Ok(run_stabilize_on(net, consts, seed))
}

/// As [`run_stabilize`], over an already-constructed network.
pub fn run_stabilize_on<P: MetricPoint>(
    net: Network<P>,
    consts: Constants,
    seed: u64,
) -> ColoringRun {
    let n = net.len();
    let total = ColoringMachine::total_rounds(n, &consts);
    let mut eng = Engine::new(net, seed, |_| StabilizeProtocol::new(n, consts));
    eng.run_rounds(total);
    let total_transmissions = eng.trace().total_transmissions();
    let colors = eng
        .into_nodes()
        .iter()
        .map(|p| p.machine().color().expect("schedule complete"))
        .collect();
    ColoringRun {
        coloring: Coloring::new(colors),
        rounds: total,
        total_transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn small_consts() -> Constants {
        // Shrink lengths for unit tests; integration tests use tuned().
        Constants {
            c0: 8.0,
            c2: 8.0,
            ..Constants::tuned()
        }
    }

    #[test]
    fn run_length_matches_fact7_schedule() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..12).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let consts = small_consts();
        let run = run_stabilize(pts, &params, consts, 7).unwrap();
        assert_eq!(run.rounds, consts.coloring_rounds(12));
        assert_eq!(run.coloring.len(), 12);
    }

    #[test]
    fn every_station_gets_a_color() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 * 0.25, 0.0)).collect();
        let run = run_stabilize(pts, &params, small_consts(), 3).unwrap();
        assert!(run.coloring.colors.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let a = run_stabilize(pts.clone(), &params, small_consts(), 11).unwrap();
        let b = run_stabilize(pts.clone(), &params, small_consts(), 11).unwrap();
        let c = run_stabilize(pts, &params, small_consts(), 12).unwrap();
        assert_eq!(a, b);
        // Different seed virtually always yields some difference in
        // transmissions (not asserted on colors, which may coincide).
        assert!(a.total_transmissions != c.total_transmissions || a.coloring != c.coloring);
    }

    #[test]
    fn lone_station_terminal_color() {
        let params = SinrParams::default_plane();
        let consts = small_consts();
        let run = run_stabilize(vec![Point2::origin()], &params, consts, 1).unwrap();
        // Never hears anything: keeps doubling to the terminal color.
        assert_eq!(run.coloring.colors[0], 2.0 * consts.p_max());
    }
}
