//! `SBroadcast` — broadcast with spontaneous wake-up (Theorem 2):
//! `O(D log n + log² n)` rounds whp.
//!
//! All stations wake together, so the network first runs one global
//! `StabilizeProbability` (the `O(log² n)` term — a communication backbone
//! in the form of a coloring), after which the source transmits its message
//! deterministically once, and every informed station relays it with
//! probability `p_v·c_ε/(c_b·log n)` per round. Each hop of the shortest
//! path is crossed with probability `Θ(1/log n)` per round, giving the
//! `O(D log n)` pipeline term.

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;

/// Message carried during an `SBroadcast` run. Coloring-phase traffic has
/// no payload; dissemination traffic carries the source message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SMsg {
    /// The broadcast payload, present once the sender is informed.
    pub payload: Option<u64>,
}

/// Per-node state machine of `SBroadcast`.
#[derive(Debug)]
pub struct SBroadcastNode {
    id: usize,
    source: usize,
    payload: Option<u64>,
    consts: Constants,
    n: usize,
    machine: ColoringMachine,
    coloring_len: u64,
}

impl SBroadcastNode {
    /// Creates the state machine; the `source` node holds `payload`.
    pub fn new(id: usize, source: usize, payload: u64, n: usize, consts: Constants) -> Self {
        SBroadcastNode {
            id,
            source,
            payload: (id == source).then_some(payload),
            consts,
            n,
            machine: ColoringMachine::new(n, consts),
            coloring_len: ColoringMachine::total_rounds(n, &consts),
        }
    }

    /// Whether this node knows the broadcast message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// The node's assigned color once the preprocessing finished.
    pub fn color(&self) -> Option<f64> {
        self.machine.color()
    }

    /// Updates the population estimate consulted by the dissemination
    /// probability (online ν-estimation, [`crate::estimate`]). The
    /// coloring prefix is *not* rebuilt: its schedule is burned in
    /// before any channel feedback exists, so only the relay-stage
    /// transmission probability adapts.
    pub fn set_estimate(&mut self, nu: usize) {
        self.n = nu.max(1);
    }
}

impl Protocol for SBroadcastNode {
    type Msg = SMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<SMsg> {
        if ctx.round < self.coloring_len {
            // Preprocessing: everyone runs StabilizeProbability. The source
            // attaches its payload so early receptions already inform.
            return self.machine.poll_transmit(ctx.rng).then_some(SMsg {
                payload: self.payload,
            });
        }
        if ctx.round == self.coloring_len {
            // The source announces deterministically (paper: "the source
            // node transmits the message deterministically").
            return (self.id == self.source).then_some(SMsg {
                payload: self.payload,
            });
        }
        // Relay: informed stations transmit with the Fact 11 probability.
        if self.payload.is_some() {
            let color = self.machine.color().unwrap_or(0.0);
            let p = self.consts.dissemination_prob(color, self.n);
            return bernoulli(ctx.rng, p).then_some(SMsg {
                payload: self.payload,
            });
        }
        None
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&SMsg>) {
        if let Some(msg) = rx {
            if self.payload.is_none() {
                self.payload = msg.payload;
            }
        }
        if ctx.round < self.coloring_len {
            self.machine.on_round_end(rx.is_some());
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }

    fn phase_hint(&self, round: u64) -> Option<u64> {
        // One transition: coloring ends, dissemination begins. Afterwards
        // the protocol is phase-free.
        (round <= self.coloring_len).then_some(self.coloring_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        }
    }

    #[test]
    fn informs_a_short_path() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let n = pts.len();
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, 5, |id| SBroadcastNode::new(id, 0, 99, n, consts));
        let res = eng.run_until_all_done(200_000);
        assert!(res.completed, "broadcast did not finish");
        assert!(eng.nodes().iter().all(|nd| nd.informed()));
    }

    #[test]
    fn payload_propagates_unchanged() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..4).map(|i| Point2::new(i as f64 * 0.4, 0.0)).collect();
        let n = pts.len();
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, 9, |id| SBroadcastNode::new(id, 2, 1234, n, consts));
        let res = eng.run_until_all_done(200_000);
        assert!(res.completed);
        for nd in eng.nodes() {
            assert_eq!(nd.payload, Some(1234));
        }
    }

    #[test]
    fn source_is_done_immediately() {
        let consts = fast_consts();
        let node = SBroadcastNode::new(3, 3, 7, 10, consts);
        assert!(node.is_done());
        let other = SBroadcastNode::new(2, 3, 7, 10, consts);
        assert!(!other.is_done());
    }

    #[test]
    fn colors_assigned_after_preprocessing() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 0.4, 0.0)).collect();
        let n = pts.len();
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, 2, |id| SBroadcastNode::new(id, 0, 1, n, consts));
        eng.run_rounds(ColoringMachine::total_rounds(n, &consts));
        assert!(eng.nodes().iter().all(|nd| nd.color().is_some()));
    }
}
