//! `NoSBroadcast` — broadcast without spontaneous wake-up (Theorem 1):
//! `O(D log² n)` rounds whp.
//!
//! The run is divided into globally aligned phases of fixed length
//! [`Constants::phase_rounds`]. A station participates in a phase iff it
//! holds the source message at the phase start. Each phase:
//!
//! 1. **Coloring part** (`O(log² n)` rounds): the active set runs a fresh
//!    `StabilizeProbability`, producing colors valid *for the current active
//!    set* (the active set grows every phase, so the coloring must be
//!    recomputed — this is exactly why the non-spontaneous bound carries the
//!    extra `log n` factor over Theorem 2).
//! 2. **Dissemination part** (`O(log² n)` rounds): active stations transmit
//!    the message with probability `p_v·c_ε/(c_b·log n)`; by Proposition 3
//!    every graph neighbour of every active station is informed whp, so the
//!    informed set advances at least one hop of every shortest path per
//!    phase.
//!
//! Sleeping stations transmit nothing and have no clock; every message
//! carries the number of rounds elapsed since the source started, which is
//! how newly informed stations synchronise to phase boundaries (paper,
//! Section 1.1 "Messages and initialization of stations").

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;

/// Message carried during a `NoSBroadcast` run: the payload plus the global
/// round counter used by sleepers to synchronise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NMsg {
    /// The broadcast payload.
    pub payload: u64,
    /// Rounds elapsed since the source was activated.
    pub round: u64,
}

/// Per-node state machine of `NoSBroadcast`.
#[derive(Debug)]
pub struct NoSBroadcastNode {
    n: usize,
    consts: Constants,
    payload: Option<u64>,
    /// Round at which this node learned the global clock (diagnostics).
    informed_at: Option<u64>,
    /// Whether the node is active (participating) in the current phase.
    active: bool,
    machine: ColoringMachine,
    coloring_len: u64,
    phase_len: u64,
}

impl NoSBroadcastNode {
    /// Creates the state machine; `source` holds `payload` from round 0.
    pub fn new(id: usize, source: usize, payload: u64, n: usize, consts: Constants) -> Self {
        NoSBroadcastNode {
            n,
            consts,
            payload: (id == source).then_some(payload),
            informed_at: (id == source).then_some(0),
            active: false,
            machine: ColoringMachine::new(n, consts),
            coloring_len: ColoringMachine::total_rounds(n, &consts),
            phase_len: consts.phase_rounds(n),
        }
    }

    /// Whether the node holds the broadcast message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed (0 for the source).
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// Position of `round` within its phase.
    fn pos(&self, round: u64) -> u64 {
        round % self.phase_len
    }

    /// The phase length of the node's current schedule.
    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    /// The population estimate the current schedule was built for.
    pub fn estimate(&self) -> usize {
        self.n
    }

    /// Rebuilds the schedule for a new population estimate `nu`
    /// (online ν-estimation, [`crate::estimate`]): coloring machine,
    /// coloring length and phase length are recomputed while the
    /// payload and informed-time survive. The node deactivates until
    /// the next boundary of the *new* phase grid — a node may not keep
    /// transmitting on a schedule it just declared wrong.
    ///
    /// Stations re-estimating individually means their phase grids can
    /// drift apart; that costs latency (missed phases), never coverage.
    pub fn reestimate(&mut self, nu: usize) {
        self.n = nu;
        self.machine = ColoringMachine::new(nu, self.consts);
        self.coloring_len = ColoringMachine::total_rounds(nu, &self.consts);
        self.phase_len = self.consts.phase_rounds(nu);
        self.active = false;
    }
}

impl Protocol for NoSBroadcastNode {
    type Msg = NMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<NMsg> {
        let Some(payload) = self.payload else {
            return None; // asleep: listen only
        };
        let pos = self.pos(ctx.round);
        if pos == 0 {
            // Phase boundary: every informed station (re)activates and
            // resets its coloring machine for the fresh active set.
            self.active = true;
            self.machine = ColoringMachine::new(self.n, self.consts);
        }
        if !self.active {
            // Informed mid-phase: wait for the next boundary.
            return None;
        }
        let msg = NMsg {
            payload,
            round: ctx.round,
        };
        if pos < self.coloring_len {
            return self.machine.poll_transmit(ctx.rng).then_some(msg);
        }
        // Dissemination part.
        let color = self
            .machine
            .color()
            .expect("coloring schedule complete at dissemination start");
        let p = self.consts.dissemination_prob(color, self.n);
        bernoulli(ctx.rng, p).then_some(msg)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&NMsg>) {
        if let Some(msg) = rx {
            if self.payload.is_none() {
                // The message's round counter hands the sleeper the global
                // clock. In this simulator the engine round *is* the global
                // clock, so they must agree — asserting documents that the
                // protocol only ever uses clock information obtainable from
                // messages.
                debug_assert_eq!(msg.round, ctx.round, "message clock drift");
                self.payload = Some(msg.payload);
                self.informed_at = Some(ctx.round);
            }
        }
        if self.active && self.pos(ctx.round) < self.coloring_len {
            self.machine.on_round_end(rx.is_some());
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }

    fn phase_hint(&self, round: u64) -> Option<u64> {
        // Next multiple of the phase length at or after `round`.
        Some(round.div_ceil(self.phase_len) * self.phase_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            dissem_factor: 4.0,
            ..Constants::tuned()
        }
    }

    fn run_path(n: usize, gap: f64, seed: u64, max_phases: u64) -> (bool, Vec<Option<u64>>) {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * gap, 0.0)).collect();
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, seed, |id| NoSBroadcastNode::new(id, 0, 42, n, consts));
        let budget = consts.phase_rounds(n) * max_phases;
        let res = eng.run_until_all_done(budget);
        let informed_at = eng.nodes().iter().map(|nd| nd.informed_at()).collect();
        (res.completed, informed_at)
    }

    #[test]
    fn path_network_fully_informed() {
        let (ok, informed_at) = run_path(6, 0.45, 3, 40);
        assert!(ok, "broadcast incomplete");
        assert!(informed_at.iter().all(Option::is_some));
        assert_eq!(informed_at[0], Some(0), "source informed at time 0");
    }

    #[test]
    fn information_spreads_monotonically_along_path() {
        let (ok, informed_at) = run_path(8, 0.45, 9, 60);
        assert!(ok);
        // Farther stations cannot be informed before nearer ones by more
        // than a phase: check weak monotonicity of first-informed rounds.
        let times: Vec<u64> = informed_at.iter().map(|t| t.unwrap()).collect();
        for w in times.windows(2) {
            assert!(
                w[1] + 1 >= w[0],
                "farther node informed much earlier: {times:?}"
            );
        }
    }

    #[test]
    fn sleepers_never_transmit() {
        let params = SinrParams::default_plane();
        let n = 3;
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.4, 0.0),
            Point2::new(20.0, 0.0), // disconnected sleeper
        ];
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, 1, |id| NoSBroadcastNode::new(id, 0, 7, n, consts));
        eng.run_rounds(consts.phase_rounds(n));
        // The disconnected node must still be asleep and silent.
        assert!(!eng.nodes()[2].informed());
    }

    #[test]
    fn mid_phase_joiner_waits_for_boundary() {
        let consts = fast_consts();
        let n = 4;
        let mut node = NoSBroadcastNode::new(1, 0, 5, n, consts);
        assert!(!node.informed());
        // Inject a reception mid-phase (round 10, not a boundary).
        let mut rng = sinr_runtime::node_rng(0, 1, 0);
        let mut ctx = NodeCtx {
            id: 1,
            round: 10,
            n,
            rng: &mut rng,
        };
        node.on_round_end(
            &mut ctx,
            false,
            Some(&NMsg {
                payload: 5,
                round: 10,
            }),
        );
        assert!(node.informed());
        // Next round (11): still not at a boundary, must stay silent.
        let mut ctx = NodeCtx {
            id: 1,
            round: 11,
            n,
            rng: &mut rng,
        };
        assert!(node.poll_transmit(&mut ctx).is_none());
        assert!(!node.active);
        // At the next phase boundary it activates.
        let boundary = consts.phase_rounds(n);
        let mut ctx = NodeCtx {
            id: 1,
            round: boundary,
            n,
            rng: &mut rng,
        };
        let _ = node.poll_transmit(&mut ctx);
        assert!(node.active);
    }

    #[test]
    fn reestimate_rebuilds_the_schedule_and_keeps_the_payload() {
        let consts = fast_consts();
        let mut node = NoSBroadcastNode::new(0, 0, 77, 4, consts);
        let old_phase = node.phase_len();
        // Activate at a boundary, then re-estimate upward.
        let mut rng = sinr_runtime::node_rng(0, 0, 0);
        let mut ctx = NodeCtx {
            id: 0,
            round: 0,
            n: 4,
            rng: &mut rng,
        };
        let _ = node.poll_transmit(&mut ctx);
        assert!(node.active);
        node.reestimate(64);
        assert_eq!(node.estimate(), 64);
        assert!(node.phase_len() > old_phase);
        assert!(node.informed(), "payload must survive re-estimation");
        assert!(!node.active, "must wait for a boundary of the new grid");
    }

    #[test]
    fn phase_hint_is_the_next_boundary() {
        let consts = fast_consts();
        let node = NoSBroadcastNode::new(1, 0, 1, 4, consts);
        let len = node.phase_len();
        assert_eq!(node.phase_hint(0), Some(0));
        assert_eq!(node.phase_hint(1), Some(len));
        assert_eq!(node.phase_hint(len), Some(len));
        assert_eq!(node.phase_hint(len + 1), Some(2 * len));
    }

    #[test]
    fn clique_single_phase() {
        // Fully connected tiny network: one phase suffices.
        let params = SinrParams::default_plane();
        let n = 4;
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.1, 0.0)).collect();
        let net = Network::new(pts, params).unwrap();
        let consts = fast_consts();
        let mut eng = Engine::new(net, 11, |id| NoSBroadcastNode::new(id, 0, 1, n, consts));
        let res = eng.run_until_all_done(consts.phase_rounds(n) * 3);
        assert!(res.completed);
    }
}
