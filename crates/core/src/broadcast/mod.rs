//! The paper's two broadcast algorithms.
//!
//! * [`nonspontaneous`] — `NoSBroadcast`, Theorem 1: `O(D log² n)` without
//!   spontaneous wake-up;
//! * [`spontaneous`] — `SBroadcast`, Theorem 2: `O(D log n + log² n)` with
//!   spontaneous wake-up.

pub mod nonspontaneous;
pub mod spontaneous;

pub use nonspontaneous::{NMsg, NoSBroadcastNode};
pub use spontaneous::{SBroadcastNode, SMsg};
