//! The alert protocol (Section 1.3 lists it among the applications of the
//! coloring backbone).
//!
//! Standard formulation: an adversary *alerts* an arbitrary subset of
//! stations at arbitrary rounds; every station must learn **whether any
//! alert has occurred** within `O(D log n + log² n)` rounds of the first
//! alert. With an established coloring this is a repeating sequence of
//! wake-up-with-coloring windows aligned to the global clock: an alerted
//! station raises the signal in the next window; the signal floods with the
//! Fact 11 probabilities; a window with no alert stays silent (perfect
//! quiescence — no false positives and no idle energy).

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

use crate::constants::Constants;

/// Per-node alert-protocol state machine over an established coloring.
#[derive(Debug)]
pub struct AlertNode {
    color: f64,
    n: usize,
    consts: Constants,
    window: u64,
    /// Round at which the adversary alerts this node, if ever.
    alert_at: Option<u64>,
    /// Whether this node currently carries the alarm signal.
    signalled: bool,
    /// Round at which this node first learned of an alert.
    learned_at: Option<u64>,
}

impl AlertNode {
    /// Creates the node with its backbone `color` and per-window length
    /// `window` (use [`Constants::wakeup_window`] with a diameter bound).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(
        color: f64,
        alert_at: Option<u64>,
        n: usize,
        consts: Constants,
        window: u64,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        AlertNode {
            color,
            n,
            consts,
            window,
            alert_at,
            signalled: false,
            learned_at: None,
        }
    }

    /// Whether this node knows an alert occurred.
    pub fn alarmed(&self) -> bool {
        self.learned_at.is_some()
    }

    /// Round at which this node learned of the alert.
    pub fn learned_at(&self) -> Option<u64> {
        self.learned_at
    }
}

impl Protocol for AlertNode {
    type Msg = ();

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
        // The adversary's alert fires between rounds; an alerted station
        // joins the flood at its next poll.
        if let Some(a) = self.alert_at {
            if a <= ctx.round && self.learned_at.is_none() {
                self.signalled = true;
                self.learned_at = Some(ctx.round.max(a));
            }
        }
        if !self.signalled {
            return None;
        }
        // Window-aligned flood: carriers transmit through every window.
        let p = self.consts.dissemination_prob(self.color, self.n);
        bernoulli(ctx.rng, p).then_some(())
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&()>) {
        let _ = self.window; // windows only matter for the time accounting
        if rx.is_some() {
            self.signalled = true;
            if self.learned_at.is_none() {
                self.learned_at = Some(ctx.round);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.alarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    fn fast() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        }
    }

    fn path(n: usize) -> Network<Point2> {
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        Network::new(pts, SinrParams::default_plane()).unwrap()
    }

    #[test]
    fn quiescent_without_alerts() {
        let n = 5;
        let consts = fast();
        let mut eng = Engine::new(path(n), 1, |_| {
            AlertNode::new(consts.p_max(), None, n, consts, 100)
        });
        eng.run_rounds(500);
        assert_eq!(
            eng.trace().total_transmissions(),
            0,
            "alert protocol must idle silently"
        );
        assert!(eng.nodes().iter().all(|nd| !nd.alarmed()));
    }

    #[test]
    fn single_alert_reaches_everyone() {
        let n = 6;
        let consts = fast();
        let window = consts.wakeup_window(n, n as u32);
        let mut eng = Engine::new(path(n), 2, |id| {
            AlertNode::new(consts.p_max(), (id == 3).then_some(7), n, consts, window)
        });
        let res = eng.run_until(window * 4, |e| e.nodes().iter().all(AlertNode::alarmed));
        assert!(res.completed, "alarm did not spread");
        assert_eq!(eng.nodes()[3].learned_at(), Some(7));
        for nd in eng.nodes() {
            assert!(nd.learned_at().unwrap() >= 7);
        }
    }

    #[test]
    fn multiple_alerts_merge() {
        let n = 6;
        let consts = fast();
        let window = consts.wakeup_window(n, n as u32);
        let mut eng = Engine::new(path(n), 3, |id| {
            let alert = match id {
                0 => Some(4u64),
                5 => Some(9),
                _ => None,
            };
            AlertNode::new(consts.p_max(), alert, n, consts, window)
        });
        let res = eng.run_until(window * 4, |e| e.nodes().iter().all(AlertNode::alarmed));
        assert!(res.completed);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = AlertNode::new(0.01, None, 4, fast(), 0);
    }
}
