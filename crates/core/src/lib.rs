//! Ad hoc broadcast under the SINR model without geolocation — the
//! algorithms of Jurdzinski, Kowalski, Rozanski & Stachowiak, *On the
//! Impact of Geometry on Ad Hoc Communication in Wireless Networks*
//! (PODC 2014), implemented as round-driven state machines over the
//! [`sinr_runtime`] engine.
//!
//! # What's here
//!
//! * [`coloring::ColoringMachine`] — `StabilizeProbability` (Section 3),
//!   the distributed coloring that assigns each station a transmission
//!   probability such that per-color unit-ball mass is bounded (Lemma 1)
//!   and every station has a constant-mass color nearby (Lemma 2);
//! * [`broadcast::NoSBroadcastNode`] — Theorem 1, `O(D log² n)` broadcast
//!   without spontaneous wake-up;
//! * [`broadcast::SBroadcastNode`] — Theorem 2, `O(D log n + log² n)`
//!   broadcast with spontaneous wake-up;
//! * [`wakeup`], [`consensus`], [`leader`], [`alert`] — the Section 5
//!   applications;
//! * [`baselines`] — Daum et al.-style decay broadcast, fixed-probability
//!   flooding, and adaptive local-broadcast flooding;
//! * [`estimate`] — online ν-estimation: density-adaptive variants of the
//!   broadcasts that recover when the population bound is wrong or churn
//!   makes it stale;
//! * [`verify`] — measurement of the Lemma 1/Lemma 2 invariants;
//! * [`sim`] — the [`sim::Scenario`] builder: declarative topologies,
//!   the protocol registry, unified [`sim::RunReport`]s and parallel
//!   seed sweeps;
//! * [`run`] — the legacy one-call runners, now deprecated thin wrappers
//!   over [`sim`].
//!
//! # Quickstart
//!
//! Build a [`sim::Scenario`] from a topology and a protocol, then run one
//! seed or sweep many in parallel — every run is a pure function of its
//! seed:
//!
//! ```
//! use sinr_core::sim::{ProtocolSpec, Scenario};
//! use sinr_geometry::Point2;
//!
//! let points: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
//! let sim = Scenario::new(points)
//!     .protocol(ProtocolSpec::SBroadcast { source: 0 })
//!     .budget(1_000_000)
//!     .build()?;
//!
//! let report = sim.run(42)?;
//! assert!(report.completed);
//!
//! let sweep = sim.sweep(&[1, 2, 3, 4])?; // parallel, deterministic per seed
//! assert_eq!(sweep.completed(), 4);
//! # Ok::<(), sinr_core::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod baselines;
pub mod broadcast;
pub mod coloring;
pub mod consensus;
pub mod constants;
pub mod estimate;
pub mod leader;
pub mod localcast;
pub mod run;
pub mod sim;
pub mod stabilize;
pub mod verify;
pub mod wakeup;

pub use coloring::ColoringMachine;
pub use constants::{log2n, Constants};
pub use estimate::{NuEstimator, CONTENTION_TARGET};
pub use stabilize::{run_stabilize, run_stabilize_on, ColoringRun, StabilizeProtocol};
pub use verify::{
    invariant_report, lemma1_max_ball_mass, lemma2_min_close_mass, Coloring, InvariantReport,
};
