//! Ad hoc broadcast under the SINR model without geolocation — the
//! algorithms of Jurdzinski, Kowalski, Rozanski & Stachowiak, *On the
//! Impact of Geometry on Ad Hoc Communication in Wireless Networks*
//! (PODC 2014), implemented as round-driven state machines over the
//! [`sinr_runtime`] engine.
//!
//! # What's here
//!
//! * [`coloring::ColoringMachine`] — `StabilizeProbability` (Section 3),
//!   the distributed coloring that assigns each station a transmission
//!   probability such that per-color unit-ball mass is bounded (Lemma 1)
//!   and every station has a constant-mass color nearby (Lemma 2);
//! * [`broadcast::NoSBroadcastNode`] — Theorem 1, `O(D log² n)` broadcast
//!   without spontaneous wake-up;
//! * [`broadcast::SBroadcastNode`] — Theorem 2, `O(D log n + log² n)`
//!   broadcast with spontaneous wake-up;
//! * [`wakeup`], [`consensus`], [`leader`], [`alert`] — the Section 5
//!   applications;
//! * [`baselines`] — Daum et al.-style decay broadcast, fixed-probability
//!   flooding, and adaptive local-broadcast flooding;
//! * [`verify`] — measurement of the Lemma 1/Lemma 2 invariants;
//! * [`run`] — one-call runners returning experiment-ready reports.
//!
//! # Quickstart
//!
//! ```
//! use sinr_core::{run::run_s_broadcast, Constants};
//! use sinr_geometry::Point2;
//! use sinr_phy::SinrParams;
//!
//! let params = SinrParams::default_plane();
//! let consts = Constants::tuned();
//! let points: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
//! let report = run_s_broadcast(points, &params, consts, 0, 42, 1_000_000)?;
//! assert!(report.completed);
//! # Ok::<(), sinr_phy::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod baselines;
pub mod broadcast;
pub mod coloring;
pub mod consensus;
pub mod constants;
pub mod leader;
pub mod localcast;
pub mod run;
pub mod stabilize;
pub mod verify;
pub mod wakeup;

pub use coloring::ColoringMachine;
pub use constants::{log2n, Constants};
pub use stabilize::{run_stabilize, run_stabilize_on, ColoringRun, StabilizeProtocol};
pub use verify::{invariant_report, lemma1_max_ball_mass, lemma2_min_close_mass, Coloring, InvariantReport};
