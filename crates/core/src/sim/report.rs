//! The unified run report and sweep aggregation.

use std::collections::BTreeMap;

use sinr_runtime::RoundStats;
use sinr_stats::Summary;

use crate::verify::Coloring;

/// Protocol-specific result fields, alongside [`RunReport`]'s common ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Broadcast-style run (both paper algorithms and all baselines); the
    /// common fields say everything.
    Broadcast,
    /// Standalone `StabilizeProbability` execution.
    Coloring {
        /// The produced coloring. Stations whose schedule was truncated
        /// by a budget below the full Fact 7 run report color `0.0`
        /// (uncolored); the run's `completed` flag is `false` then.
        coloring: Coloring,
    },
    /// Ad hoc wake-up.
    Wakeup {
        /// Round of the first spontaneous wake-up.
        first_wake: u64,
        /// Rounds from the first spontaneous wake-up until all awake (the
        /// paper's accounting), or the budget if incomplete.
        rounds_from_first_wake: u64,
    },
    /// Consensus.
    Consensus {
        /// Per-station decisions.
        decided: Vec<Option<u64>>,
        /// Whether all stations decided the same value.
        agreement: bool,
        /// Whether the common decision equals the minimum input.
        valid: bool,
    },
    /// Leader election.
    Leader {
        /// Stations that declared themselves leader.
        leaders: Vec<usize>,
        /// Whether exactly one leader emerged.
        unique: bool,
    },
    /// Alert protocol.
    Alert {
        /// Round each station learned of the alert, if it did.
        learned_at: Vec<Option<u64>>,
    },
}

/// Coverage of the dissemination goal at one adversary epoch boundary:
/// one sample per boundary, forming the degradation curve of a faulted
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoveragePoint {
    /// The boundary round the sample was taken after.
    pub round: u64,
    /// Live stations that had reached the per-station goal.
    pub informed: usize,
    /// Live stations at that moment.
    pub live: usize,
}

/// Fault and recovery accounting of an adversarial run
/// ([`crate::sim::Scenario::adversary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Stations killed by the adversary (excluding any the churn
    /// schedule killed first at the same boundary).
    pub kills: u64,
    /// Stations the adversary brought back (blackout returns).
    pub returns: u64,
    /// Jammed station-rounds: one per round each jammer spent
    /// transmitting noise.
    pub jam_rounds: u64,
    /// Rounds from the last injected fault until the goal was reached —
    /// the re-convergence time. `None` when the run did not complete or
    /// no fault ever fired.
    pub recovery_rounds: Option<u64>,
    /// Goal coverage over time, one sample per adversary epoch
    /// boundary.
    pub coverage: Vec<CoveragePoint>,
}

impl FaultReport {
    /// Final live-population coverage fraction (1.0 for an empty
    /// curve — nothing was ever at risk).
    pub fn final_coverage(&self) -> f64 {
        match self.coverage.last() {
            Some(pt) if pt.live > 0 => pt.informed as f64 / pt.live as f64,
            _ => 1.0,
        }
    }
}

/// Unified result of one simulation run — the superset of the legacy
/// `BroadcastReport` / `WakeupReport` / `ConsensusReport` / `LeaderReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The seed this run was the deterministic function of.
    pub seed: u64,
    /// Stations in the network.
    pub n: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the protocol's goal was reached within the budget (all
    /// informed / all awake / agreement / unique leader / schedule done).
    pub completed: bool,
    /// Stations that reached the protocol's per-station goal (informed,
    /// awake, decided, alarmed; `n` for fixed-schedule colorings).
    pub informed: usize,
    /// Total transmissions across the run (energy proxy).
    pub total_transmissions: u64,
    /// Protocol-specific fields.
    pub outcome: Outcome,
    /// Per-round statistics, when requested via
    /// [`crate::sim::Scenario::record_rounds`].
    pub per_round: Option<Vec<RoundStats>>,
    /// Per-node transmission counts (energy proxy), when requested via
    /// [`crate::sim::Scenario::record_rounds`]. `None` for the non-engine
    /// GPS-oracle baseline.
    pub tx_counts: Option<Vec<u64>>,
    /// Named scalar measurements filled by [`crate::sim::Observer`]s.
    pub measurements: BTreeMap<String, f64>,
    /// Fault and recovery accounting, when the scenario armed an
    /// adversary via [`crate::sim::Scenario::adversary`].
    pub faults: Option<FaultReport>,
}

/// Results of a parallel seed sweep, in the seed order given (independent
/// of how many worker threads executed it).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One report per seed, in input order.
    pub runs: Vec<RunReport>,
}

impl SweepReport {
    /// Seeds of the sweep, in order.
    pub fn seeds(&self) -> Vec<u64> {
        self.runs.iter().map(|r| r.seed).collect()
    }

    /// Number of completed runs.
    pub fn completed(&self) -> usize {
        self.runs.iter().filter(|r| r.completed).count()
    }

    /// Fraction of completed runs (0 for an empty sweep).
    pub fn completion_rate(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.completed() as f64 / self.runs.len() as f64
        }
    }

    /// Round counts of the completed runs, as floats for summarising.
    pub fn rounds_of_completed(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.completed)
            .map(|r| r.rounds as f64)
            .collect()
    }

    /// Summary of completed-run round counts (`None` if none completed).
    pub fn rounds_summary(&self) -> Option<Summary> {
        Summary::of(&self.rounds_of_completed())
    }

    /// `"<completed>/<trials>"`, the experiment tables' success column.
    pub fn ok_string(&self) -> String {
        format!("{}/{}", self.completed(), self.runs.len())
    }
}
